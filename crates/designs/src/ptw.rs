//! Page table walker (paper Table 1, row 5).
//!
//! Modelled on the CVA6 MMU's PTW: translates a 27-bit virtual page number
//! by walking up to three page-table levels through a memory port whose
//! latency varies at run time. A walk can terminate early at any level
//! when it finds a leaf PTE — the "respond to requests with varying
//! latencies" behaviour that needs Anvil's *dynamic* timing contracts
//! (the CPU's request must stay stable until the response, however many
//! memory round-trips that takes).
//!
//! PTE format: `{leaf[1], base[21]}`; memory request: `{base[22], vpn_i[9]}`.

use anvil_core::Compiler;
use anvil_rtl::{Expr, Module};

/// Virtual page number width (3 levels × 9 bits).
pub const VA_W: usize = 27;
/// PTE / response width.
pub const PTE_W: usize = 22;
/// Memory request width.
pub const MREQ_W: usize = 31;

/// The Anvil source for the page table walker.
pub fn anvil_source() -> String {
    format!(
        "chan ptw_ch {{
            left vreq : (logic[{va}]@vres),
            right vres : (logic[{pte}]@vreq)
         }}
         chan pmem_ch {{
            right mreq : (logic[{mr}]@mres),
            left mres : (logic[{pte}]@mreq)
         }}
         proc ptw_anvil(cpu : left ptw_ch, mem : left pmem_ch) {{
            reg base : logic[{pte}];
            reg out : logic[{pte}];
            loop {{
                let va = recv cpu.vreq >>
                set base := {pte}'d0 >>
                send mem.mreq (concat((*base)[21:0], (va)[26:18])) >>
                let pte0 = recv mem.mres >>
                if (pte0)[21:21] == 1 {{ set out := pte0 }}
                else {{
                    set base := concat(1'd0, (pte0)[20:0]) >>
                    send mem.mreq (concat((*base)[21:0], (va)[17:9])) >>
                    let pte1 = recv mem.mres >>
                    if (pte1)[21:21] == 1 {{ set out := pte1 }}
                    else {{
                        set base := concat(1'd0, (pte1)[20:0]) >>
                        send mem.mreq (concat((*base)[21:0], (va)[8:0])) >>
                        let pte2 = recv mem.mres >>
                        set out := pte2
                    }}
                }} >>
                send cpu.vres (*out) >>
                cycle 1
            }}
         }}",
        va = VA_W,
        pte = PTE_W,
        mr = MREQ_W,
    )
}

/// Compiles and flattens the Anvil PTW.
pub fn anvil_flat() -> Module {
    Compiler::new()
        .compile_flat(&anvil_source(), "ptw_anvil")
        .expect("PTW compiles")
}

/// The handwritten baseline FSM with the same interface and per-level
/// timing (request level i, wait for PTE, descend or respond).
pub fn baseline() -> Module {
    let mut m = Module::new("ptw_baseline");
    let vreq_data = m.input("cpu_vreq_data", VA_W);
    let vreq_valid = m.input("cpu_vreq_valid", 1);
    let vreq_ack = m.output("cpu_vreq_ack", 1);
    let vres_data = m.output("cpu_vres_data", PTE_W);
    let vres_valid = m.output("cpu_vres_valid", 1);
    let vres_ack = m.input("cpu_vres_ack", 1);
    let mreq_data = m.output("mem_mreq_data", MREQ_W);
    let mreq_valid = m.output("mem_mreq_valid", 1);
    let mreq_ack = m.input("mem_mreq_ack", 1);
    let mres_data = m.input("mem_mres_data", PTE_W);
    let mres_valid = m.input("mem_mres_valid", 1);
    let mres_ack = m.output("mem_mres_ack", 1);

    // States: 0 idle, 1 set-base, 2 send-req, 3 wait-pte, 4 respond.
    let st = m.reg("st", 3);
    let level = m.reg("level", 2);
    let va_q = m.reg("va_q", VA_W);
    let base = m.reg("base", PTE_W);
    let out = m.reg("out", PTE_W);

    let in_idle = m.wire_from("in_idle", Expr::Signal(st).eq(Expr::lit(0, 3)));
    let in_setb = m.wire_from("in_setb", Expr::Signal(st).eq(Expr::lit(1, 3)));
    let in_send = m.wire_from("in_send", Expr::Signal(st).eq(Expr::lit(2, 3)));
    let in_wait = m.wire_from("in_wait", Expr::Signal(st).eq(Expr::lit(3, 3)));
    let in_resp = m.wire_from("in_resp", Expr::Signal(st).eq(Expr::lit(4, 3)));

    m.assign(vreq_ack, Expr::Signal(in_idle));
    let take = m.wire_from("take", Expr::Signal(in_idle).and(Expr::Signal(vreq_valid)));
    m.update_when(va_q, Expr::Signal(take), Expr::Signal(vreq_data));
    m.update_when(level, Expr::Signal(take), Expr::lit(0, 2));
    m.update_when(base, Expr::Signal(in_setb), Expr::lit(0, PTE_W));

    // VPN slice by level.
    let vpn = m.wire_from(
        "vpn",
        Expr::mux(
            Expr::Signal(level).eq(Expr::lit(0, 2)),
            Expr::Signal(va_q).slice(18, 9),
            Expr::mux(
                Expr::Signal(level).eq(Expr::lit(1, 2)),
                Expr::Signal(va_q).slice(9, 9),
                Expr::Signal(va_q).slice(0, 9),
            ),
        ),
    );
    m.assign(mreq_valid, Expr::Signal(in_send));
    m.assign(
        mreq_data,
        Expr::Concat(vec![Expr::Signal(base), Expr::Signal(vpn)]),
    );
    let sent = m.wire_from("sent", Expr::Signal(in_send).and(Expr::Signal(mreq_ack)));

    m.assign(mres_ack, Expr::Signal(in_wait));
    let got_pte = m.wire_from(
        "got_pte",
        Expr::Signal(in_wait).and(Expr::Signal(mres_valid)),
    );
    let leaf = m.wire_from("leaf", Expr::Signal(mres_data).slice(21, 1));
    let last = m.wire_from("last", Expr::Signal(level).eq(Expr::lit(2, 2)));
    let done_walk = m.wire_from(
        "done_walk",
        Expr::Signal(got_pte).and(Expr::Signal(leaf).or(Expr::Signal(last))),
    );
    let descend = m.wire_from(
        "descend",
        Expr::Signal(got_pte).and(Expr::Signal(done_walk).logic_not()),
    );
    m.update_when(out, Expr::Signal(done_walk), Expr::Signal(mres_data));
    m.update_when(
        base,
        Expr::Signal(descend),
        Expr::Concat(vec![Expr::lit(0, 1), Expr::Signal(mres_data).slice(0, 21)]),
    );
    m.update_when(
        level,
        Expr::Signal(descend),
        Expr::Signal(level).add(Expr::lit(1, 2)),
    );

    m.assign(vres_valid, Expr::Signal(in_resp));
    m.assign(vres_data, Expr::Signal(out));
    let responded = m.wire_from(
        "responded",
        Expr::Signal(in_resp).and(Expr::Signal(vres_ack)),
    );

    // State transitions. Priority: later updates win, so order carefully.
    let next = Expr::mux(
        Expr::Signal(take),
        Expr::lit(1, 3), // idle -> set-base
        Expr::mux(
            Expr::Signal(in_setb),
            Expr::lit(2, 3), // set-base -> send (one cycle, as in Anvil)
            Expr::mux(
                Expr::Signal(sent),
                Expr::lit(3, 3), // send -> wait
                Expr::mux(
                    Expr::Signal(done_walk),
                    Expr::lit(4, 3), // wait -> respond (+1 for `out` reg)
                    Expr::mux(
                        Expr::Signal(descend),
                        Expr::lit(2, 3), // wait -> send next level
                        Expr::mux(Expr::Signal(responded), Expr::lit(0, 3), Expr::Signal(st)),
                    ),
                ),
            ),
        ),
    );
    m.set_next(st, next);
    m
}

/// A behavioural page-table model used by the tests: maps a `(base, vpn)`
/// request to a PTE. Level-`l` tables live at base `l * 0x100`; the walk
/// terminates early for VPNs whose level-0 entry has the leaf bit.
pub fn pte_for(req: u64) -> u64 {
    let vpn = req & 0x1ff;
    let base = (req >> 9) & 0x3f_ffff;
    let leaf = 1u64 << 21;
    match base {
        // Root table: VPN0 < 8 are 1 GiB leaf pages; others descend.
        0 => {
            if vpn < 8 {
                leaf | (0x1000 + vpn)
            } else {
                0x100 // next-level table base
            }
        }
        // Level-1 table: even VPN1s are 2 MiB leaves; odd descend.
        0x100 => {
            if vpn.is_multiple_of(2) {
                leaf | (0x2000 + vpn)
            } else {
                0x200
            }
        }
        // Level-2 table: always leaves.
        _ => leaf | (0x3000 + vpn),
    }
}

/// Walks the model in software: the reference for both RTL versions.
pub fn reference_walk(va: u64) -> u64 {
    let mut base = 0u64;
    for level in 0..3 {
        let vpn = (va >> (18 - 9 * level)) & 0x1ff;
        let pte = pte_for((base << 9) | vpn);
        if pte >> 21 == 1 || level == 2 {
            return pte & 0x3f_ffff;
        }
        base = pte & 0x1f_ffff;
    }
    unreachable!("walk terminates at level 2");
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_rtl::Bits;
    use anvil_sim::Sim;

    /// Runs a walk per VA with a memory BFM of the given latency;
    /// returns `(response, walk cycles)` per request.
    ///
    /// The CPU driver honours the dynamic timing contract
    /// `vreq : (logic[27]@vres)`: it holds the address *until the
    /// response*, not merely until the request handshake. (Driving this
    /// interface with a fire-and-forget sender reproduces exactly the
    /// Fig. 1 hazard: the PTW reads the request wire statelessly, so a
    /// prematurely-advanced address makes walk N return walk N+1's
    /// translation. The type checker enforces this obligation on Anvil
    /// *processes*; a raw-RTL testbench has to uphold it by hand.)
    pub fn run_walks(m: &Module, vas: &[u64], mem_latency: u64) -> Vec<(u64, u64)> {
        let mut sim = Sim::new(m).unwrap();
        let mut results = Vec::new();
        let mut pending_mem: Option<(u64, u64)> = None; // (pte, due-cycle)
        let mut walk_start: Option<u64> = None;
        let mut idx = 0usize;
        sim.poke("cpu_vres_ack", Bits::bit(true)).unwrap();
        for _ in 0..400 {
            if results.len() >= vas.len() {
                break;
            }
            // Contract-honouring CPU: present the address and keep it on
            // the wire until the response arrives.
            sim.poke(
                "cpu_vreq_data",
                Bits::from_u64(vas[idx.min(vas.len() - 1)], VA_W),
            )
            .unwrap();
            sim.poke("cpu_vreq_valid", Bits::bit(walk_start.is_none()))
                .unwrap();
            // Memory BFM: accept a request, respond after `mem_latency`.
            let (mres_valid, mres_data) = match pending_mem {
                Some((pte, due)) if sim.cycle() >= due => (true, pte),
                _ => (false, 0),
            };
            sim.poke("mem_mres_valid", Bits::bit(mres_valid)).unwrap();
            sim.poke("mem_mres_data", Bits::from_u64(mres_data, PTE_W))
                .unwrap();
            let accept_req = pending_mem.is_none();
            sim.poke("mem_mreq_ack", Bits::bit(accept_req)).unwrap();
            sim.settle();
            // The walk starts when the vreq handshake completes.
            if walk_start.is_none()
                && sim.peek("cpu_vreq_valid").unwrap().is_truthy()
                && sim.peek("cpu_vreq_ack").unwrap().is_truthy()
            {
                walk_start = Some(sim.cycle());
            }
            if accept_req && sim.peek("mem_mreq_valid").unwrap().is_truthy() {
                let req = sim.peek("mem_mreq_data").unwrap().to_u64();
                pending_mem = Some((pte_for(req), sim.cycle() + mem_latency));
            }
            if mres_valid && sim.peek("mem_mres_ack").unwrap().is_truthy() {
                pending_mem = None;
            }
            if sim.peek("cpu_vres_valid").unwrap().is_truthy() {
                let v = sim.peek("cpu_vres_data").unwrap().to_u64();
                let start = walk_start.take().expect("response implies a request");
                results.push((v, sim.cycle() - start));
                idx += 1;
            }
            sim.step().unwrap();
        }
        results
    }

    #[test]
    fn walks_match_reference_at_all_levels() {
        let m = anvil_flat();
        // Level-0 leaf, level-1 leaf, full 3-level walk.
        let vas = [
            3u64 << 18,                     // vpn0=3 -> 1-level walk
            (9u64 << 18) | (4 << 9),        // vpn0=9, vpn1=4 -> 2-level
            (9u64 << 18) | (5 << 9) | 0x42, // vpn1 odd -> 3-level
        ];
        let got = run_walks(&m, &vas, 1);
        assert_eq!(got.len(), 3);
        for (va, (pa, _)) in vas.iter().zip(&got) {
            assert_eq!(*pa, reference_walk(*va), "va {va:#x}");
        }
        // Deeper walks take longer (dynamic latency).
        assert!(got[1].1 > got[0].1);
        assert!(got[2].1 > got[1].1);
    }

    #[test]
    fn anvil_matches_baseline_values_across_latencies() {
        let vas = [
            2u64 << 18,
            (8u64 << 18) | (6 << 9),
            (10u64 << 18) | (3 << 9) | 0x7,
        ];
        for lat in [1u64, 3] {
            let a: Vec<u64> = run_walks(&anvil_flat(), &vas, lat)
                .iter()
                .map(|(v, _)| *v)
                .collect();
            let b: Vec<u64> = run_walks(&baseline(), &vas, lat)
                .iter()
                .map(|(v, _)| *v)
                .collect();
            assert_eq!(a, b, "latency {lat}");
            let expect: Vec<u64> = vas.iter().map(|v| reference_walk(*v)).collect();
            assert_eq!(a, expect);
        }
    }

    #[test]
    fn ptw_source_is_timing_safe() {
        let (_, reports) = anvil_core::Compiler::new().check(&anvil_source()).unwrap();
        let report = &reports[&anvil_intern::Symbol::intern("ptw_anvil")];
        assert!(report.is_safe(), "{:?}", report.errors());
    }
}
