//! Shared testbench helpers for driving design pairs.
//!
//! Every evaluation design exists twice — compiled from Anvil source and
//! handwritten against the RTL builder — with identical port names, so one
//! testbench drives both and compares outputs value-for-value (the §7.1
//! "identical functional behaviour" methodology).

use anvil_rtl::{Bits, Module};
use anvil_sim::{AckPolicy, Agent, MsgPorts, ReceiverBfm, SenderBfm, Sim, SimError};

/// Transactions captured from one run: `(completion cycle, value)`.
pub type Trace = Vec<(u64, Bits)>;

/// Drives one request stream in and collects one response stream out.
///
/// `reqs` are `(value, idle-cycles-before)` pairs; the receiver acks
/// according to `ack_delays` (empty = always ready).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_req_res(
    module: &Module,
    req_ep_msg: (&str, &str),
    res_ep_msg: (&str, &str),
    reqs: &[(Bits, u64)],
    ack_delays: &[u64],
    cycles: u64,
) -> Result<Trace, SimError> {
    let mut sim = Sim::new(module)?;
    let req_ports = MsgPorts::conventional(&sim, req_ep_msg.0, req_ep_msg.1);
    let res_ports = MsgPorts::conventional(&sim, res_ep_msg.0, res_ep_msg.1);
    let mut sender = SenderBfm::new(req_ports);
    for (v, d) in reqs {
        sender.push(v.clone(), *d);
    }
    let policy = if ack_delays.is_empty() {
        AckPolicy::AlwaysReady
    } else {
        AckPolicy::DelayQueue(ack_delays.iter().copied().collect())
    };
    let mut recv = ReceiverBfm::new(res_ports, policy);
    for _ in 0..cycles {
        sender.drive(&mut sim)?;
        recv.drive(&mut sim)?;
        sim.settle();
        sender.observe(&sim)?;
        recv.observe(&sim)?;
        sim.step()?;
    }
    Ok(recv.received)
}

/// Runs the same request/response workload against two modules and
/// asserts the received *values* match exactly.
///
/// Returns both traces (with cycle stamps) for latency comparison.
///
/// # Panics
///
/// Panics if the value sequences differ.
pub fn assert_equivalent(
    a: &Module,
    b: &Module,
    req_ep_msg: (&str, &str),
    res_ep_msg: (&str, &str),
    reqs: &[(Bits, u64)],
    ack_delays: &[u64],
    cycles: u64,
) -> (Trace, Trace) {
    let ta = run_req_res(a, req_ep_msg, res_ep_msg, reqs, ack_delays, cycles)
        .unwrap_or_else(|e| panic!("simulating `{}`: {e}", a.name));
    let tb = run_req_res(b, req_ep_msg, res_ep_msg, reqs, ack_delays, cycles)
        .unwrap_or_else(|e| panic!("simulating `{}`: {e}", b.name));
    let va: Vec<&Bits> = ta.iter().map(|(_, v)| v).collect();
    let vb: Vec<&Bits> = tb.iter().map(|(_, v)| v).collect();
    assert_eq!(
        va, vb,
        "value mismatch between `{}` and `{}`",
        a.name, b.name
    );
    (ta, tb)
}

/// One xorshift64 step: the deterministic PRNG shared by the
/// differential backend tests, the pass-subset behavioural properties,
/// and the simulator benches, so they all exercise the same stimulus for
/// a given seed.
pub fn xorshift64(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// All input ports of a module as `(name, width)`, in id order — the
/// poke-list for whole-interface random stimulus.
pub fn input_ports(module: &Module) -> Vec<(String, usize)> {
    module
        .iter_signals()
        .filter(|(_, s)| s.kind == anvil_rtl::SignalKind::Input)
        .map(|(_, s)| (s.name.clone(), s.width))
        .collect()
}

/// Pokes one xorshift-derived random value on every input port.
pub fn poke_random_inputs(
    sim: &mut Sim,
    inputs: &[(String, usize)],
    rng: &mut u64,
) -> Result<(), SimError> {
    for (name, width) in inputs {
        sim.poke(name, Bits::from_u64(xorshift64(rng), *width))?;
    }
    Ok(())
}

/// Measures switching activity under a random-input workload (for the
/// power model): pokes random values on every input for `cycles`.
pub fn random_activity(module: &Module, cycles: u64, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Sim::new(module).expect("design simulates");
    let inputs = input_ports(module);
    for _ in 0..cycles {
        for (name, width) in &inputs {
            let v = Bits::from_u64(rng.gen(), *width);
            sim.poke(name, v).expect("poking input");
        }
        sim.step().expect("stepping");
    }
    sim.switching_activity()
}
