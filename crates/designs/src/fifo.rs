//! FIFO buffer (paper Table 1, row 1).
//!
//! Modelled on `fifo_v3` from the PULP Common Cells IP: depth 4, 16-bit
//! payload, one enqueue and one dequeue stream with full/empty
//! backpressure, simultaneous enqueue+dequeue allowed, one-cycle
//! enqueue-to-dequeue latency.
//!
//! The Anvil version uses two concurrent threads — one per stream — with
//! occupancy tracked by free-running pointers; backpressure falls out of
//! *when each thread reaches its blocking `recv`/`send`*, not from
//! hand-wired ready logic. The baseline is the conventional handwritten
//! pointer FIFO with the same port interface.

use anvil_core::Compiler;
use anvil_rtl::{Expr, Module};

/// Payload width.
pub const WIDTH: usize = 16;
/// FIFO depth.
pub const DEPTH: usize = 4;

/// The Anvil source for the FIFO buffer.
pub fn anvil_source() -> String {
    format!(
        "chan push_ch {{ right enq : (logic[{w}]@#1) }}
         chan pop_ch {{ right deq : (logic[{w}]@#1) }}
         proc fifo_anvil(in_ep : right push_ch, out_ep : left pop_ch) {{
            reg mem : logic[{w}][{d}];
            reg wr : logic[3];
            reg rd : logic[3];
            loop {{
                if (*wr - *rd) != {d} {{
                    let x = recv in_ep.enq >>
                    set mem[(*wr)[1:0]] := x ;
                    set wr := *wr + 1
                }} else {{ cycle 1 }}
            }}
            loop {{
                if *wr != *rd {{
                    send out_ep.deq (*mem[(*rd)[1:0]]) >>
                    set rd := *rd + 1
                }} else {{ cycle 1 }}
            }}
         }}",
        w = WIDTH,
        d = DEPTH
    )
}

/// Compiles and flattens the Anvil FIFO.
pub fn anvil_flat() -> Module {
    Compiler::new()
        .compile_flat(&anvil_source(), "fifo_anvil")
        .expect("FIFO compiles")
}

/// The handwritten baseline with the same interface.
pub fn baseline() -> Module {
    let mut m = Module::new("fifo_baseline");
    let enq_data = m.input("in_ep_enq_data", WIDTH);
    let enq_valid = m.input("in_ep_enq_valid", 1);
    let enq_ack = m.output("in_ep_enq_ack", 1);
    let deq_data = m.output("out_ep_deq_data", WIDTH);
    let deq_valid = m.output("out_ep_deq_valid", 1);
    let deq_ack = m.input("out_ep_deq_ack", 1);

    let mem = m.array("mem", WIDTH, DEPTH);
    let wr = m.reg("wr", 3);
    let rd = m.reg("rd", 3);

    let not_full = m.wire_from(
        "not_full",
        Expr::Signal(wr)
            .sub(Expr::Signal(rd))
            .ne(Expr::lit(DEPTH as u64, 3)),
    );
    let not_empty = m.wire_from("not_empty", Expr::Signal(wr).ne(Expr::Signal(rd)));

    m.assign(enq_ack, Expr::Signal(not_full));
    let enq_fire = m.wire_from(
        "enq_fire",
        Expr::Signal(enq_valid).and(Expr::Signal(not_full)),
    );
    m.array_write(
        mem,
        Expr::Signal(enq_fire),
        Expr::Signal(wr).slice(0, 2),
        Expr::Signal(enq_data),
    );
    m.update_when(
        wr,
        Expr::Signal(enq_fire),
        Expr::Signal(wr).add(Expr::lit(1, 3)),
    );

    m.assign(deq_valid, Expr::Signal(not_empty));
    m.assign(
        deq_data,
        Expr::ArrayRead {
            array: mem,
            index: Box::new(Expr::Signal(rd).slice(0, 2)),
        },
    );
    let deq_fire = m.wire_from(
        "deq_fire",
        Expr::Signal(not_empty).and(Expr::Signal(deq_ack)),
    );
    m.update_when(
        rd,
        Expr::Signal(deq_fire),
        Expr::Signal(rd).add(Expr::lit(1, 3)),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tb::assert_equivalent;
    use anvil_rtl::Bits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn workload(seed: u64, n: usize) -> Vec<(Bits, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (Bits::from_u64(rng.gen(), WIDTH), rng.gen_range(0..3)))
            .collect()
    }

    #[test]
    fn fifo_preserves_order_and_matches_baseline() {
        let a = anvil_flat();
        let b = baseline();
        let reqs = workload(1, 20);
        let (ta, _tb) =
            assert_equivalent(&a, &b, ("in_ep", "enq"), ("out_ep", "deq"), &reqs, &[], 200);
        // All values delivered, in order.
        let sent: Vec<u64> = reqs.iter().map(|(v, _)| v.to_u64()).collect();
        let got: Vec<u64> = ta.iter().map(|(_, v)| v.to_u64()).collect();
        assert_eq!(got, sent);
    }

    #[test]
    fn fifo_backpressures_slow_consumer() {
        let a = anvil_flat();
        let b = baseline();
        let reqs = workload(2, 12);
        // Consumer acks every 4th cycle only.
        let (ta, _) = assert_equivalent(
            &a,
            &b,
            ("in_ep", "enq"),
            ("out_ep", "deq"),
            &reqs,
            &[4],
            400,
        );
        assert_eq!(ta.len(), reqs.len());
    }

    #[test]
    fn fifo_sustains_full_throughput() {
        // Back-to-back enqueues with an always-ready consumer: the Anvil
        // FIFO must accept one element per cycle (no added latency, §7.1).
        let a = anvil_flat();
        let reqs: Vec<(Bits, u64)> = (0..10u64).map(|i| (Bits::from_u64(i, WIDTH), 0)).collect();
        let trace = crate::tb::run_req_res(&a, ("in_ep", "enq"), ("out_ep", "deq"), &reqs, &[], 60)
            .unwrap();
        assert_eq!(trace.len(), 10);
        // Steady-state: one dequeue per cycle.
        let cycles: Vec<u64> = trace.iter().map(|(c, _)| *c).collect();
        for w in cycles.windows(2).skip(2) {
            assert_eq!(w[1] - w[0], 1, "dequeues not back-to-back: {cycles:?}");
        }
    }
}
