//! The Anvil type checker: static timing safety (paper §5).
//!
//! Given a thread's event-graph IR (built with a two-iteration unrolling,
//! per Lemma C.19), this crate enforces the three checks of §5.4 plus the
//! readiness obligations of dependent sync modes:
//!
//! 1. **Valid Value Use** — every use of a value falls within its lifetime;
//! 2. **Valid Register Mutation** — no register is mutated while loaned
//!    (loan times are inferred here, from uses and sends of
//!    register-sourced values, exactly as in the paper's `Encrypt`
//!    walk-through of §5.2);
//! 3. **Valid Message Send** — sent values live as long as the message
//!    contract demands, and successive sends of the same message have
//!    disjoint required windows.
//!
//! Any well-typed process can be composed with other well-typed processes
//! without timing hazards (Theorem C.20); the `anvil-verify` crate
//! property-tests that guarantee end-to-end against randomized-latency
//! simulations.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use anvil_intern::Symbol;
use anvil_ir::{build_proc, BuildCtx, EventGraph, EventId, IrError, Pattern, PatternDur, ThreadIr};
use anvil_syntax::{Program, Span};

/// Which of the safety checks a diagnostic comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Valid Value Use (§5.4).
    ValueUse,
    /// Valid Register Mutation (§5.4).
    RegisterMutation,
    /// Valid Message Send: payload lifetime (§5.4).
    MessageSend,
    /// Valid Message Send: overlapping required windows (§5.4).
    SendOverlap,
    /// Dependent sync mode reached too late (§4.1).
    DependentReady,
}

/// A timing-safety violation.
#[derive(Clone, Debug)]
pub struct TypeError {
    /// Which check failed.
    pub kind: CheckKind,
    /// Human-readable description (matches the paper's diagnostics, e.g.
    /// "Value does not live long enough in message send").
    pub message: String,
    /// Source location of the offending term.
    pub span: Span,
}

impl TypeError {
    /// Renders the error with `line:col` resolved against the source.
    pub fn render(&self, source: &str) -> String {
        self.render_with(&anvil_syntax::LineIndex::new(source))
    }

    /// [`TypeError::render`] against a prebuilt [`anvil_syntax::LineIndex`]:
    /// drivers that render many violations build the index once and resolve
    /// each span in O(log lines) instead of rescanning the source.
    pub fn render_with(&self, index: &anvil_syntax::LineIndex<'_>) -> String {
        let source = index.source();
        let (line, col) = index.span_start(self.span);
        let snippet: String = source
            [self.span.start.min(source.len())..self.span.end.min(source.len())]
            .chars()
            .take(48)
            .collect();
        format!("{line}:{col}: {}\n  | {snippet}", self.message)
    }
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// A register loan interval `[start, end)` with its origin, for
/// diagnostics and for the Fig. 6-style inference dump.
#[derive(Clone, Debug)]
pub struct Loan {
    /// Loaned register.
    pub reg: Symbol,
    /// Loan start (value creation).
    pub start: EventId,
    /// Loan end pattern.
    pub end: Pattern,
    /// Why the register is loaned.
    pub origin: String,
    /// Where the loaning use/send is.
    pub span: Span,
}

/// The inferred timing facts for one thread: loans per register, plus the
/// diagnostics. Exposed so the Fig. 5 / Fig. 6 benches can print the same
/// derivations the paper shows.
#[derive(Clone, Debug, Default)]
pub struct ThreadReport {
    /// All inferred loans, grouped by register.
    pub loans: BTreeMap<Symbol, Vec<Loan>>,
    /// All violations found.
    pub errors: Vec<TypeError>,
}

/// Runs all timing-safety checks on one thread IR.
///
/// The IR must have been built with `unroll >= 2` for cross-iteration
/// hazards to be visible (Lemma C.19).
pub fn check_thread(ir: &ThreadIr) -> ThreadReport {
    let mut report = ThreadReport::default();
    let g = &ir.graph;

    // ---- Loan inference (§5.2). ----
    // Every use of a register-sourced value loans the register from the
    // value's creation to the end of the use window; every send loans it
    // until the contract expiry.
    for u in &ir.uses {
        for &reg in &u.regs {
            report.loans.entry(reg).or_default().push(Loan {
                reg,
                start: u.created,
                end: u.end.clone(),
                origin: u.desc.clone(),
                span: u.span,
            });
        }
    }
    for s in &ir.sends {
        let end = match &s.dur {
            Some(d) => Pattern {
                base: s.done,
                dur: d.clone(),
            },
            // An eternal contract would loan forever; model as a huge
            // static hold (flagged separately if mutated at all).
            None => Pattern::cycles(s.done, u64::MAX / 2),
        };
        for &reg in &s.regs {
            report.loans.entry(reg).or_default().push(Loan {
                reg,
                start: s.created,
                end: end.clone(),
                origin: format!("value sent through {}", s.msg),
                span: s.span,
            });
        }
    }

    // ---- 1. Valid Value Use. ----
    // The use window may extend one cycle past a value's expiry sync:
    // the earliest mutation at the sync lands one cycle later (slack 1).
    for u in &ir.uses {
        if !g.le_pattern_sets_ctx(std::slice::from_ref(&u.end), &u.ends, 1, Some(u.at)) {
            report.errors.push(TypeError {
                kind: CheckKind::ValueUse,
                message: format!(
                    "Value not live long enough: {} may already be dead when used",
                    u.desc
                ),
                span: u.span,
            });
        }
    }

    // ---- 2. Valid Register Mutation. ----
    // A mutation at `e_c` changes the register between `e_c` and
    // `e_c ⊲ #1`; it conflicts with any loan interval containing both.
    for a in &ir.assigns {
        if let Some(loans) = report.loans.get(&a.reg) {
            for loan in loans {
                if contexts_disjoint(g, a.at, loan.start) {
                    continue; // different branches never co-occur
                }
                let ok = g.le_pattern_ctx(&loan.end, &Pattern::cycles(a.at, 1), 0, Some(a.at))
                    || g.lt(a.at, loan.start);
                if !ok {
                    report.errors.push(TypeError {
                        kind: CheckKind::RegisterMutation,
                        message: format!(
                            "Attempted assignment to a loaned register: `{}` is loaned ({}) when mutated",
                            a.reg, loan.origin
                        ),
                        span: a.span,
                    });
                }
            }
        }
    }

    // ---- 3a. Valid Message Send: payload lifetime. ----
    for s in &ir.sends {
        let required = match &s.dur {
            Some(d) => Pattern {
                base: s.done,
                dur: d.clone(),
            },
            None => {
                // Eternal requirement: the payload lifetime must itself be
                // eternal.
                if !s.ends.is_empty() {
                    report.errors.push(TypeError {
                        kind: CheckKind::MessageSend,
                        message: format!(
                            "Value does not live long enough in message send: `{}` requires an eternal value",
                            s.msg
                        ),
                        span: s.span,
                    });
                }
                continue;
            }
        };
        if !g.le_pattern_sets_ctx(std::slice::from_ref(&required), &s.ends, 1, Some(s.start)) {
            report.errors.push(TypeError {
                kind: CheckKind::MessageSend,
                message: format!(
                    "Value does not live long enough in message send: `{}` requires the payload until {}",
                    s.msg,
                    render_pattern(&required)
                ),
                span: s.span,
            });
        }
    }

    // ---- 3b. Valid Message Send: disjoint windows. ----
    let mut by_msg: BTreeMap<&anvil_ir::MsgRef, Vec<&anvil_ir::SendSite>> = BTreeMap::new();
    for s in &ir.sends {
        by_msg.entry(&s.msg).or_default().push(s);
    }
    for (msg, sends) in by_msg {
        for i in 0..sends.len() {
            for j in (i + 1)..sends.len() {
                let (a, b) = (sends[i], sends[j]);
                if contexts_disjoint(g, a.start, b.start) {
                    continue;
                }
                let disjoint = match (&a.dur, &b.dur) {
                    (Some(da), Some(db)) => {
                        let ea = Pattern {
                            base: a.done,
                            dur: da.clone(),
                        };
                        let eb = Pattern {
                            base: b.done,
                            dur: db.clone(),
                        };
                        g.le_pattern_ctx(&ea, &Pattern::cycles(b.start, 0), 0, Some(b.start))
                            || g.le_pattern_ctx(&eb, &Pattern::cycles(a.start, 0), 0, Some(a.start))
                    }
                    // An eternal contract admits a single send.
                    _ => false,
                };
                if !disjoint {
                    report.errors.push(TypeError {
                        kind: CheckKind::SendOverlap,
                        message: format!(
                            "Successive sends of `{msg}` may overlap: the previous message has not expired"
                        ),
                        span: b.span,
                    });
                }
            }
        }
    }

    // ---- Dependent sync readiness. ----
    for r in &ir.ready_checks {
        if !g.le(r.start, r.at) {
            report.errors.push(TypeError {
                kind: CheckKind::DependentReady,
                message: format!(
                    "Process may not be ready in time for the dependent synchronisation of `{}`",
                    r.msg
                ),
                span: r.span,
            });
        }
    }

    report
}

/// True if two events sit on contradictory branches of the same condition
/// (they can never co-occur in a run).
fn contexts_disjoint(g: &EventGraph, a: EventId, b: EventId) -> bool {
    g.context(a)
        .iter()
        .any(|(c, t)| g.context(b).iter().any(|(c2, t2)| c == c2 && t != t2))
}

fn render_pattern(p: &Pattern) -> String {
    match &p.dur {
        PatternDur::Cycles(n) => format!("e{} + {n} cycles", p.base.0),
        PatternDur::Msg(m) => format!("the next `{m}` after e{}", p.base.0),
    }
}

/// Everything the checker found for one process.
#[derive(Clone, Debug, Default)]
pub struct ProcReport {
    /// Per-thread reports.
    pub threads: Vec<ThreadReport>,
}

impl ProcReport {
    /// All errors across threads.
    pub fn errors(&self) -> Vec<&TypeError> {
        self.threads.iter().flat_map(|t| t.errors.iter()).collect()
    }

    /// True when no check failed.
    pub fn is_safe(&self) -> bool {
        self.threads.iter().all(|t| t.errors.is_empty())
    }
}

/// Builds (two-iteration unroll) and checks every thread of a process.
///
/// # Errors
///
/// Returns elaboration errors (unknown names, width mismatches) as `Err`;
/// timing-safety violations are reported inside the `Ok` report.
pub fn check_proc(program: &Program, proc_name: &str) -> Result<ProcReport, IrError> {
    let proc = program.proc(proc_name).ok_or_else(|| IrError {
        message: format!("unknown process `{proc_name}`"),
        span: Span::default(),
    })?;
    let ctx = BuildCtx { program, proc };
    let irs = build_proc(&ctx, 2)?;
    Ok(ProcReport {
        threads: irs.iter().map(check_thread).collect(),
    })
}

/// Checks every process in a program; returns per-process reports keyed
/// by interned process name.
///
/// # Errors
///
/// Propagates the first elaboration error.
pub fn check_program(program: &Program) -> Result<BTreeMap<Symbol, ProcReport>, IrError> {
    let mut out = BTreeMap::new();
    for p in &program.procs {
        out.insert(Symbol::intern(&p.name), check_proc(program, &p.name)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_syntax::parse;

    fn check(src: &str) -> ProcReport {
        let prog = parse(src).unwrap();
        let name = prog.procs[0].name.clone();
        check_proc(&prog, &name).unwrap()
    }

    #[test]
    fn counter_loop_is_safe() {
        let r = check("proc p() { reg c : logic[8]; loop { set c := *c + 1 >> cycle 1 } }");
        assert!(r.is_safe(), "{:?}", r.errors());
    }

    #[test]
    fn same_cycle_read_modify_write_is_safe() {
        // `set r := *r + 1` loans r only for the assignment cycle.
        let r = check("proc p() { reg r : logic[8]; loop { set r := *r + 1 } }");
        assert!(r.is_safe(), "{:?}", r.errors());
    }

    /// Fig. 5 (left): Top_Unsafe against the static memory contract.
    /// The address must stay constant for 2 cycles after the request is
    /// acknowledged, but Top mutates it immediately.
    #[test]
    fn fig5_top_unsafe_rejected() {
        let src = "
            chan memory_ch {
                right address : (logic[8]@#2),
                left data : (logic[8]@#1)
            }
            proc top_unsafe(mem : left memory_ch) {
                reg addr : logic[8];
                loop {
                    send mem.address (*addr) >>
                    set addr := *addr + 1 >>
                    let d = recv mem.data >>
                    cycle 1
                }
            }";
        let r = check(src);
        assert!(!r.is_safe());
        assert!(
            r.errors()
                .iter()
                .any(|e| e.kind == CheckKind::RegisterMutation),
            "{:?}",
            r.errors()
        );
    }

    /// Fig. 5 (right): Top_Safe against the dynamic cache contract.
    /// The address lives until the response arrives; mutation happens
    /// after the response, so the loan has expired.
    #[test]
    fn fig5_top_safe_accepted() {
        let src = "
            chan cache_ch {
                right req : (logic[8]@res),
                left res : (logic[8]@req)
            }
            proc top_safe(c : left cache_ch) {
                reg addr : logic[8];
                loop {
                    send c.req (*addr) >>
                    let d = recv c.res >>
                    set addr := *addr + 1 >>
                    cycle 1
                }
            }";
        let r = check(src);
        assert!(r.is_safe(), "{:?}", r.errors());
    }

    /// Appendix A (Listing 1), reduced: the received value lives one cycle
    /// but is sent onward under a contract that needs it until a response.
    #[test]
    fn appendix_a_short_lived_value_in_send_rejected() {
        let src = "
            chan ch {
                right data : (logic@res),
                left res : (logic@#1)
            }
            chan ch_s {
                right data : (logic@#1)
            }
            proc child(ep : right ch_s, up : left ch) {
                loop {
                    let d = recv ep.data >>
                    send up.data (d) >>
                    let r = recv up.res >>
                    cycle 1
                }
            }";
        let prog = parse(src).unwrap();
        let r = check_proc(&prog, "child").unwrap();
        assert!(!r.is_safe());
        let errs = r.errors();
        assert!(
            errs.iter().any(|e| e.kind == CheckKind::MessageSend
                && e.message.contains("does not live long enough")),
            "{errs:?}"
        );
    }

    /// Registering the short-lived value first makes the same design safe
    /// (the fix Anvil's diagnostic guides the designer towards).
    #[test]
    fn appendix_a_fixed_with_register() {
        let src = "
            chan ch {
                right data : (logic@res),
                left res : (logic@#1)
            }
            chan ch_s {
                right data : (logic@#1)
            }
            proc child(ep : right ch_s, up : left ch) {
                reg held : logic;
                loop {
                    let d = recv ep.data >>
                    set held := d >>
                    send up.data (*held) >>
                    let r = recv up.res >>
                    cycle 1
                }
            }";
        let prog = parse(src).unwrap();
        let r = check_proc(&prog, "child").unwrap();
        assert!(r.is_safe(), "{:?}", r.errors());
    }

    #[test]
    fn mutation_of_register_loaned_to_send_rejected() {
        // Register is loaned until the response; mutating it right after
        // the send (before the response) is the CWE-1298 DMA bug shape.
        let src = "
            chan dma_ch {
                right req : (logic[8]@gnt),
                left gnt : (logic[8]@#1)
            }
            proc foo(dma : left dma_ch) {
                reg address : logic[8];
                loop {
                    send dma.req (*address) >>
                    set address := *address + 1 >>
                    let x = recv dma.gnt >>
                    cycle 1
                }
            }";
        let r = check(src);
        assert!(!r.is_safe());
        assert!(r
            .errors()
            .iter()
            .any(|e| e.message.contains("loaned register")));
    }

    #[test]
    fn overlapping_sends_rejected() {
        // Fig. 6 tail: a second send before the first expired.
        let src = "
            chan ch {
                right out : (logic[8]@ack),
                left ack : (logic[8]@#1)
            }
            proc p(ep : left ch) {
                loop {
                    send ep.out (8'd1) >>
                    send ep.out (8'd2) >>
                    let a = recv ep.ack >>
                    cycle 1
                }
            }";
        let r = check(src);
        assert!(!r.is_safe());
        assert!(r.errors().iter().any(|e| e.kind == CheckKind::SendOverlap));
    }

    #[test]
    fn sends_in_disjoint_branches_allowed() {
        let src = "
            chan ch {
                right out : (logic[8]@#1)
            }
            proc p(ep : left ch) {
                reg r : logic[8];
                loop {
                    if *r == 0 { send ep.out (8'd1) >> cycle 1 }
                    else { send ep.out (8'd2) >> cycle 1 } >>
                    set r := *r + 1
                }
            }";
        let r = check(src);
        assert!(r.is_safe(), "{:?}", r.errors());
    }

    #[test]
    fn value_dead_after_dynamic_wait_rejected() {
        // A 1-cycle value combined with a dynamically-delayed one
        // (Fig. 6's `noise` hazard).
        let src = "
            chan ch {
                left a : (logic[8]@#1),
                left b : (logic[8]@b_done),
                right b_done : (logic[8]@#1)
            }
            proc p(ep : left ch) {
                reg r : logic[8];
                loop {
                    let quick = recv ep.a;
                    let slow = recv ep.b;
                    slow >>
                    set r := quick + slow >>
                    send ep.b_done (*r) >>
                    cycle 1
                }
            }";
        let r = check(src);
        assert!(!r.is_safe());
        assert!(r.errors().iter().any(|e| e.kind == CheckKind::ValueUse));
    }

    #[test]
    fn cross_iteration_loan_violation_caught() {
        // The send's contract outlives the loop body: iteration 2's
        // mutation lands inside iteration 1's loan.
        let src = "
            chan ch {
                right out : (logic[8]@#4)
            }
            proc p(ep : left ch) {
                reg r : logic[8];
                loop {
                    send ep.out (*r) >>
                    set r := *r + 1
                }
            }";
        let r = check(src);
        assert!(!r.is_safe());
        assert!(r.errors().iter().any(|e| {
            e.kind == CheckKind::RegisterMutation || e.kind == CheckKind::SendOverlap
        }));
    }

    #[test]
    fn loan_report_records_origins() {
        let src = "
            chan ch { right out : (logic[8]@#2) }
            proc p(ep : left ch) {
                reg r : logic[8];
                loop { send ep.out (*r) >> cycle 2 >> set r := *r + 1 }
            }";
        let prog = parse(src).unwrap();
        let rep = check_proc(&prog, "p").unwrap();
        assert!(rep.is_safe(), "{:?}", rep.errors());
        let loans = &rep.threads[0].loans[&Symbol::intern("r")];
        assert!(loans.iter().any(|l| l.origin.contains("ep.out")));
    }

    #[test]
    fn dependent_sync_too_early_rejected() {
        // res arrives exactly 1 cycle after req, but the process only
        // looks for it after waiting 3 cycles.
        let src = "
            chan ch {
                right req : (logic[8]@#1) @dyn-@dyn,
                left res : (logic[8]@#1) @#req+1-@#req+1
            }
            proc p(ep : left ch) {
                loop {
                    send ep.req (8'd1) >>
                    cycle 3 >>
                    let x = recv ep.res >>
                    cycle 1
                }
            }";
        let r = check(src);
        assert!(!r.is_safe());
        assert!(r
            .errors()
            .iter()
            .any(|e| e.kind == CheckKind::DependentReady));
    }
}
