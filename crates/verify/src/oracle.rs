//! The dynamic timing-safety oracle (paper Appendix C.4).
//!
//! The paper's safety theorem (C.20) says: a well-typed program is safe in
//! *every* execution log, i.e. under every possible assignment of message
//! latencies and branch outcomes. This module makes that statement
//! testable: it samples a concrete timestamp function for a thread's event
//! graph (Def. C.9), resolves every lifetime pattern to concrete cycle
//! windows, and checks the safety conditions of Def. C.15 directly —
//! uses within lifetimes, no register mutation inside a value's stability
//! window, and send windows covered and disjoint.
//!
//! The `anvil-verify` property tests then assert: programs accepted by the
//! static checker never produce a violation here, across thousands of
//! random latency/branch samples; the paper's unsafe examples do.

use anvil_intern::Symbol;
use anvil_ir::{EventId, Pattern, PatternDur, ThreadIr};
use rand::Rng;

/// A concrete run: timestamps for every event (None = untaken branch).
#[derive(Clone, Debug)]
pub struct ConcreteRun {
    /// τ per event.
    pub tau: Vec<Option<i64>>,
}

/// A violation of the dynamic safety conditions in one concrete run.
#[derive(Clone, Debug)]
pub struct DynViolation {
    /// Which condition failed.
    pub what: String,
    /// The cycle window involved.
    pub window: (i64, i64),
}

/// Samples a concrete run of the thread with random synchronisation
/// latencies in `0..=max_latency` and random branch outcomes.
pub fn sample_run(ir: &ThreadIr, rng: &mut impl Rng, max_latency: u64) -> ConcreteRun {
    // Pre-draw randomness so the two sampling closures don't both need
    // the generator.
    let delays: Vec<u64> = (0..ir.graph.len())
        .map(|_| rng.gen_range(0..=max_latency))
        .collect();
    let branches: Vec<bool> = (0..ir.graph.len().max(1))
        .map(|_| rng.gen_bool(0.5))
        .collect();
    let mut di = 0usize;
    let mut bi = 0usize;
    let tau = ir.graph.sample_timestamps(
        move |_| {
            di = (di + 1) % delays.len().max(1);
            delays[di]
        },
        move |_| {
            bi = (bi + 1) % branches.len();
            branches[bi]
        },
    );
    ConcreteRun { tau }
}

/// Resolves the end of a lifetime pattern in a concrete run: the first
/// matching time at/after the base event. Returns `None` for ∞ (no such
/// sync occurs) or if the base never fired.
fn resolve_pattern(ir: &ThreadIr, run: &ConcreteRun, p: &Pattern) -> Option<i64> {
    let base = run.tau[p.base.0]?;
    match &p.dur {
        PatternDur::Cycles(k) => Some(base + *k as i64),
        // "The next synchronisation of m": among syncs that do not
        // causally precede the base (the request that *caused* a response
        // must not expire it), the earliest at/after the base.
        PatternDur::Msg(m) => ir
            .graph
            .sync_events(m)
            .iter()
            .filter(|e| !ir.graph.le(**e, p.base))
            .filter_map(|e| run.tau[e.0])
            .filter(|t| *t >= base)
            .min(),
    }
}

/// The earliest end among a pattern set; `None` = eternal.
fn resolve_ends(ir: &ThreadIr, run: &ConcreteRun, ends: &[Pattern]) -> Option<i64> {
    ends.iter()
        .filter_map(|p| resolve_pattern(ir, run, p))
        .min()
}

/// All cycles at which a register is mutated in this run (the mutation
/// takes effect between `t` and `t+1`).
fn mutation_times(ir: &ThreadIr, run: &ConcreteRun, reg: Symbol) -> Vec<i64> {
    ir.assigns
        .iter()
        .filter(|a| a.reg == reg)
        .filter_map(|a| run.tau[a.at.0])
        .collect()
}

/// Checks one concrete run against the Def. C.15 safety conditions.
///
/// Returns every violation found (empty = this run is safe).
pub fn check_run(ir: &ThreadIr, run: &ConcreteRun) -> Vec<DynViolation> {
    let mut out = Vec::new();

    // A window [a, b) needs: within every lifetime window of the value,
    // and no dependency register mutating m with a <= m && m+1 < b.
    let check_window = |what: &str,
                        created: EventId,
                        a: i64,
                        b: i64,
                        ends: &[Pattern],
                        regs: &std::collections::BTreeSet<Symbol>,
                        out: &mut Vec<DynViolation>| {
        if let Some(limit) = resolve_ends(ir, run, ends) {
            // One cycle of slack: a value stays physically stable through
            // its expiry-sync cycle (mutations land the cycle after).
            if b > limit + 1 {
                out.push(DynViolation {
                    what: format!("{what}: window ends at {b} but value dies at {limit}"),
                    window: (a, b),
                });
            }
        }
        let start = run.tau[created.0].unwrap_or(a);
        for &reg in regs {
            for m in mutation_times(ir, run, reg) {
                if m >= start && m + 1 < b {
                    out.push(DynViolation {
                        what: format!(
                            "{what}: register `{reg}` mutated at {m} inside stability window"
                        ),
                        window: (start, b),
                    });
                }
            }
        }
    };

    for u in &ir.uses {
        let (Some(at), Some(end)) = (run.tau[u.at.0], resolve_pattern(ir, run, &u.end)) else {
            continue; // untaken branch
        };
        check_window(&u.desc, u.created, at, end, &u.ends, &u.regs, &mut out);
    }

    // Sends: required windows covered by value lifetime and register
    // stability, and pairwise disjoint per message.
    let mut windows: Vec<(&anvil_ir::MsgRef, i64, i64)> = Vec::new();
    for s in &ir.sends {
        let (Some(start), Some(done)) = (run.tau[s.start.0], run.tau[s.done.0]) else {
            continue;
        };
        let required_end = match &s.dur {
            Some(d) => resolve_pattern(
                ir,
                run,
                &Pattern {
                    base: s.done,
                    dur: d.clone(),
                },
            ),
            None => None,
        };
        let b = required_end.unwrap_or(i64::MAX / 2);
        check_window(
            &format!("send of {}", s.msg),
            s.created,
            start,
            b,
            &s.ends,
            &s.regs,
            &mut out,
        );
        let _ = done;
        windows.push((&s.msg, start, b));
    }
    windows.sort_by_key(|(m, a, _)| (format!("{m}"), *a));
    for w in windows.windows(2) {
        let (m1, a1, b1) = &w[0];
        let (m2, a2, _) = &w[1];
        if m1 == m2 && a2 < b1 && a1 != a2 {
            out.push(DynViolation {
                what: format!("overlapping sends of {m1}"),
                window: (*a2, *b1),
            });
        }
    }
    out
}

/// Convenience: samples `runs` random executions and returns the first
/// run's violations found, if any.
pub fn fuzz_thread(
    ir: &ThreadIr,
    runs: usize,
    max_latency: u64,
    rng: &mut impl Rng,
) -> Option<(ConcreteRun, Vec<DynViolation>)> {
    for _ in 0..runs {
        let run = sample_run(ir, rng, max_latency);
        let violations = check_run(ir, &run);
        if !violations.is_empty() {
            return Some((run, violations));
        }
    }
    None
}

/// Splitmix64 finalizer: decorrelates the per-run seeds of
/// [`fuzz_thread_batch`] so neighbouring run indices draw independent
/// latency/branch streams.
fn split_seed(base: u64, run: u64) -> u64 {
    let mut z = base
        .wrapping_add(run.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The batched check entry point: samples `runs` executions with
/// independently seeded per-run RNGs, chunked across up to `workers`
/// scoped threads, and returns the violating run with the **lowest run
/// index** (so the result is deterministic in `seed` regardless of the
/// worker count — unlike [`fuzz_thread`], whose single mutable RNG
/// serializes the search).
///
/// Each worker scans a contiguous run range and stops early once it finds
/// a violation in its own range; the minimum across workers wins. The
/// returned index says how many safe runs precede the counterexample.
pub fn fuzz_thread_batch(
    ir: &ThreadIr,
    runs: usize,
    max_latency: u64,
    seed: u64,
    workers: usize,
) -> Option<(usize, ConcreteRun, Vec<DynViolation>)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let check_range = |lo: usize, hi: usize| -> Option<(usize, ConcreteRun, Vec<DynViolation>)> {
        for run_idx in lo..hi {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, run_idx as u64));
            let run = sample_run(ir, &mut rng, max_latency);
            let violations = check_run(ir, &run);
            if !violations.is_empty() {
                return Some((run_idx, run, violations));
            }
        }
        None
    };

    let workers = workers.max(1).min(runs.max(1));
    if workers <= 1 {
        return check_range(0, runs);
    }
    let chunk = runs.div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = (lo + chunk).min(runs);
                s.spawn(move || check_range(lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("oracle worker panicked"))
            .min_by_key(|(idx, _, _)| *idx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_ir::{build_proc, BuildCtx};
    use anvil_syntax::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ir_for(src: &str) -> Vec<ThreadIr> {
        let prog = parse(src).unwrap();
        let proc = &prog.procs[0];
        let ctx = BuildCtx {
            program: &prog,
            proc,
        };
        build_proc(&ctx, 3).unwrap()
    }

    #[test]
    fn safe_program_has_no_dynamic_violations() {
        let irs = ir_for(
            "chan cache_ch {
                right req : (logic[8]@res),
                left res : (logic[8]@req)
            }
            proc top_safe(c : left cache_ch) {
                reg addr : logic[8];
                loop {
                    send c.req (*addr) >>
                    let d = recv c.res >>
                    set addr := *addr + 1 >>
                    cycle 1
                }
            }",
        );
        let mut rng = StdRng::seed_from_u64(7);
        for ir in &irs {
            assert!(fuzz_thread(ir, 200, 5, &mut rng).is_none());
        }
    }

    #[test]
    fn unsafe_program_caught_dynamically() {
        // Fig. 5 Top_Unsafe: mutation during the 2-cycle address hold.
        let irs = ir_for(
            "chan memory_ch {
                right address : (logic[8]@#2),
                left data : (logic[8]@#1)
            }
            proc top_unsafe(mem : left memory_ch) {
                reg addr : logic[8];
                loop {
                    send mem.address (*addr) >>
                    set addr := *addr + 1 >>
                    let d = recv mem.data >>
                    cycle 1
                }
            }",
        );
        let mut rng = StdRng::seed_from_u64(7);
        let found = irs
            .iter()
            .any(|ir| fuzz_thread(ir, 200, 5, &mut rng).is_some());
        assert!(found, "dynamic oracle should catch the Fig. 5 hazard");
    }

    #[test]
    fn batched_oracle_matches_sequential_verdicts() {
        let safe = ir_for(
            "chan cache_ch {
                right req : (logic[8]@res),
                left res : (logic[8]@req)
            }
            proc top_safe(c : left cache_ch) {
                reg addr : logic[8];
                loop {
                    send c.req (*addr) >>
                    let d = recv c.res >>
                    set addr := *addr + 1 >>
                    cycle 1
                }
            }",
        );
        for ir in &safe {
            assert!(fuzz_thread_batch(ir, 200, 5, 7, 4).is_none());
        }

        let unsafe_ = ir_for(
            "chan memory_ch {
                right address : (logic[8]@#2),
                left data : (logic[8]@#1)
            }
            proc top_unsafe(mem : left memory_ch) {
                reg addr : logic[8];
                loop {
                    send mem.address (*addr) >>
                    set addr := *addr + 1 >>
                    let d = recv mem.data >>
                    cycle 1
                }
            }",
        );
        // Deterministic in the seed: every worker count reports the same
        // lowest-index counterexample.
        let baseline: Vec<Option<usize>> = unsafe_
            .iter()
            .map(|ir| fuzz_thread_batch(ir, 300, 5, 11, 1).map(|(i, _, _)| i))
            .collect();
        assert!(baseline.iter().any(Option::is_some), "hazard not caught");
        for workers in [2, 4, 8] {
            let got: Vec<Option<usize>> = unsafe_
                .iter()
                .map(|ir| fuzz_thread_batch(ir, 300, 5, 11, workers).map(|(i, _, _)| i))
                .collect();
            assert_eq!(baseline, got, "workers={workers} changed the verdict");
        }
    }

    #[test]
    fn short_lived_send_caught_dynamically() {
        let irs = ir_for(
            "chan ch {
                right data : (logic@res),
                left res : (logic@#1)
            }
            chan ch_s { right data : (logic@#1) }
            proc child(ep : right ch_s, up : left ch) {
                loop {
                    let d = recv ep.data >>
                    send up.data (d) >>
                    let r = recv up.res >>
                    cycle 1
                }
            }",
        );
        let mut rng = StdRng::seed_from_u64(3);
        let found = irs
            .iter()
            .any(|ir| fuzz_thread(ir, 300, 6, &mut rng).is_some());
        assert!(found);
    }
}
