//! A bounded model checker over flattened netlists (paper Appendix A).
//!
//! The paper contrasts Anvil's instant, compositional type check against
//! verification of the same property on the generated RTL: bounded model
//! checking "fails to report a violation even at large depths because of
//! the prohibitive size of the model". This module reproduces that
//! comparison: an explicit-state breadth-first model checker that unrolls
//! the design cycle by cycle, branching over all input assignments, and
//! checks a 1-bit assertion expression each cycle.
//!
//! On Appendix A's Listing 1/2 design — where the violation needs the
//! 32-bit counter to pass `0x100000` — the checker exhausts any realistic
//! depth/state budget without finding the bug, while `anvil-typeck`
//! rejects the source immediately.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use anvil_rtl::{Bits, Expr, Module, SignalKind};
use anvil_sim::{sweep_chunks, Backend, Sim, SimBatch, SimError, TapeProgram};

/// Outcome of a bounded model-checking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcResult {
    /// The assertion can be violated; the input trace (one vector of input
    /// values per cycle) reproduces it.
    Violation {
        /// Depth at which the violation occurs.
        depth: usize,
        /// Input assignments per cycle, in port order.
        trace: Vec<Vec<u64>>,
    },
    /// No violation within the given depth.
    ExhaustedDepth {
        /// States explored.
        states: usize,
    },
    /// The state budget ran out before the depth bound.
    ExhaustedStates {
        /// Depth reached when the budget ran out.
        depth: usize,
    },
}

/// Bounded model checking statistics.
#[derive(Clone, Debug, Default)]
pub struct BmcStats {
    /// Total states visited.
    pub states_visited: usize,
    /// Deepest level fully explored.
    pub depth_reached: usize,
}

/// Explicit-state BMC: explores every input assignment up to `depth`
/// cycles, checking that `assertion` (a 1-bit expression over the module's
/// signals) holds in every settled cycle.
///
/// Inputs wider than 1 bit are sampled at two corner values (0 and
/// all-ones) to keep the branching factor finite — matching how SMT-based
/// BMC behaves when it cannot enumerate: coverage is partial, which is
/// exactly the weakness Appendix A highlights.
///
/// # Errors
///
/// Propagates simulator preparation errors.
pub fn bmc(
    module: &Module,
    assertion: &Expr,
    depth: usize,
    max_states: usize,
) -> Result<(BmcResult, BmcStats), SimError> {
    bmc_with_backend(module, assertion, depth, max_states, Backend::from_env()?)
}

/// [`bmc`] on an explicitly chosen simulation backend.
///
/// The module is lowered once and every candidate trace replays through
/// [`Sim::reset`], so the compiled backend's one-time tape lowering is
/// amortized across the whole state search — this is the path that makes
/// brute-forcing deep schedules practical.
///
/// # Errors
///
/// Propagates simulator preparation errors.
pub fn bmc_with_backend(
    module: &Module,
    assertion: &Expr,
    depth: usize,
    max_states: usize,
    backend: Backend,
) -> Result<(BmcResult, BmcStats), SimError> {
    Ok(bmc_impl(
        module,
        assertion,
        depth,
        max_states,
        backend,
        None,
        anvil_smt::Deadline::none(),
    )?
    .expect("search without a stop flag always concludes"))
}

/// The explicit-state search loop behind [`bmc_with_backend`], with an
/// optional cooperative stop flag and wall-clock deadline (both polled
/// once per candidate trace). Returns `Ok(None)` when stopped or expired
/// early — used by [`crate::prove::prove_portfolio`] to cancel the
/// explicit engine once the symbolic one concludes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bmc_impl(
    module: &Module,
    assertion: &Expr,
    depth: usize,
    max_states: usize,
    backend: Backend,
    stop: Option<&AtomicBool>,
    deadline: anvil_smt::Deadline,
) -> Result<Option<(BmcResult, BmcStats)>, SimError> {
    let (inputs, choices) = input_corners(module);
    let mut stats = BmcStats::default();
    // Frontier of (input trace so far). Replaying each path from reset
    // keeps memory bounded; state hashing prunes converged paths. One
    // simulation is prepared up front and rewound per path, so the
    // compiled backend lowers its tape exactly once.
    let mut frontier: Vec<Vec<Vec<u64>>> = vec![vec![]];
    let mut seen: HashSet<u64> = HashSet::new();
    let mut sim = Sim::with_backend(module, backend)?;

    for d in 0..depth {
        let mut next = Vec::new();
        for prefix in &frontier {
            for combo in cartesian(&choices) {
                if stop.is_some_and(|s| s.load(Ordering::Relaxed)) || deadline.expired() {
                    return Ok(None);
                }
                let mut trace = prefix.clone();
                trace.push(combo);
                // Replay the trace.
                sim.reset();
                let mut violated = false;
                for step in &trace {
                    for ((name, width), v) in inputs.iter().zip(step) {
                        sim.poke(name, Bits::from_u64(*v, *width))?;
                    }
                    if sim.eval(assertion).is_zero() {
                        violated = true;
                        break;
                    }
                    sim.step()?;
                }
                stats.states_visited += 1;
                if violated {
                    stats.depth_reached = d + 1;
                    return Ok(Some((
                        BmcResult::Violation {
                            depth: trace.len(),
                            trace,
                        },
                        stats,
                    )));
                }
                if stats.states_visited >= max_states {
                    stats.depth_reached = d;
                    return Ok(Some((BmcResult::ExhaustedStates { depth: d }, stats)));
                }
                // Prune states we have seen at any depth.
                let h = sim.state_fingerprint();
                if seen.insert(h) {
                    next.push(trace);
                }
            }
        }
        stats.depth_reached = d + 1;
        if next.is_empty() {
            break; // full state space covered
        }
        frontier = next;
    }
    Ok(Some((
        BmcResult::ExhaustedDepth {
            states: stats.states_visited,
        },
        stats,
    )))
}

/// The input enumeration both checkers share: `(name, width)` per input
/// port, and the candidate values per input — exhaustive for 1-bit
/// inputs, the 0 / all-ones corners otherwise.
fn input_corners(module: &Module) -> (Vec<(String, usize)>, Vec<Vec<u64>>) {
    let inputs: Vec<(String, usize)> = module
        .iter_signals()
        .filter(|(_, s)| s.kind == SignalKind::Input)
        .map(|(_, s)| (s.name.clone(), s.width))
        .collect();
    let choices: Vec<Vec<u64>> = inputs
        .iter()
        .map(|(_, w)| {
            if *w == 1 {
                vec![0, 1]
            } else {
                vec![0, (1u64 << (*w).min(63)) - 1]
            }
        })
        .collect();
    (inputs, choices)
}

/// Multi-lane parallel [`bmc`]: explores `lanes` candidate stimulus
/// schedules per tape pass on the SIMD-style batch executor, with
/// lane-chunks spread across up to `workers` scoped threads.
///
/// The frontier search is *identical* to sequential [`bmc`] — candidates
/// are enumerated in the same order, each wave's results are folded back
/// sequentially for violation reporting, the state budget, and
/// fingerprint pruning — so the outcome (including the counterexample
/// trace and the visited-state counts) is exactly what [`bmc`] returns on
/// the compiled backend; only the wall-clock changes. The design is
/// lowered once ([`TapeProgram`]) and shared by every worker.
///
/// # Errors
///
/// Propagates simulator preparation errors.
pub fn bmc_sweep(
    module: &Module,
    assertion: &Expr,
    depth: usize,
    max_states: usize,
    lanes: usize,
    workers: usize,
) -> Result<(BmcResult, BmcStats), SimError> {
    let lanes = lanes.max(1);
    let program = TapeProgram::compile(module)?;
    let (inputs, choices) = input_corners(module);
    let combos = cartesian(&choices);

    let mut stats = BmcStats::default();
    let mut frontier: Vec<Vec<Vec<u64>>> = vec![vec![]];
    let mut seen: HashSet<u64> = HashSet::new();

    for d in 0..depth {
        // The wave: every frontier prefix extended by every input combo,
        // in the exact order sequential `bmc` enumerates them, held as
        // `(prefix, combo)` index pairs — a candidate's inputs at cycle
        // `c` are `frontier[pi][c]` for `c < d` and `combos[ci]` at the
        // final cycle, so no trace is materialized until it survives into
        // the next frontier (or is the counterexample). Truncated to the
        // remaining state budget — candidates past it would never be
        // visited sequentially either.
        let budget = max_states.saturating_sub(stats.states_visited);
        let mut wave: Vec<(usize, usize)> =
            Vec::with_capacity((frontier.len() * combos.len()).min(budget.max(1)));
        'build: for pi in 0..frontier.len() {
            for ci in 0..combos.len() {
                wave.push((pi, ci));
                if wave.len() >= budget {
                    break 'build;
                }
            }
        }

        // Replay every candidate of the wave: `lanes` schedules per batch,
        // chunks across workers. Each lane reports the earliest violating
        // cycle (if any) and its end-of-trace state fingerprint.
        let wave_ref = &wave;
        let frontier_ref = &frontier;
        let inputs_ref = &inputs;
        let combos_ref = &combos;
        let chunk_results = sweep_chunks(
            &program,
            wave.len(),
            lanes,
            workers.max(1),
            |first, batch: &mut SimBatch| {
                let n = batch.lanes();
                // Input ids resolve once per chunk; each cycle then costs
                // one row poke per input ([`SimBatch::poke_u64s`]) instead
                // of a name lookup per (lane, input).
                let ids: Vec<_> = inputs_ref
                    .iter()
                    .map(|(name, _)| batch.input_id(name))
                    .collect::<Result<_, SimError>>()?;
                let mut violated = vec![false; n];
                let mut vals = vec![0u64; n];
                // `c` indexes a different `frontier_ref[pi]` per lane, so
                // iterator-chaining it away is not possible.
                #[allow(clippy::needless_range_loop)]
                for c in 0..=d {
                    // Poke every lane first, then evaluate: the lazy
                    // batch settles once per cycle for all lanes.
                    let steps: Vec<&Vec<u64>> = (first..first + n)
                        .map(|w| {
                            let (pi, ci) = wave_ref[w];
                            if c < d {
                                &frontier_ref[pi][c]
                            } else {
                                &combos_ref[ci]
                            }
                        })
                        .collect();
                    for (k, id) in ids.iter().enumerate() {
                        for (l, step) in steps.iter().enumerate() {
                            vals[l] = step[k];
                        }
                        batch.poke_u64s(*id, &vals);
                    }
                    for (l, v) in violated.iter_mut().enumerate() {
                        if !*v && batch.eval(l, assertion).is_zero() {
                            *v = true;
                        }
                    }
                    batch.step();
                }
                let fps = batch.fingerprints();
                Ok((violated, fps))
            },
        )?;
        let mut verdicts = chunk_results
            .into_iter()
            .flat_map(|(v, f)| v.into_iter().zip(f));

        // Sequential fold, mirroring `bmc`'s per-candidate bookkeeping.
        let materialize = |pi: usize, ci: usize| {
            let mut trace = frontier[pi].clone();
            trace.push(combos[ci].clone());
            trace
        };
        let mut next = Vec::new();
        for &(pi, ci) in &wave {
            let (violated, fp) = verdicts.next().expect("one verdict per candidate");
            stats.states_visited += 1;
            if violated {
                stats.depth_reached = d + 1;
                let trace = materialize(pi, ci);
                return Ok((
                    BmcResult::Violation {
                        depth: trace.len(),
                        trace,
                    },
                    stats,
                ));
            }
            if stats.states_visited >= max_states {
                stats.depth_reached = d;
                return Ok((BmcResult::ExhaustedStates { depth: d }, stats));
            }
            if seen.insert(fp) {
                next.push(materialize(pi, ci));
            }
        }
        stats.depth_reached = d + 1;
        if next.is_empty() {
            break; // full state space covered
        }
        frontier = next;
    }
    Ok((
        BmcResult::ExhaustedDepth {
            states: stats.states_visited,
        },
        stats,
    ))
}

fn cartesian(choices: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = vec![vec![]];
    for c in choices {
        let mut next = Vec::new();
        for prefix in &out {
            for v in c {
                let mut p = prefix.clone();
                p.push(*v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_rtl::Module;

    /// A design with a shallow bug: asserts `q != 3`, q counts up.
    fn shallow_bug() -> (Module, Expr) {
        let mut m = Module::new("shallow");
        let en = m.input("en", 1);
        let q = m.reg("q", 4);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 4)));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(3, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    /// Appendix A shape: the bug needs the counter to exceed a huge bound.
    fn deep_bug(threshold: u64) -> (Module, Expr) {
        let mut m = Module::new("deep");
        let q = m.reg("cnt", 32);
        m.set_next(q, Expr::Signal(q).add(Expr::lit(1, 32)));
        let ok = m.wire_from("ok", Expr::Signal(q).lt(Expr::lit(threshold, 32)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    #[test]
    fn finds_shallow_violation() {
        let (m, a) = shallow_bug();
        let (result, _) = bmc(&m, &a, 10, 100_000).unwrap();
        match result {
            BmcResult::Violation { depth, trace } => {
                assert_eq!(depth, 4); // q reaches 3 after 3 enabled cycles
                assert_eq!(trace.len(), 4);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn misses_deep_violation_within_budget() {
        // Like Appendix A: violation needs 2^20 cycles; budget is tiny.
        let (m, a) = deep_bug(0x100000);
        let (result, stats) = bmc(&m, &a, 50, 10_000).unwrap();
        assert!(
            !matches!(result, BmcResult::Violation { .. }),
            "must not find the deep bug at depth 50"
        );
        assert!(stats.states_visited > 0);
    }

    #[test]
    fn finds_deep_bug_only_with_enough_depth() {
        let (m, a) = deep_bug(40);
        let (result, _) = bmc(&m, &a, 64, 1_000_000).unwrap();
        assert!(matches!(result, BmcResult::Violation { depth, .. } if depth == 41));
    }

    #[test]
    fn backends_agree_on_bmc_outcome() {
        let (m, a) = shallow_bug();
        let (tree, tree_stats) = bmc_with_backend(&m, &a, 10, 100_000, Backend::Tree).unwrap();
        let (tape, tape_stats) = bmc_with_backend(&m, &a, 10, 100_000, Backend::Compiled).unwrap();
        assert_eq!(tree, tape);
        assert_eq!(tree_stats.states_visited, tape_stats.states_visited);
        assert_eq!(tree_stats.depth_reached, tape_stats.depth_reached);
    }

    /// `bmc_sweep` must reproduce sequential `bmc` exactly — result,
    /// counterexample trace, and bookkeeping — for every lane/worker
    /// split, on every outcome class (violation, depth exhaustion, state
    /// budget exhaustion).
    fn assert_sweep_matches(m: &Module, a: &Expr, depth: usize, max_states: usize) {
        let (seq, seq_stats) =
            bmc_with_backend(m, a, depth, max_states, Backend::Compiled).unwrap();
        for lanes in [1, 3, 8, 16] {
            for workers in [1, 4] {
                let (swept, sweep_stats) =
                    bmc_sweep(m, a, depth, max_states, lanes, workers).unwrap();
                assert_eq!(
                    seq, swept,
                    "sweep diverged from sequential bmc at lanes={lanes} workers={workers}"
                );
                assert_eq!(seq_stats.states_visited, sweep_stats.states_visited);
                assert_eq!(seq_stats.depth_reached, sweep_stats.depth_reached);
            }
        }
    }

    #[test]
    fn sweep_finds_the_same_shallow_violation() {
        let (m, a) = shallow_bug();
        assert_sweep_matches(&m, &a, 10, 100_000);
    }

    #[test]
    fn sweep_misses_the_same_deep_violation_within_budget() {
        let (m, a) = deep_bug(0x100000);
        assert_sweep_matches(&m, &a, 12, 2_000);
    }

    #[test]
    fn sweep_finds_the_same_deep_bug_with_enough_depth() {
        let (m, a) = deep_bug(40);
        assert_sweep_matches(&m, &a, 64, 1_000_000);
    }

    #[test]
    fn sweep_covers_exhausted_state_space() {
        // 4-bit counter wraps: the full reachable state space is covered
        // before the depth bound, exercising the early-exit path.
        let mut m = Module::new("wrap");
        let q = m.reg("q", 2);
        m.set_next(q, Expr::Signal(q).add(Expr::lit(1, 2)));
        let ok = m.wire_from("ok", Expr::lit(1, 1));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let a = Expr::Signal(m.find("ok").unwrap());
        assert_sweep_matches(&m, &a, 40, 100_000);
    }
}
