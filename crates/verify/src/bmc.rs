//! A bounded model checker over flattened netlists (paper Appendix A).
//!
//! The paper contrasts Anvil's instant, compositional type check against
//! verification of the same property on the generated RTL: bounded model
//! checking "fails to report a violation even at large depths because of
//! the prohibitive size of the model". This module reproduces that
//! comparison: an explicit-state breadth-first model checker that unrolls
//! the design cycle by cycle, branching over all input assignments, and
//! checks a 1-bit assertion expression each cycle.
//!
//! On Appendix A's Listing 1/2 design — where the violation needs the
//! 32-bit counter to pass `0x100000` — the checker exhausts any realistic
//! depth/state budget without finding the bug, while `anvil-typeck`
//! rejects the source immediately.

use std::collections::HashSet;

use anvil_rtl::{Bits, Expr, Module, SignalKind};
use anvil_sim::{Backend, Sim, SimError};

/// Outcome of a bounded model-checking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcResult {
    /// The assertion can be violated; the input trace (one vector of input
    /// values per cycle) reproduces it.
    Violation {
        /// Depth at which the violation occurs.
        depth: usize,
        /// Input assignments per cycle, in port order.
        trace: Vec<Vec<u64>>,
    },
    /// No violation within the given depth.
    ExhaustedDepth {
        /// States explored.
        states: usize,
    },
    /// The state budget ran out before the depth bound.
    ExhaustedStates {
        /// Depth reached when the budget ran out.
        depth: usize,
    },
}

/// Bounded model checking statistics.
#[derive(Clone, Debug, Default)]
pub struct BmcStats {
    /// Total states visited.
    pub states_visited: usize,
    /// Deepest level fully explored.
    pub depth_reached: usize,
}

/// Explicit-state BMC: explores every input assignment up to `depth`
/// cycles, checking that `assertion` (a 1-bit expression over the module's
/// signals) holds in every settled cycle.
///
/// Inputs wider than 1 bit are sampled at two corner values (0 and
/// all-ones) to keep the branching factor finite — matching how SMT-based
/// BMC behaves when it cannot enumerate: coverage is partial, which is
/// exactly the weakness Appendix A highlights.
///
/// # Errors
///
/// Propagates simulator preparation errors.
pub fn bmc(
    module: &Module,
    assertion: &Expr,
    depth: usize,
    max_states: usize,
) -> Result<(BmcResult, BmcStats), SimError> {
    bmc_with_backend(module, assertion, depth, max_states, Backend::from_env())
}

/// [`bmc`] on an explicitly chosen simulation backend.
///
/// The module is lowered once and every candidate trace replays through
/// [`Sim::reset`], so the compiled backend's one-time tape lowering is
/// amortized across the whole state search — this is the path that makes
/// brute-forcing deep schedules practical.
///
/// # Errors
///
/// Propagates simulator preparation errors.
pub fn bmc_with_backend(
    module: &Module,
    assertion: &Expr,
    depth: usize,
    max_states: usize,
    backend: Backend,
) -> Result<(BmcResult, BmcStats), SimError> {
    let inputs: Vec<(String, usize)> = module
        .iter_signals()
        .filter(|(_, s)| s.kind == SignalKind::Input)
        .map(|(_, s)| (s.name.clone(), s.width))
        .collect();
    // Candidate values per input: exhaustive for 1-bit, corners otherwise.
    let choices: Vec<Vec<u64>> = inputs
        .iter()
        .map(|(_, w)| {
            if *w == 1 {
                vec![0, 1]
            } else {
                vec![0, (1u64 << (*w).min(63)) - 1]
            }
        })
        .collect();

    let mut stats = BmcStats::default();
    // Frontier of (input trace so far). Replaying each path from reset
    // keeps memory bounded; state hashing prunes converged paths. One
    // simulation is prepared up front and rewound per path, so the
    // compiled backend lowers its tape exactly once.
    let mut frontier: Vec<Vec<Vec<u64>>> = vec![vec![]];
    let mut seen: HashSet<u64> = HashSet::new();
    let mut sim = Sim::with_backend(module, backend)?;

    for d in 0..depth {
        let mut next = Vec::new();
        for prefix in &frontier {
            for combo in cartesian(&choices) {
                let mut trace = prefix.clone();
                trace.push(combo);
                // Replay the trace.
                sim.reset();
                let mut violated = false;
                for step in &trace {
                    for ((name, width), v) in inputs.iter().zip(step) {
                        sim.poke(name, Bits::from_u64(*v, *width))?;
                    }
                    if sim.eval(assertion).is_zero() {
                        violated = true;
                        break;
                    }
                    sim.step()?;
                }
                stats.states_visited += 1;
                if violated {
                    stats.depth_reached = d + 1;
                    return Ok((
                        BmcResult::Violation {
                            depth: trace.len(),
                            trace,
                        },
                        stats,
                    ));
                }
                if stats.states_visited >= max_states {
                    stats.depth_reached = d;
                    return Ok((BmcResult::ExhaustedStates { depth: d }, stats));
                }
                // Prune states we have seen at any depth.
                let h = sim.state_fingerprint();
                if seen.insert(h) {
                    next.push(trace);
                }
            }
        }
        stats.depth_reached = d + 1;
        if next.is_empty() {
            break; // full state space covered
        }
        frontier = next;
    }
    Ok((
        BmcResult::ExhaustedDepth {
            states: stats.states_visited,
        },
        stats,
    ))
}

fn cartesian(choices: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = vec![vec![]];
    for c in choices {
        let mut next = Vec::new();
        for prefix in &out {
            for v in c {
                let mut p = prefix.clone();
                p.push(*v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_rtl::Module;

    /// A design with a shallow bug: asserts `q != 3`, q counts up.
    fn shallow_bug() -> (Module, Expr) {
        let mut m = Module::new("shallow");
        let en = m.input("en", 1);
        let q = m.reg("q", 4);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 4)));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(3, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    /// Appendix A shape: the bug needs the counter to exceed a huge bound.
    fn deep_bug(threshold: u64) -> (Module, Expr) {
        let mut m = Module::new("deep");
        let q = m.reg("cnt", 32);
        m.set_next(q, Expr::Signal(q).add(Expr::lit(1, 32)));
        let ok = m.wire_from("ok", Expr::Signal(q).lt(Expr::lit(threshold, 32)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    #[test]
    fn finds_shallow_violation() {
        let (m, a) = shallow_bug();
        let (result, _) = bmc(&m, &a, 10, 100_000).unwrap();
        match result {
            BmcResult::Violation { depth, trace } => {
                assert_eq!(depth, 4); // q reaches 3 after 3 enabled cycles
                assert_eq!(trace.len(), 4);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn misses_deep_violation_within_budget() {
        // Like Appendix A: violation needs 2^20 cycles; budget is tiny.
        let (m, a) = deep_bug(0x100000);
        let (result, stats) = bmc(&m, &a, 50, 10_000).unwrap();
        assert!(
            !matches!(result, BmcResult::Violation { .. }),
            "must not find the deep bug at depth 50"
        );
        assert!(stats.states_visited > 0);
    }

    #[test]
    fn finds_deep_bug_only_with_enough_depth() {
        let (m, a) = deep_bug(40);
        let (result, _) = bmc(&m, &a, 64, 1_000_000).unwrap();
        assert!(matches!(result, BmcResult::Violation { depth, .. } if depth == 41));
    }

    #[test]
    fn backends_agree_on_bmc_outcome() {
        let (m, a) = shallow_bug();
        let (tree, tree_stats) = bmc_with_backend(&m, &a, 10, 100_000, Backend::Tree).unwrap();
        let (tape, tape_stats) = bmc_with_backend(&m, &a, 10, 100_000, Backend::Compiled).unwrap();
        assert_eq!(tree, tape);
        assert_eq!(tree_stats.states_visited, tape_stats.states_visited);
        assert_eq!(tree_stats.depth_reached, tape_stats.depth_reached);
    }
}
