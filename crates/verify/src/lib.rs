//! Verification substrates for the Anvil reproduction.
//!
//! Three independent pieces, each standing in for infrastructure the
//! paper's evaluation leaned on (see DESIGN.md §1):
//!
//! * [`oracle`] — the dynamic timing-safety oracle implementing the
//!   execution-log safety conditions of Appendix C (Def. C.15). Used to
//!   property-test the paper's central theorem (C.20): well-typed
//!   programs stay safe under *every* sampled latency/branch assignment.
//! * [`bmc()`](bmc::bmc) — an explicit-state bounded model checker over flattened
//!   netlists, reproducing Appendix A's comparison: BMC misses deep
//!   violations that Anvil's type system flags instantly.
//! * [`rules`] — a Bluespec-style guarded-atomic-rule scheduler,
//!   reproducing Fig. 2: per-cycle conflict-free schedules that are
//!   nonetheless timing-unsafe across cycles.
//! * [`prove()`](prove::prove) — **symbolic** bounded model checking,
//!   k-induction, and IC3/PDR ([`prove_pdr`]) over bit-blasted,
//!   rewrite+fraig-optimized netlists (`anvil-smt`): unlike the
//!   explicit-state checker they reason about all inputs at once and can
//!   return *proved for all time*, with SAT counterexamples reconstructed
//!   into the explicit checker's replayable trace format and confirmed on
//!   the simulator. [`prove_portfolio`] runs all engines as a
//!   clause-sharing cooperative portfolio and emits proof certificates
//!   for caching ([`revalidate_certificate`]).

#![warn(missing_docs)]

pub mod bmc;
pub mod oracle;
pub mod prove;
pub mod rules;

pub use bmc::{bmc, bmc_sweep, bmc_with_backend, BmcResult, BmcStats};
pub use oracle::{
    check_run, fuzz_thread, fuzz_thread_batch, sample_run, ConcreteRun, DynViolation,
};
pub use prove::{
    prove, prove_bounded, prove_pdr, prove_portfolio, prove_with_circuit, render_trace,
    replay_trace, revalidate_certificate, trace_inputs, PortfolioOutcome, ProveError, ProveResult,
    ProveStats, Prover,
};
pub use rules::{fig2_contract_violations, fig2_engine, sweep_schedules, Rule, RuleEngine, State};

// Re-exported so proof-cache clients (anvild, benches) can build
// circuits and handle certificates without a direct `anvil-smt` edge.
pub use anvil_smt::{optimize, AigCircuit, CertKind, Deadline, ProofCert};
