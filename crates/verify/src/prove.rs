//! Symbolic bounded model checking, k-induction, and IC3/PDR over
//! bit-blasted netlists.
//!
//! Where [`crate::bmc()`] enumerates concrete simulator states — and
//! therefore can never return "holds for all time" — this module reasons
//! about *all* inputs at once: the flattened [`Module`] is bit-blasted
//! into an [`AigCircuit`], run through the AIG optimize pipeline
//! (DAG-aware rewriting, SAT-sweeping/fraiging, cone-of-influence and
//! constant sweeping — see [`anvil_smt::optimize`]), and the shrunken
//! latch transition relation is handed to the proof engines.
//!
//! [`prove`] interleaves two incremental solver sessions per depth `k`:
//!
//! * **base case** — can the assertion fail `k` cycles after reset? A
//!   `Sat` answer yields a concrete input trace, reconstructed in the
//!   exact format [`crate::bmc()`] emits (one `Vec<u64>` of input-port
//!   values per cycle) and *confirmed by replaying it on the simulator*
//!   before it is returned as [`ProveResult::Falsified`].
//! * **induction step** — from an arbitrary (not necessarily reachable)
//!   state, do `k + 1` consecutive assertion-satisfying cycles force the
//!   assertion in the next cycle? An `Unsat` answer here, combined with
//!   the accumulated base cases, proves the property for **all time**:
//!   [`ProveResult::Proved`].
//!
//! [`prove_pdr`] runs the IC3/PDR engine ([`anvil_smt::Pdr`]) on the same
//! optimized graph: it maintains frames of blocking clauses over latch
//! literals and either converges on an inductive invariant (returned as a
//! checkable certificate by [`prove_portfolio`]) or traces a proof
//! obligation back to reset, yielding a minimal-depth counterexample that
//! is replay-confirmed like every other trace.
//!
//! If no engine concludes within its budget, the result is
//! [`ProveResult::Unknown`] with the depth that *was* fully checked —
//! exactly the bounded guarantee the explicit-state checker gives, which
//! is the comparison the paper's Appendix A draws.
//!
//! [`prove_portfolio`] runs symbolic BMC + k-induction, PDR, and the
//! explicit-state sweep as a *cooperating* portfolio on scoped threads:
//! besides the shared stop flag, the SAT-based engines exchange learnt
//! clauses through a bounded [`ClauseExchange`] — PDR publishes its frame
//! clauses as reachability facts the BMC session asserts at its unrolled
//! frames, and the induction-step session publishes assumption-widened
//! learnt clauses any engine may use — and the winner's evidence is
//! packaged as a [`ProofCert`] that [`revalidate_certificate`] can check
//! later in a single incremental SAT session (the proof-cache warm path).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use anvil_rtl::{Bits, BlastError, Expr, Module, SignalId, SignalKind};
use anvil_sim::{run_indexed, Backend, Sim, SimError};
use anvil_smt::{
    optimize, rewrite, Aig, AigCircuit, CertKind, ClauseExchange, ClauseKind, CnfEncoder, Deadline,
    ExchangeStats, LatchLit, Lit, Node, Pdr, PdrOptions, PdrOutcome, ProofCert, Rewritten, SLit,
    SharedClause, SolveResult, Solver, Unroller,
};

use crate::bmc::{bmc_impl, BmcResult, BmcStats};

/// Outcome of a symbolic verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveResult {
    /// The assertion holds in every reachable state, for all time.
    /// For the interleaved engine `k` is the induction window that closed
    /// the proof (the property is inductive over windows of `k` cycles,
    /// and the first `k` cycles from reset are violation-free); for PDR
    /// it is the frame level at which the reachability over-approximation
    /// converged. `k = 0` means the assertion folded to a combinational
    /// constant truth during blasting or optimization, or the proof came
    /// from revalidating a cached certificate — no search was needed.
    Proved {
        /// The induction window / converged frame (0 = no search needed).
        k: usize,
    },
    /// The assertion is violated `depth` cycles after reset; `trace` is
    /// the per-cycle input-port assignment reproducing it — the same
    /// replayable format [`crate::bmc()`] emits, confirmed on the
    /// simulator before being returned.
    Falsified {
        /// Number of cycles in the counterexample (violation fires in
        /// the last one).
        depth: usize,
        /// Input values per cycle, in input-port declaration order.
        trace: Vec<Vec<u64>>,
    },
    /// Neither a proof nor a counterexample within the depth budget;
    /// the assertion is violation-free for at least `depth` cycles from
    /// reset.
    Unknown {
        /// Cycles fully checked from reset.
        depth: usize,
    },
}

/// Work counters for one symbolic run (all solver sessions combined).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProveStats {
    /// Frames unrolled (base-case session) or PDR frame levels opened.
    pub frames: usize,
    /// Nodes in the sequential AIG as blasted, before optimization.
    pub aig_nodes: usize,
    /// Nodes after the rewrite → fraig → sweep pipeline.
    pub aig_nodes_after: usize,
    /// Latches in the optimized cone (post cone-of-influence sweep).
    pub latches: usize,
    /// SAT variables allocated across the engine's sessions.
    pub vars: usize,
    /// Problem clauses added across the engine's sessions.
    pub clauses: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Wall-clock microseconds this engine ran (per-engine timing for
    /// deadline tuning; the portfolio reports each side's own number).
    pub wall_micros: u64,
}

/// Failures while preparing or running a symbolic proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveError {
    /// Bit-blasting rejected the module (instances, combinational loops,
    /// width errors) or the assertion (width errors).
    Blast(BlastError),
    /// A counterexample drives an input wider than 64 bits to a value a
    /// `u64` trace cannot carry.
    WideCounterexample {
        /// The input port needing more than 64 bits.
        input: String,
    },
    /// Replaying a SAT counterexample on the simulator did not reproduce
    /// the violation at the expected cycle (this indicates a bug in the
    /// blasting or solving pipeline and is asserted away in tests).
    UnconfirmedCounterexample {
        /// The depth the solver claimed.
        depth: usize,
    },
    /// The simulator rejected the module during counterexample replay.
    Sim(SimError),
}

impl std::fmt::Display for ProveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProveError::Blast(e) => write!(f, "bit-blasting failed: {e}"),
            ProveError::WideCounterexample { input } => write!(
                f,
                "counterexample drives input `{input}` past the 64-bit trace format"
            ),
            ProveError::UnconfirmedCounterexample { depth } => write!(
                f,
                "counterexample at depth {depth} did not replay to a concrete violation"
            ),
            ProveError::Sim(e) => write!(f, "simulation failed during replay: {e}"),
        }
    }
}

impl std::error::Error for ProveError {}

impl From<BlastError> for ProveError {
    fn from(e: BlastError) -> Self {
        ProveError::Blast(e)
    }
}

impl From<SimError> for ProveError {
    fn from(e: SimError) -> Self {
        ProveError::Sim(e)
    }
}

/// Input ports `(name, width)` in declaration order — the column order of
/// every counterexample trace (shared with [`crate::bmc()`]).
pub fn trace_inputs(module: &Module) -> Vec<(String, usize)> {
    module
        .iter_signals()
        .filter(|(_, s)| s.kind == SignalKind::Input)
        .map(|(_, s)| (s.name.clone(), s.width))
        .collect()
}

/// Proves or refutes `assertion` (truthy = holds, the same convention as
/// [`crate::bmc()`]) on a flattened module by interleaved symbolic BMC and
/// k-induction up to window `max_k`.
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove(
    module: &Module,
    assertion: &Expr,
    max_k: usize,
) -> Result<(ProveResult, ProveStats), ProveError> {
    let circuit = AigCircuit::from_module(module)?;
    prove_with_circuit(&circuit, assertion, max_k, None)
}

/// Symbolic bounded model checking only (no induction): search for a
/// counterexample within `depth` cycles of reset. Returns
/// [`ProveResult::Falsified`] at the minimal violating depth,
/// [`ProveResult::Proved`] (with `k = 0`) only when the assertion folds
/// to a constant truth during blasting or optimization, and
/// [`ProveResult::Unknown`] otherwise. `depth = 0` checks nothing and
/// returns `Unknown { depth: 0 }` (unless the assertion is constant).
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove_bounded(
    module: &Module,
    assertion: &Expr,
    depth: usize,
) -> Result<(ProveResult, ProveStats), ProveError> {
    let circuit = AigCircuit::from_module(module)?;
    let prep = Arc::new(Prepared::new(&circuit, assertion)?);
    Engine::new(prep, None, Deadline::none(), None).run(depth, false)
}

/// [`prove`] over a pre-built (possibly session-cached) [`AigCircuit`],
/// with an optional cooperative stop flag for portfolio runs.
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove_with_circuit(
    circuit: &AigCircuit,
    assertion: &Expr,
    max_k: usize,
    stop: Option<Arc<AtomicBool>>,
) -> Result<(ProveResult, ProveStats), ProveError> {
    let prep = Arc::new(Prepared::new(circuit, assertion)?);
    Engine::new(prep, stop, Deadline::none(), None).run(max_k + 1, true)
}

/// Proves or refutes `assertion` with the IC3/PDR engine alone, exploring
/// at most `max_frames` frame levels. Proofs come from a converged
/// inductive invariant; counterexamples are minimal-depth and confirmed
/// by simulator replay like every other trace.
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove_pdr(
    module: &Module,
    assertion: &Expr,
    max_frames: usize,
) -> Result<(ProveResult, ProveStats), ProveError> {
    let circuit = AigCircuit::from_module(module)?;
    let prep = Prepared::new(&circuit, assertion)?;
    run_pdr_inner(&prep, max_frames, None, Deadline::none(), None).map(|(r, s, _)| (r, s))
}

/// A circuit readied for proving: the assertion blasted into a clone of
/// the design and the combined graph run through the optimize pipeline
/// (rewrite → fraig → sweep), with enough mapping information kept to
/// translate counterexamples and invariants back to the original design.
struct Prepared {
    /// The original circuit with the assertion blasted in (trace replay
    /// and certificate revalidation run against this).
    circuit: Arc<AigCircuit>,
    assertion: Expr,
    /// The optimized sequential graph all SAT engines unroll.
    seq: Arc<Aig>,
    /// The assertion root in the optimized graph.
    ok: Lit,
    /// Input ports `(signal, bits)` with bit literals already mapped into
    /// the optimized graph (input numbering is preserved 1:1 by the
    /// pipeline, node indices are not).
    input_ports: Vec<(usize, Vec<Lit>)>,
    /// Optimized latch index → original latch index.
    latch_origin: Vec<u32>,
}

impl Prepared {
    fn new(circuit: &AigCircuit, assertion: &Expr) -> Result<Prepared, ProveError> {
        let _sp = anvil_trace::span("prove", "prepare");
        let mut circuit = circuit.clone();
        let ok0 = circuit.blast_assertion(assertion)?;
        let (rw, _opt) = optimize(circuit.aig(), &[ok0], false);
        let ok = rw
            .map_lit(ok0)
            .expect("property root survives optimization");
        let input_ports = circuit
            .input_bits()
            .iter()
            .map(|(sig, bits)| {
                let mapped = bits
                    .iter()
                    .map(|b| rw.map_lit(*b).expect("inputs survive optimization 1:1"))
                    .collect();
                (*sig, mapped)
            })
            .collect();
        let Rewritten {
            aig, latch_origin, ..
        } = rw;
        Ok(Prepared {
            circuit: Arc::new(circuit),
            assertion: assertion.clone(),
            seq: Arc::new(aig),
            ok,
            input_ports,
            latch_origin,
        })
    }

    /// Maps invariant clauses from optimized latch indices back to the
    /// original design's latch space (for certificates that must check
    /// against the unoptimized graph).
    fn to_original_latches(&self, clauses: &[Vec<LatchLit>]) -> Vec<Vec<LatchLit>> {
        clauses
            .iter()
            .map(|c| {
                c.iter()
                    .map(|l| LatchLit {
                        latch: self.latch_origin[l.latch as usize],
                        negated: l.negated,
                    })
                    .collect()
            })
            .collect()
    }

    /// Converts PDR's per-cycle input-bit assignments (indexed by
    /// sequential input number) into the port-level `u64` trace format.
    fn trace_from_input_bits(&self, inputs: &[Vec<bool>]) -> Result<Vec<Vec<u64>>, ProveError> {
        let module = self.circuit.module();
        let mut trace = Vec::with_capacity(inputs.len());
        for cycle in inputs {
            let mut step = Vec::new();
            for (sig, bits) in &self.input_ports {
                let name = &module.signal(SignalId(*sig)).name;
                let mut v = 0u64;
                for (i, bit) in bits.iter().enumerate() {
                    let set = match self.seq.node(bit.node()) {
                        Node::Input(n) => {
                            cycle.get(n as usize).copied().unwrap_or(false) ^ bit.is_negated()
                        }
                        _ => false,
                    };
                    if set {
                        if i >= 64 {
                            return Err(ProveError::WideCounterexample {
                                input: name.clone(),
                            });
                        }
                        v |= 1 << i;
                    }
                }
                step.push(v);
            }
            trace.push(step);
        }
        Ok(trace)
    }
}

/// The interleaved BMC + induction engine over one prepared circuit.
struct Engine {
    prep: Arc<Prepared>,
    ok: Lit,
    base: Session,
    step: Session,
    stop: Option<Arc<AtomicBool>>,
    deadline: Deadline,
    started: std::time::Instant,
    exchange: Option<Arc<ClauseExchange>>,
    /// Learnt-clause export cursor into the step session's solver.
    export_cursor: usize,
    /// Import cursor into the exchange.
    import_cursor: u64,
}

/// One unroller + encoder + solver triple.
struct Session {
    unroller: Unroller,
    encoder: CnfEncoder,
    solver: Solver,
}

impl Session {
    fn new(
        seq: Arc<Aig>,
        free_init: bool,
        stop: Option<Arc<AtomicBool>>,
        deadline: Deadline,
    ) -> Session {
        let mut solver = Solver::new();
        if let Some(stop) = stop {
            solver.set_stop(stop);
        }
        solver.set_deadline(deadline);
        Session {
            unroller: Unroller::new(seq, free_init),
            encoder: CnfEncoder::new(),
            solver,
        }
    }

    /// Solves for "this literal is true in this frame".
    fn solve_lit(&mut self, frame: usize, lit: Lit) -> SolveResult {
        let comb_lit = self.unroller.lit_at(frame, lit);
        if comb_lit == Lit::FALSE {
            return SolveResult::Unsat;
        }
        if comb_lit == Lit::TRUE {
            return SolveResult::Sat;
        }
        let slit = self
            .encoder
            .encode(self.unroller.comb(), &mut self.solver, comb_lit);
        self.solver.solve(&[slit])
    }

    /// Adds "this literal holds in this frame" as a persistent fact.
    fn assert_lit(&mut self, frame: usize, lit: Lit) {
        let comb_lit = self.unroller.lit_at(frame, lit);
        if comb_lit == Lit::TRUE {
            return;
        }
        let slit = self
            .encoder
            .encode(self.unroller.comb(), &mut self.solver, comb_lit);
        self.solver.add_clause(&[slit]);
    }

    /// Asserts one shared clause with its frame offsets rebased to
    /// `base`. Clauses touching a constant-true literal are skipped
    /// (already satisfied); constant-false literals are dropped.
    fn add_shared(&mut self, base: usize, lits: &[(u32, Lit)]) {
        let mut clause = Vec::with_capacity(lits.len());
        for &(off, l) in lits {
            let comb = self.unroller.lit_at(base + off as usize, l);
            if comb == Lit::TRUE {
                return;
            }
            if comb == Lit::FALSE {
                continue;
            }
            clause.push(
                self.encoder
                    .encode(self.unroller.comb(), &mut self.solver, comb),
            );
        }
        self.solver.add_clause(&clause);
    }

    /// Translates a solver-level learnt clause into engine-neutral
    /// `(frame, sequential literal)` space, or `None` when any literal
    /// has no sequential pre-image (auxiliary variables).
    fn translate(&self, clause: &[SLit]) -> Option<Vec<(u32, Lit)>> {
        let mut out = Vec::with_capacity(clause.len());
        for &sl in clause {
            let node = self.encoder.var_node(sl.var())?;
            let (frame, src) = self.unroller.seq_source(node)?;
            let l = if sl.sign() { src.negate() } else { src };
            out.push((frame as u32, l));
        }
        Some(out)
    }
}

impl Engine {
    fn new(
        prep: Arc<Prepared>,
        stop: Option<Arc<AtomicBool>>,
        deadline: Deadline,
        exchange: Option<Arc<ClauseExchange>>,
    ) -> Engine {
        let base = Session::new(Arc::clone(&prep.seq), false, stop.clone(), deadline);
        let step = Session::new(Arc::clone(&prep.seq), true, stop.clone(), deadline);
        Engine {
            ok: prep.ok,
            prep,
            base,
            step,
            stop,
            deadline,
            started: std::time::Instant::now(),
            exchange,
            export_cursor: 0,
            import_cursor: 0,
        }
    }

    fn stopped(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
            || self.deadline.expired()
    }

    fn stats(&self) -> ProveStats {
        let b = self.base.solver.stats();
        let s = self.step.solver.stats();
        ProveStats {
            frames: self.base.unroller.frames(),
            aig_nodes: self.prep.circuit.aig().len(),
            aig_nodes_after: self.prep.seq.len(),
            latches: self.prep.seq.n_latches(),
            vars: self.base.solver.n_vars() + self.step.solver.n_vars(),
            clauses: b.clauses + s.clauses,
            conflicts: b.conflicts + s.conflicts,
            decisions: b.decisions + s.decisions,
            propagations: b.propagations + s.propagations,
            learned: b.learned + s.learned,
            wall_micros: self.started.elapsed().as_micros() as u64,
        }
    }

    /// Pulls clauses from the exchange into the base (from-reset)
    /// session. `Reach { upto }` clauses hold in every state reachable
    /// within `upto` steps, so the base session may assert them at frames
    /// `0..=min(upto, k)`; `Path` clauses are transition-relation facts
    /// valid at every window position the base session has unrolled.
    fn import_shared(&mut self, k: usize) {
        let Some(x) = self.exchange.clone() else {
            return;
        };
        for c in x.fetch(&mut self.import_cursor) {
            match c.kind {
                ClauseKind::Reach { upto } => {
                    for f in 0..=(upto as usize).min(k) {
                        self.base.add_shared(f, &c.lits);
                    }
                }
                ClauseKind::Path => {
                    let span = c.span() as usize;
                    if span > k {
                        continue;
                    }
                    for b in 0..=(k - span) {
                        self.base.add_shared(b, &c.lits);
                    }
                }
            }
        }
    }

    /// Publishes the induction-step session's fresh learnt clauses. The
    /// step solver runs under the standing unit facts `ok@0..=k`, so a
    /// learnt clause `C` only means `T ⊨ C ∨ ¬ok@0 ∨ … ∨ ¬ok@k`; the
    /// widened disjunction is what gets shared, as a window-relative
    /// `Path` fact (the step session's frame 0 is an arbitrary state, so
    /// the implication holds at any window position).
    fn export_shared(&mut self, k: usize) {
        let Some(x) = self.exchange.clone() else {
            return;
        };
        let clauses = self.step.solver.export_learnt(&mut self.export_cursor, 6);
        let mut published = 0usize;
        for cl in clauses {
            if published >= 32 {
                break;
            }
            let Some(mut lits) = self.step.translate(&cl) else {
                continue;
            };
            for j in 0..=k {
                lits.push((j as u32, self.ok.negate()));
            }
            x.publish(SharedClause {
                lits,
                kind: ClauseKind::Path,
            });
            published += 1;
        }
    }

    /// Runs interleaved base/step checks for `k in 0..frames` (`frames`
    /// base frames from reset; with `induction`, one step check per
    /// frame).
    fn run(
        mut self,
        frames: usize,
        induction: bool,
    ) -> Result<(ProveResult, ProveStats), ProveError> {
        // A constant-true assertion (combinationally, or proved so by the
        // optimize pipeline) needs no unrolling at all — both the bounded
        // and the inductive mode conclude immediately (`k = 0`: true in
        // every state, reachable or not).
        if self.ok == Lit::TRUE {
            return Ok((ProveResult::Proved { k: 0 }, self.stats()));
        }
        let bad = self.ok.negate();
        // The induction window starts with its frame 0 already unrolled.
        if induction {
            self.step.unroller.push_frame();
        }
        for k in 0..frames {
            if self.stopped() {
                return Ok((ProveResult::Unknown { depth: k }, self.stats()));
            }

            // ---- Base case: violation k cycles after reset? ----
            self.base.unroller.push_frame();
            self.import_shared(k);
            match self.base.solve_lit(k, bad) {
                SolveResult::Sat => {
                    let trace = self.extract_trace(k + 1)?;
                    self.confirm(&trace, k)?;
                    return Ok((
                        ProveResult::Falsified {
                            depth: k + 1,
                            trace,
                        },
                        self.stats(),
                    ));
                }
                SolveResult::Interrupted => {
                    return Ok((ProveResult::Unknown { depth: k }, self.stats()))
                }
                SolveResult::Unsat => {
                    // The assertion provably holds at frame k; keep that
                    // as a fact for deeper queries.
                    self.base.assert_lit(k, self.ok);
                }
            }

            // ---- Induction step: k+1 good cycles force a good next
            // cycle? ----
            if induction {
                self.step.unroller.push_frame();
                self.step.assert_lit(k, self.ok);
                match self.step.solve_lit(k + 1, bad) {
                    SolveResult::Unsat => {
                        return Ok((ProveResult::Proved { k: k + 1 }, self.stats()));
                    }
                    SolveResult::Interrupted => {
                        return Ok((ProveResult::Unknown { depth: k + 1 }, self.stats()))
                    }
                    SolveResult::Sat => {}
                }
                self.export_shared(k);
            }
        }
        Ok((ProveResult::Unknown { depth: frames }, self.stats()))
    }

    /// Reads the base-case model back into the explicit-state trace
    /// format: one `Vec<u64>` of input-port values per cycle.
    fn extract_trace(&self, frames: usize) -> Result<Vec<Vec<u64>>, ProveError> {
        let module = self.prep.circuit.module();
        let mut trace = Vec::with_capacity(frames);
        for f in 0..frames {
            let mut step = Vec::new();
            for (sig, bits) in &self.prep.input_ports {
                let name = &module.signal(SignalId(*sig)).name;
                let mut v = 0u64;
                for (i, bit) in bits.iter().enumerate() {
                    let comb = self.base.unroller.lit_at(f, *bit);
                    let set = self.base.encoder.model_value(&self.base.solver, comb);
                    if set {
                        if i >= 64 {
                            return Err(ProveError::WideCounterexample {
                                input: name.clone(),
                            });
                        }
                        v |= 1 << i;
                    }
                }
                step.push(v);
            }
            trace.push(step);
        }
        Ok(trace)
    }

    /// Replays the trace on the compiled simulator backend and checks the
    /// violation fires at exactly the claimed cycle.
    fn confirm(&self, trace: &[Vec<u64>], expect_cycle: usize) -> Result<(), ProveError> {
        let violated = replay_trace(
            self.prep.circuit.module(),
            &self.prep.assertion,
            trace,
            Backend::Compiled,
        );
        match violated {
            Ok(Some(cycle)) if cycle == expect_cycle => Ok(()),
            Ok(_) => Err(ProveError::UnconfirmedCounterexample {
                depth: expect_cycle + 1,
            }),
            Err(e) => Err(ProveError::Sim(e)),
        }
    }
}

/// An inductive invariant as clauses over original-design latch space.
type Invariant = Vec<Vec<LatchLit>>;

/// Runs PDR on a prepared circuit, returning the verdict, the usual
/// counters, and — on a proof — the inductive invariant already mapped
/// back to the original design's latch space.
fn run_pdr_inner(
    prep: &Prepared,
    max_frames: usize,
    stop: Option<Arc<AtomicBool>>,
    deadline: Deadline,
    exchange: Option<Arc<ClauseExchange>>,
) -> Result<(ProveResult, ProveStats, Option<Invariant>), ProveError> {
    let started = std::time::Instant::now();
    let base_stats = ProveStats {
        aig_nodes: prep.circuit.aig().len(),
        aig_nodes_after: prep.seq.len(),
        latches: prep.seq.n_latches(),
        ..ProveStats::default()
    };
    if prep.ok == Lit::TRUE {
        return Ok((ProveResult::Proved { k: 0 }, base_stats, Some(Vec::new())));
    }
    let mut pdr = Pdr::new(
        Arc::clone(&prep.seq),
        prep.ok,
        PdrOptions {
            max_frames,
            stop,
            deadline,
            exchange,
            ..PdrOptions::default()
        },
    );
    let outcome = pdr.run();
    let ps = pdr.stats();
    let stats = ProveStats {
        frames: ps.frames,
        vars: ps.vars,
        clauses: ps.solver.clauses,
        conflicts: ps.solver.conflicts,
        decisions: ps.solver.decisions,
        propagations: ps.solver.propagations,
        learned: ps.solver.learned,
        wall_micros: started.elapsed().as_micros() as u64,
        ..base_stats
    };
    match outcome {
        PdrOutcome::Proved { invariant } => {
            let orig = prep.to_original_latches(&invariant);
            Ok((ProveResult::Proved { k: ps.frames }, stats, Some(orig)))
        }
        PdrOutcome::Falsified { inputs } => {
            let trace = prep.trace_from_input_bits(&inputs)?;
            let depth = trace.len();
            match replay_trace(
                prep.circuit.module(),
                &prep.assertion,
                &trace,
                Backend::Compiled,
            ) {
                Ok(Some(c)) if c + 1 == depth => {}
                Ok(_) => return Err(ProveError::UnconfirmedCounterexample { depth }),
                Err(e) => return Err(ProveError::Sim(e)),
            }
            Ok((ProveResult::Falsified { depth, trace }, stats, None))
        }
        // `frames = n` means every level below n answered its bad-state
        // query Unsat, i.e. no violation within n cycles of reset.
        PdrOutcome::Unknown => Ok((ProveResult::Unknown { depth: ps.frames }, stats, None)),
    }
}

/// Checks a cached [`ProofCert`] against the *current* circuit and
/// assertion, returning the re-established verdict or `None` when the
/// certificate no longer holds (the caller then falls back to a cold
/// prove).
///
/// The whole point of certificates is that this is cheap:
///
/// * [`CertKind::Inductive`] — one incremental SAT session with two
///   queries ([`ProofCert::revalidate_inductive`]); no invariant search,
///   no optimization pipeline. Returns `Proved { k: 0 }`.
/// * [`CertKind::KInduction`] — the cone is shrunk by rule rewriting
///   and constant sweeping (near-linear, unlike SAT on a wide raw
///   cone; fraiging is skipped as too expensive for a warm path), then
///   two SAT calls at exactly the stored `k`: one refuting any
///   violation within the first `k` frames, one for the induction
///   step. No search over depths, no fraig, no invariant mining.
/// * [`CertKind::Falsified`] — replays the stored trace on the compiled
///   simulator; any concrete violation confirms it.
///
/// # Errors
///
/// See [`ProveError`] (blasting and replay failures propagate; a
/// certificate that merely fails its check is `Ok(None)`).
pub fn revalidate_certificate(
    circuit: &AigCircuit,
    assertion: &Expr,
    cert: &ProofCert,
) -> Result<Option<ProveResult>, ProveError> {
    let _sp = anvil_trace::span("prove", "revalidate");
    match &cert.kind {
        CertKind::Inductive { clauses } => {
            let mut c = circuit.clone();
            let ok = c.blast_assertion(assertion)?;
            if ok == Lit::TRUE {
                return Ok(Some(ProveResult::Proved { k: 0 }));
            }
            if ProofCert::revalidate_inductive(&c.aig_arc(), ok, clauses) {
                Ok(Some(ProveResult::Proved { k: 0 }))
            } else {
                Ok(None)
            }
        }
        CertKind::KInduction { k } => {
            let k = (*k).max(1);
            let mut c = circuit.clone();
            let ok0 = c.blast_assertion(assertion)?;
            if ok0 == Lit::TRUE {
                return Ok(Some(ProveResult::Proved { k: 0 }));
            }
            // Rule rewriting + constant sweeping is near-linear in cone
            // size while SAT on a wide unoptimized cone is not (AES: 75k
            // raw nodes vs ~300 rewritten). Fraiging is deliberately
            // skipped: its SAT-based equivalence checks cost more than
            // the two fixed-k queries save on datapath-heavy cones.
            let (rw, _) = rewrite(c.aig(), &[ok0], false, true);
            let ok = rw
                .map_lit(ok0)
                .expect("property root survives optimization");
            if ok == Lit::TRUE {
                return Ok(Some(ProveResult::Proved { k: 0 }));
            }
            if ok == Lit::FALSE {
                return Ok(None); // structurally violated: stale
            }
            let seq = Arc::new(rw.aig);

            // Base: no reachable violation within frames 0..k — a single
            // query on the disjunction of the per-frame bad literals.
            let mut base = Session::new(Arc::clone(&seq), false, None, Deadline::none());
            let mut bad = Vec::new();
            for frame in 0..k {
                while base.unroller.frames() <= frame {
                    base.unroller.push_frame();
                }
                let comb = base.unroller.lit_at(frame, ok.negate());
                if comb == Lit::TRUE {
                    return Ok(None); // structurally violated: stale
                }
                if comb == Lit::FALSE {
                    continue;
                }
                bad.push(
                    base.encoder
                        .encode(base.unroller.comb(), &mut base.solver, comb),
                );
            }
            if !bad.is_empty() {
                base.solver.add_clause(&bad);
                match base.solver.solve(&[]) {
                    SolveResult::Unsat => {}
                    SolveResult::Sat | SolveResult::Interrupted => return Ok(None),
                }
            }

            // Step: ok over k consecutive frames (arbitrary start state)
            // forces ok in the next — one more query.
            let mut step = Session::new(seq, true, None, Deadline::none());
            for frame in 0..k {
                while step.unroller.frames() <= frame {
                    step.unroller.push_frame();
                }
                step.assert_lit(frame, ok);
            }
            while step.unroller.frames() <= k {
                step.unroller.push_frame();
            }
            match step.solve_lit(k, ok.negate()) {
                SolveResult::Unsat => Ok(Some(ProveResult::Proved { k })),
                SolveResult::Sat | SolveResult::Interrupted => Ok(None),
            }
        }
        CertKind::Falsified { trace, .. } => {
            match replay_trace(circuit.module(), assertion, trace, Backend::Compiled)? {
                Some(cycle) => Ok(Some(ProveResult::Falsified {
                    depth: cycle + 1,
                    trace: trace[..=cycle].to_vec(),
                })),
                None => Ok(None),
            }
        }
    }
}

/// Replays a counterexample trace (input-port values per cycle, in
/// declaration order) on the given backend and returns the first cycle —
/// counted from zero — whose settled state violates the assertion, if
/// any.
///
/// # Errors
///
/// Propagates simulator preparation and poke errors.
pub fn replay_trace(
    module: &Module,
    assertion: &Expr,
    trace: &[Vec<u64>],
    backend: Backend,
) -> Result<Option<usize>, SimError> {
    let inputs = trace_inputs(module);
    let mut sim = Sim::with_backend(module, backend)?;
    for (cycle, step) in trace.iter().enumerate() {
        for ((name, width), v) in inputs.iter().zip(step) {
            sim.poke(name, Bits::from_u64(*v, *width))?;
        }
        if sim.eval(assertion).is_zero() {
            return Ok(Some(cycle));
        }
        sim.step()?;
    }
    Ok(None)
}

/// Renders a counterexample trace as a stable cycle-by-cycle table: the
/// violated assertion (in SystemVerilog syntax), each cycle's input-port
/// values, the assertion's settled value, and a marker on the violating
/// cycle. The text depends only on the module, assertion, and trace, so
/// it can be pinned by golden tests.
///
/// # Errors
///
/// Propagates simulator preparation errors from the replay.
pub fn render_trace(
    module: &Module,
    assertion: &Expr,
    trace: &[Vec<u64>],
) -> Result<String, SimError> {
    use std::fmt::Write as _;
    let inputs = trace_inputs(module);
    let mut sim = Sim::with_backend(module, Backend::Compiled)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "counterexample: `{}` violates `{}` (depth {})",
        module.name,
        anvil_rtl::sv_expr(module, assertion),
        trace.len()
    );
    let _ = writeln!(out, "  inputs: {}", {
        let names: Vec<&str> = inputs.iter().map(|(n, _)| n.as_str()).collect();
        if names.is_empty() {
            "(none)".to_string()
        } else {
            names.join(", ")
        }
    });
    for (cycle, step) in trace.iter().enumerate() {
        for ((name, width), v) in inputs.iter().zip(step) {
            sim.poke(name, Bits::from_u64(*v, *width))?;
        }
        let ok = sim.eval(assertion);
        let vals: Vec<String> = step.iter().map(|v| format!("{v:#x}")).collect();
        let _ = writeln!(
            out,
            "  cycle {cycle:>3} | {} | assert={}{}",
            if vals.is_empty() {
                "-".to_string()
            } else {
                vals.join(" ")
            },
            if ok.is_zero() { 0 } else { 1 },
            if ok.is_zero() { "  <-- violation" } else { "" }
        );
        if ok.is_zero() {
            break;
        }
        sim.step()?;
    }
    Ok(out)
}

/// Which engine of a [`prove_portfolio`] run produced the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prover {
    /// The symbolic BMC + k-induction engine.
    Symbolic,
    /// The IC3/PDR engine.
    Pdr,
    /// The explicit-state search of [`crate::bmc()`].
    ExplicitState,
}

/// Outcome of a cooperating portfolio run across the symbolic, PDR, and
/// explicit-state engines.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The combined verdict (symbolic verdicts win ties, then PDR).
    pub result: ProveResult,
    /// The engine that produced [`PortfolioOutcome::result`], when it is
    /// conclusive.
    pub winner: Option<Prover>,
    /// Statistics of the symbolic (BMC + k-induction) side.
    pub symbolic_stats: ProveStats,
    /// Statistics of the PDR side.
    pub pdr_stats: ProveStats,
    /// What the explicit-state engine reported (`None` when it was
    /// stopped before finishing).
    pub explicit: Option<(BmcResult, BmcStats)>,
    /// The winner's evidence, checkable later by
    /// [`revalidate_certificate`] (proof caching); `None` when no engine
    /// concluded or the winner left no certificate.
    pub certificate: Option<ProofCert>,
    /// Clause-exchange traffic between the SAT engines.
    pub shared: ExchangeStats,
}

/// Runs the symbolic engine (BMC + k-induction up to `max_k`), the
/// IC3/PDR engine, and the explicit-state bounded search (depth/state
/// budgets as in [`crate::bmc()`]) as a cooperating portfolio on up to
/// `workers` scoped threads.
///
/// Cooperation is two-fold: a shared stop flag lets the first conclusive
/// verdict cancel the others, and the two SAT engines exchange learnt
/// clauses through a bounded buffer (PDR's frame clauses as reachability
/// facts, the induction step's widened learnt clauses as
/// transition-relation facts — see [`anvil_smt::ClauseExchange`] for the
/// soundness rules).
///
/// A conclusive verdict is a proof or a confirmed counterexample. When
/// several engines conclude, the symbolic verdict is preferred, then
/// PDR's (the combined result stays deterministic); the other sides' raw
/// reports are returned alongside either way, and the winner's evidence
/// is packaged as a [`ProofCert`] for proof caching.
///
/// `stop` is an *external* cancellation flag (e.g. a service request's):
/// raising it makes every engine wind down to `Unknown`. The portfolio
/// also raises it internally when a worker concludes, so after a
/// conclusive result the flag being set does not mean cancellation.
///
/// `deadline` is a wall-clock bound polled in every engine loop (and
/// inside the SAT solver): past it, each side winds down to `Unknown`
/// with whatever violation-free prefix it established, so the caller
/// gets partial progress instead of a hang. [`Deadline::none`] disables
/// the bound.
///
/// # Errors
///
/// See [`ProveError`].
#[allow(clippy::too_many_arguments)]
pub fn prove_portfolio(
    module: &Module,
    assertion: &Expr,
    max_k: usize,
    depth: usize,
    max_states: usize,
    workers: usize,
    stop: Option<Arc<AtomicBool>>,
    deadline: Deadline,
) -> Result<PortfolioOutcome, ProveError> {
    type PdrPart = Result<(ProveResult, ProveStats, Option<Vec<Vec<LatchLit>>>), ProveError>;
    enum Part {
        Symbolic(Result<(ProveResult, ProveStats), ProveError>),
        Pdr(PdrPart),
        Explicit(Result<Option<(BmcResult, BmcStats)>, SimError>),
    }

    let stop = stop.unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
    let exchange = Arc::new(ClauseExchange::new(4096));
    let _sp_portfolio = anvil_trace::span("prove", "portfolio");
    // Worker spans stitch under the portfolio span by explicit id: the
    // thread-local parent stack does not cross the spawn boundary.
    let portfolio_span = anvil_trace::current_span();
    let circuit = AigCircuit::from_module(module)?;
    let prep = Arc::new(Prepared::new(&circuit, assertion)?);
    // PDR hunts counterexamples level by level, so give it at least the
    // explicit engine's depth budget before it reports Unknown.
    let pdr_frames = depth.max(max_k).saturating_add(2).min(256);
    let parts = run_indexed(3, workers.max(1), |i| match i {
        0 => {
            let _sp = anvil_trace::span_under("prove", "symbolic", portfolio_span);
            let engine = Engine::new(
                Arc::clone(&prep),
                Some(Arc::clone(&stop)),
                deadline,
                Some(Arc::clone(&exchange)),
            );
            let r = engine.run(max_k + 1, true);
            if matches!(
                r,
                Ok((
                    ProveResult::Proved { .. } | ProveResult::Falsified { .. },
                    _
                ))
            ) {
                stop.store(true, Ordering::Relaxed);
            }
            Part::Symbolic(r)
        }
        1 => {
            let _sp = anvil_trace::span_under("prove", "pdr", portfolio_span);
            let r = run_pdr_inner(
                &prep,
                pdr_frames,
                Some(Arc::clone(&stop)),
                deadline,
                Some(Arc::clone(&exchange)),
            );
            if matches!(
                r,
                Ok((
                    ProveResult::Proved { .. } | ProveResult::Falsified { .. },
                    _,
                    _
                ))
            ) {
                stop.store(true, Ordering::Relaxed);
            }
            Part::Pdr(r)
        }
        _ => {
            let _sp = anvil_trace::span_under("prove", "explicit", portfolio_span);
            let r = bmc_impl(
                module,
                assertion,
                depth,
                max_states,
                Backend::Compiled,
                Some(&stop),
                deadline,
            );
            if matches!(r, Ok(Some((BmcResult::Violation { .. }, _)))) {
                stop.store(true, Ordering::Relaxed);
            }
            Part::Explicit(r)
        }
    });

    let mut symbolic = None;
    let mut pdr = None;
    let mut explicit = None;
    for p in parts {
        match p {
            Part::Symbolic(r) => symbolic = Some(r),
            Part::Pdr(r) => pdr = Some(r),
            Part::Explicit(r) => explicit = Some(r),
        }
    }
    let (sym_result, symbolic_stats) = symbolic.expect("symbolic part ran")?;
    let (pdr_result, pdr_stats, invariant) = pdr.expect("pdr part ran")?;
    let explicit = explicit.expect("explicit part ran")?;

    let conclusive = |r: &ProveResult| {
        matches!(
            r,
            ProveResult::Proved { .. } | ProveResult::Falsified { .. }
        )
    };
    let (result, winner) = if conclusive(&sym_result) {
        (sym_result, Some(Prover::Symbolic))
    } else if conclusive(&pdr_result) {
        (pdr_result, Some(Prover::Pdr))
    } else if let Some((BmcResult::Violation { depth, trace }, _)) = &explicit {
        (
            ProveResult::Falsified {
                depth: *depth,
                trace: trace.clone(),
            },
            Some(Prover::ExplicitState),
        )
    } else {
        // Both SAT engines report a sound violation-free prefix; keep the
        // deeper one.
        let sd = match sym_result {
            ProveResult::Unknown { depth } => depth,
            _ => 0,
        };
        let pd = match pdr_result {
            ProveResult::Unknown { depth } => depth,
            _ => 0,
        };
        (ProveResult::Unknown { depth: sd.max(pd) }, None)
    };

    let certificate = match (&result, winner) {
        (ProveResult::Proved { k }, Some(Prover::Symbolic)) => Some(ProofCert {
            kind: CertKind::KInduction { k: *k },
            engine: "k-induction",
        }),
        (ProveResult::Proved { .. }, Some(Prover::Pdr)) => invariant.map(|clauses| ProofCert {
            kind: CertKind::Inductive { clauses },
            engine: "pdr",
        }),
        (ProveResult::Falsified { depth, trace }, Some(w)) => Some(ProofCert {
            kind: CertKind::Falsified {
                depth: *depth,
                trace: trace.clone(),
            },
            engine: match w {
                Prover::Symbolic => "bmc",
                Prover::Pdr => "pdr",
                Prover::ExplicitState => "explicit",
            },
        }),
        _ => None,
    };

    Ok(PortfolioOutcome {
        result,
        winner,
        symbolic_stats,
        pdr_stats,
        explicit,
        certificate,
        shared: exchange.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter with a shallow bug (same design as the explicit-state
    /// BMC tests): `q != 3` fails after three enabled cycles.
    fn shallow_bug() -> (Module, Expr) {
        let mut m = Module::new("shallow");
        let en = m.input("en", 1);
        let q = m.reg("q", 4);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 4)));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(3, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    /// A saturating counter: `cnt <= 10` for all time, but only provable
    /// by induction (the state space is 2^8).
    fn saturating_counter() -> (Module, Expr) {
        let mut m = Module::new("sat_cnt");
        let en = m.input("en", 1);
        let cnt = m.reg("cnt", 8);
        let at_max = Expr::Signal(cnt).eq(Expr::lit(10, 8));
        m.update_when(
            cnt,
            Expr::Signal(en).and(at_max.clone().logic_not()),
            Expr::Signal(cnt).add(Expr::lit(1, 8)),
        );
        let ok = m.wire_from(
            "ok",
            Expr::bin(anvil_rtl::BinaryOp::Le, Expr::Signal(cnt), Expr::lit(10, 8)),
        );
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    #[test]
    fn falsifies_shallow_bug_at_minimal_depth() {
        let (m, a) = shallow_bug();
        let (result, stats) = prove(&m, &a, 10).unwrap();
        let ProveResult::Falsified { depth, trace } = result else {
            panic!("expected falsification, got {result:?}");
        };
        assert_eq!(depth, 4);
        assert_eq!(trace.len(), 4);
        // `en` must be high in the first three cycles.
        for step in &trace[..3] {
            assert_eq!(step, &vec![1]);
        }
        assert!(stats.conflicts + stats.decisions > 0 || stats.frames > 0);
        // The trace replays to a violation on both backends.
        for backend in [Backend::Tree, Backend::Compiled] {
            assert_eq!(replay_trace(&m, &a, &trace, backend).unwrap(), Some(3));
        }
    }

    #[test]
    fn proves_saturating_counter_by_induction() {
        let (m, a) = saturating_counter();
        let (result, stats) = prove(&m, &a, 8).unwrap();
        assert_eq!(result, ProveResult::Proved { k: 1 });
        // The optimize pipeline ran: the post-rewrite graph is no larger
        // than the blasted one.
        assert!(stats.aig_nodes_after <= stats.aig_nodes);
        assert!(stats.aig_nodes_after > 0);
    }

    #[test]
    fn bounded_mode_reports_unknown_without_induction() {
        let (m, a) = saturating_counter();
        let (result, _) = prove_bounded(&m, &a, 6).unwrap();
        assert_eq!(result, ProveResult::Unknown { depth: 6 });
    }

    #[test]
    fn bounded_mode_depth_zero_checks_nothing() {
        // A zero-cycle budget must not surprise the caller with a
        // counterexample — even when the assertion is false at reset.
        let mut m = Module::new("init_bad");
        let q = m.reg_init("q", Bits::from_u64(7, 4));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(7, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let a = Expr::Signal(m.find("ok").unwrap());
        let (result, _) = prove_bounded(&m, &a, 0).unwrap();
        assert_eq!(result, ProveResult::Unknown { depth: 0 });
        let (result, _) = prove_bounded(&m, &a, 1).unwrap();
        assert!(matches!(result, ProveResult::Falsified { depth: 1, .. }));
    }

    #[test]
    fn constant_true_assertion_proves_immediately() {
        let mut m = Module::new("triv");
        let a = m.input("a", 4);
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(a).eq(Expr::Signal(a)));
        // Both modes conclude without any unrolling: k = 0 marks the
        // combinationally-constant case.
        let (result, stats) = prove(&m, &Expr::lit(1, 1), 4).unwrap();
        assert_eq!(result, ProveResult::Proved { k: 0 });
        assert_eq!(stats.frames, 0);
        let (result, _) = prove_bounded(&m, &Expr::lit(1, 1), 4).unwrap();
        assert_eq!(result, ProveResult::Proved { k: 0 });
    }

    #[test]
    fn initial_state_violation_has_depth_one() {
        // Assertion false in the reset state itself.
        let mut m = Module::new("init_bad");
        let q = m.reg_init("q", Bits::from_u64(7, 4));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(7, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let a = Expr::Signal(m.find("ok").unwrap());
        let (result, _) = prove(&m, &a, 4).unwrap();
        let ProveResult::Falsified { depth, trace } = result else {
            panic!("expected falsification, got {result:?}");
        };
        assert_eq!(depth, 1);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn pdr_proves_saturating_counter() {
        let (m, a) = saturating_counter();
        let (result, stats) = prove_pdr(&m, &a, 32).unwrap();
        assert!(matches!(result, ProveResult::Proved { .. }), "{result:?}");
        assert!(stats.frames >= 1);
    }

    #[test]
    fn pdr_falsifies_shallow_bug_at_minimal_depth() {
        let (m, a) = shallow_bug();
        let (result, _) = prove_pdr(&m, &a, 32).unwrap();
        let ProveResult::Falsified { depth, trace } = result else {
            panic!("expected falsification, got {result:?}");
        };
        // PDR only advances a level after proving no counterexample at
        // the current one, so the trace is minimal-depth too.
        assert_eq!(depth, 4);
        assert_eq!(
            replay_trace(&m, &a, &trace, Backend::Tree).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn pdr_invariant_revalidates_against_original_design() {
        // The invariant PDR finds on the *optimized* graph must transfer
        // to the unoptimized design — this is what the proof cache
        // replays on a warm hit.
        let (m, a) = saturating_counter();
        let circuit = AigCircuit::from_module(&m).unwrap();
        let prep = Prepared::new(&circuit, &a).unwrap();
        let (result, _, invariant) =
            run_pdr_inner(&prep, 32, None, Deadline::none(), None).unwrap();
        assert!(matches!(result, ProveResult::Proved { .. }));
        let cert = ProofCert {
            kind: CertKind::Inductive {
                clauses: invariant.unwrap(),
            },
            engine: "pdr",
        };
        let revalidated = revalidate_certificate(&circuit, &a, &cert).unwrap();
        assert_eq!(revalidated, Some(ProveResult::Proved { k: 0 }));
    }

    #[test]
    fn falsified_certificate_replays_and_stale_certificate_is_rejected() {
        let (m, a) = shallow_bug();
        let (result, _) = prove(&m, &a, 10).unwrap();
        let ProveResult::Falsified { depth, trace } = result else {
            panic!("expected falsification");
        };
        let circuit = AigCircuit::from_module(&m).unwrap();
        let cert = ProofCert {
            kind: CertKind::Falsified {
                depth,
                trace: trace.clone(),
            },
            engine: "bmc",
        };
        let revalidated = revalidate_certificate(&circuit, &a, &cert).unwrap();
        assert!(matches!(
            revalidated,
            Some(ProveResult::Falsified { depth: 4, .. })
        ));

        // The same trace against the *fixed* design no longer violates:
        // the certificate must be rejected, not trusted.
        let (mfix, afix) = saturating_counter();
        let cfix = AigCircuit::from_module(&mfix).unwrap();
        let cert_stale = ProofCert {
            kind: CertKind::Falsified { depth, trace },
            engine: "bmc",
        };
        assert_eq!(
            revalidate_certificate(&cfix, &afix, &cert_stale).unwrap(),
            None
        );
    }

    #[test]
    fn portfolio_agrees_with_all_engines() {
        let (m, a) = shallow_bug();
        let out = prove_portfolio(&m, &a, 8, 10, 100_000, 2, None, Deadline::none()).unwrap();
        let ProveResult::Falsified { depth, .. } = out.result else {
            panic!("expected falsification, got {:?}", out.result);
        };
        assert_eq!(depth, 4);
        assert!(out.winner.is_some());
        assert!(out.certificate.is_some());

        let (m, a) = saturating_counter();
        let out = prove_portfolio(&m, &a, 8, 6, 10_000, 2, None, Deadline::none()).unwrap();
        assert!(matches!(out.result, ProveResult::Proved { .. }));
        assert!(matches!(out.winner, Some(Prover::Symbolic | Prover::Pdr)));
        // Whichever SAT engine won, its evidence revalidates.
        let circuit = AigCircuit::from_module(&m).unwrap();
        let cert = out.certificate.expect("proof leaves a certificate");
        let revalidated = revalidate_certificate(&circuit, &a, &cert).unwrap();
        assert!(matches!(revalidated, Some(ProveResult::Proved { .. })));
    }

    #[test]
    fn render_trace_is_stable() {
        let (m, a) = shallow_bug();
        let (result, _) = prove(&m, &a, 10).unwrap();
        let ProveResult::Falsified { trace, .. } = result else {
            panic!("expected falsification");
        };
        let text = render_trace(&m, &a, &trace).unwrap();
        assert!(text.contains("counterexample: `shallow`"));
        assert!(text.contains("<-- violation"));
    }
}
