//! Symbolic bounded model checking and k-induction over bit-blasted
//! netlists.
//!
//! Where [`crate::bmc()`] enumerates concrete simulator states — and
//! therefore can never return "holds for all time" — this module reasons
//! about *all* inputs at once: the flattened [`Module`] is bit-blasted
//! into an [`AigCircuit`], the latch transition relation is unrolled
//! frame by frame, and an embedded CDCL SAT solver answers reachability
//! queries.
//!
//! [`prove`] interleaves two incremental solver sessions per depth `k`:
//!
//! * **base case** — can the assertion fail `k` cycles after reset? A
//!   `Sat` answer yields a concrete input trace, reconstructed in the
//!   exact format [`crate::bmc()`] emits (one `Vec<u64>` of input-port
//!   values per cycle) and *confirmed by replaying it on the simulator*
//!   before it is returned as [`ProveResult::Falsified`].
//! * **induction step** — from an arbitrary (not necessarily reachable)
//!   state, do `k + 1` consecutive assertion-satisfying cycles force the
//!   assertion in the next cycle? An `Unsat` answer here, combined with
//!   the accumulated base cases, proves the property for **all time**:
//!   [`ProveResult::Proved`].
//!
//! If neither side concludes within `max_k`, the result is
//! [`ProveResult::Unknown`] with the depth that *was* fully checked —
//! exactly the bounded guarantee the explicit-state checker gives, which
//! is the comparison the paper's Appendix A draws.
//!
//! [`prove_portfolio`] races the symbolic engine against the
//! explicit-state sweep on scoped threads with a shared cooperative stop
//! flag, so whichever engine concludes first wins the wall-clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use anvil_rtl::{Bits, BlastError, Expr, Module, SignalId, SignalKind};
use anvil_sim::{run_indexed, Backend, Sim, SimError};
use anvil_smt::{AigCircuit, CnfEncoder, Lit, SolveResult, Solver, Unroller};

use crate::bmc::{bmc_impl, BmcResult, BmcStats};

/// Outcome of a symbolic verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveResult {
    /// The assertion holds in every reachable state, for all time,
    /// established by `k`-induction (the property is inductive over
    /// windows of `k` cycles, and the first `k` cycles from reset are
    /// violation-free). `k = 0` means the assertion folded to a
    /// combinational constant truth during blasting — no unrolling was
    /// needed at all.
    Proved {
        /// The induction window length that closed the proof (0 =
        /// combinationally constant).
        k: usize,
    },
    /// The assertion is violated `depth` cycles after reset; `trace` is
    /// the per-cycle input-port assignment reproducing it — the same
    /// replayable format [`crate::bmc()`] emits, confirmed on the
    /// simulator before being returned.
    Falsified {
        /// Number of cycles in the counterexample (violation fires in
        /// the last one).
        depth: usize,
        /// Input values per cycle, in input-port declaration order.
        trace: Vec<Vec<u64>>,
    },
    /// Neither a proof nor a counterexample within the depth budget;
    /// the assertion is violation-free for at least `depth` cycles from
    /// reset.
    Unknown {
        /// Cycles fully checked from reset.
        depth: usize,
    },
}

/// Work counters for one symbolic run (both solver sessions combined).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProveStats {
    /// Frames unrolled in the base-case session.
    pub frames: usize,
    /// Nodes in the sequential (single-frame) AIG.
    pub aig_nodes: usize,
    /// Latches extracted from the netlist (register and memory bits).
    pub latches: usize,
    /// SAT variables allocated across both sessions.
    pub vars: usize,
    /// Problem clauses added across both sessions.
    pub clauses: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
}

/// Failures while preparing or running a symbolic proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveError {
    /// Bit-blasting rejected the module (instances, combinational loops,
    /// width errors) or the assertion (width errors).
    Blast(BlastError),
    /// A counterexample drives an input wider than 64 bits to a value a
    /// `u64` trace cannot carry.
    WideCounterexample {
        /// The input port needing more than 64 bits.
        input: String,
    },
    /// Replaying a SAT counterexample on the simulator did not reproduce
    /// the violation at the expected cycle (this indicates a bug in the
    /// blasting or solving pipeline and is asserted away in tests).
    UnconfirmedCounterexample {
        /// The depth the solver claimed.
        depth: usize,
    },
    /// The simulator rejected the module during counterexample replay.
    Sim(SimError),
}

impl std::fmt::Display for ProveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProveError::Blast(e) => write!(f, "bit-blasting failed: {e}"),
            ProveError::WideCounterexample { input } => write!(
                f,
                "counterexample drives input `{input}` past the 64-bit trace format"
            ),
            ProveError::UnconfirmedCounterexample { depth } => write!(
                f,
                "counterexample at depth {depth} did not replay to a concrete violation"
            ),
            ProveError::Sim(e) => write!(f, "simulation failed during replay: {e}"),
        }
    }
}

impl std::error::Error for ProveError {}

impl From<BlastError> for ProveError {
    fn from(e: BlastError) -> Self {
        ProveError::Blast(e)
    }
}

impl From<SimError> for ProveError {
    fn from(e: SimError) -> Self {
        ProveError::Sim(e)
    }
}

/// Input ports `(name, width)` in declaration order — the column order of
/// every counterexample trace (shared with [`crate::bmc()`]).
pub fn trace_inputs(module: &Module) -> Vec<(String, usize)> {
    module
        .iter_signals()
        .filter(|(_, s)| s.kind == SignalKind::Input)
        .map(|(_, s)| (s.name.clone(), s.width))
        .collect()
}

/// Proves or refutes `assertion` (truthy = holds, the same convention as
/// [`crate::bmc()`]) on a flattened module by interleaved symbolic BMC and
/// k-induction up to window `max_k`.
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove(
    module: &Module,
    assertion: &Expr,
    max_k: usize,
) -> Result<(ProveResult, ProveStats), ProveError> {
    let circuit = AigCircuit::from_module(module)?;
    prove_with_circuit(&circuit, assertion, max_k, None)
}

/// Symbolic bounded model checking only (no induction): search for a
/// counterexample within `depth` cycles of reset. Returns
/// [`ProveResult::Falsified`] at the minimal violating depth,
/// [`ProveResult::Proved`] (with `k = 0`) only when the assertion folds
/// to a constant truth during blasting, and [`ProveResult::Unknown`]
/// otherwise. `depth = 0` checks nothing and returns
/// `Unknown { depth: 0 }` (unless the assertion is constant).
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove_bounded(
    module: &Module,
    assertion: &Expr,
    depth: usize,
) -> Result<(ProveResult, ProveStats), ProveError> {
    let circuit = AigCircuit::from_module(module)?;
    Engine::new(&circuit, assertion, None)?.run(depth, false)
}

/// [`prove`] over a pre-built (possibly session-cached) [`AigCircuit`],
/// with an optional cooperative stop flag for portfolio runs.
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove_with_circuit(
    circuit: &AigCircuit,
    assertion: &Expr,
    max_k: usize,
    stop: Option<Arc<AtomicBool>>,
) -> Result<(ProveResult, ProveStats), ProveError> {
    Engine::new(circuit, assertion, stop)?.run(max_k + 1, true)
}

/// The interleaved BMC + induction engine over one blasted circuit.
struct Engine {
    circuit: Arc<AigCircuit>,
    assertion: Expr,
    ok: Lit,
    base: Session,
    step: Session,
    stop: Option<Arc<AtomicBool>>,
}

/// One unroller + encoder + solver triple.
struct Session {
    unroller: Unroller,
    encoder: CnfEncoder,
    solver: Solver,
}

impl Session {
    fn new(circuit: Arc<AigCircuit>, free_init: bool, stop: Option<Arc<AtomicBool>>) -> Session {
        let mut solver = Solver::new();
        if let Some(stop) = stop {
            solver.set_stop(stop);
        }
        Session {
            unroller: Unroller::new(circuit, free_init),
            encoder: CnfEncoder::new(),
            solver,
        }
    }

    /// Solves for "this literal is true in this frame".
    fn solve_lit(&mut self, frame: usize, lit: Lit) -> SolveResult {
        let comb_lit = self.unroller.lit_at(frame, lit);
        if comb_lit == Lit::FALSE {
            return SolveResult::Unsat;
        }
        if comb_lit == Lit::TRUE {
            return SolveResult::Sat;
        }
        let slit = self
            .encoder
            .encode(self.unroller.comb(), &mut self.solver, comb_lit);
        self.solver.solve(&[slit])
    }

    /// Adds "this literal holds in this frame" as a persistent fact.
    fn assert_lit(&mut self, frame: usize, lit: Lit) {
        let comb_lit = self.unroller.lit_at(frame, lit);
        if comb_lit == Lit::TRUE {
            return;
        }
        let slit = self
            .encoder
            .encode(self.unroller.comb(), &mut self.solver, comb_lit);
        self.solver.add_clause(&[slit]);
    }
}

impl Engine {
    fn new(
        circuit: &AigCircuit,
        assertion: &Expr,
        stop: Option<Arc<AtomicBool>>,
    ) -> Result<Engine, ProveError> {
        let mut circuit = circuit.clone();
        let ok = circuit.blast_assertion(assertion)?;
        let circuit = Arc::new(circuit);
        let base = Session::new(Arc::clone(&circuit), false, stop.clone());
        let step = Session::new(Arc::clone(&circuit), true, stop.clone());
        Ok(Engine {
            circuit,
            assertion: assertion.clone(),
            ok,
            base,
            step,
            stop,
        })
    }

    fn stopped(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    fn stats(&self) -> ProveStats {
        let b = self.base.solver.stats();
        let s = self.step.solver.stats();
        ProveStats {
            frames: self.base.unroller.frames(),
            aig_nodes: self.circuit.aig().len(),
            latches: self.circuit.aig().n_latches(),
            vars: self.base.solver.n_vars() + self.step.solver.n_vars(),
            clauses: b.clauses + s.clauses,
            conflicts: b.conflicts + s.conflicts,
            decisions: b.decisions + s.decisions,
            propagations: b.propagations + s.propagations,
            learned: b.learned + s.learned,
        }
    }

    /// Runs interleaved base/step checks for `k in 0..frames` (`frames`
    /// base frames from reset; with `induction`, one step check per
    /// frame).
    fn run(
        mut self,
        frames: usize,
        induction: bool,
    ) -> Result<(ProveResult, ProveStats), ProveError> {
        // A combinationally constant-true assertion needs no unrolling at
        // all — both the bounded and the inductive mode conclude
        // immediately (`k = 0`: true in every state, reachable or not).
        if self.ok == Lit::TRUE {
            return Ok((ProveResult::Proved { k: 0 }, self.stats()));
        }
        let bad = self.ok.negate();
        // The induction window starts with its frame 0 already unrolled.
        if induction {
            self.step.unroller.push_frame();
        }
        for k in 0..frames {
            if self.stopped() {
                return Ok((ProveResult::Unknown { depth: k }, self.stats()));
            }

            // ---- Base case: violation k cycles after reset? ----
            self.base.unroller.push_frame();
            match self.base.solve_lit(k, bad) {
                SolveResult::Sat => {
                    let trace = self.extract_trace(k + 1)?;
                    self.confirm(&trace, k)?;
                    return Ok((
                        ProveResult::Falsified {
                            depth: k + 1,
                            trace,
                        },
                        self.stats(),
                    ));
                }
                SolveResult::Interrupted => {
                    return Ok((ProveResult::Unknown { depth: k }, self.stats()))
                }
                SolveResult::Unsat => {
                    // The assertion provably holds at frame k; keep that
                    // as a fact for deeper queries.
                    self.base.assert_lit(k, self.ok);
                }
            }

            // ---- Induction step: k+1 good cycles force a good next
            // cycle? ----
            if induction {
                self.step.unroller.push_frame();
                self.step.assert_lit(k, self.ok);
                match self.step.solve_lit(k + 1, bad) {
                    SolveResult::Unsat => {
                        return Ok((ProveResult::Proved { k: k + 1 }, self.stats()));
                    }
                    SolveResult::Interrupted => {
                        return Ok((ProveResult::Unknown { depth: k + 1 }, self.stats()))
                    }
                    SolveResult::Sat => {}
                }
            }
        }
        Ok((ProveResult::Unknown { depth: frames }, self.stats()))
    }

    /// Reads the base-case model back into the explicit-state trace
    /// format: one `Vec<u64>` of input-port values per cycle.
    fn extract_trace(&self, frames: usize) -> Result<Vec<Vec<u64>>, ProveError> {
        let module = self.circuit.module();
        let mut trace = Vec::with_capacity(frames);
        for f in 0..frames {
            let mut step = Vec::new();
            for (sig, bits) in self.circuit.input_bits() {
                let name = &module.signal(SignalId(*sig)).name;
                let mut v = 0u64;
                for (i, bit) in bits.iter().enumerate() {
                    let comb = self.base.unroller.lit_at(f, *bit);
                    let set = self.base.encoder.model_value(&self.base.solver, comb);
                    if set {
                        if i >= 64 {
                            return Err(ProveError::WideCounterexample {
                                input: name.clone(),
                            });
                        }
                        v |= 1 << i;
                    }
                }
                step.push(v);
            }
            trace.push(step);
        }
        Ok(trace)
    }

    /// Replays the trace on the compiled simulator backend and checks the
    /// violation fires at exactly the claimed cycle.
    fn confirm(&self, trace: &[Vec<u64>], expect_cycle: usize) -> Result<(), ProveError> {
        let violated = replay_trace(
            self.circuit.module(),
            &self.assertion,
            trace,
            Backend::Compiled,
        );
        match violated {
            Ok(Some(cycle)) if cycle == expect_cycle => Ok(()),
            Ok(_) => Err(ProveError::UnconfirmedCounterexample {
                depth: expect_cycle + 1,
            }),
            Err(e) => Err(ProveError::Sim(e)),
        }
    }
}

/// Replays a counterexample trace (input-port values per cycle, in
/// declaration order) on the given backend and returns the first cycle —
/// counted from zero — whose settled state violates the assertion, if
/// any.
///
/// # Errors
///
/// Propagates simulator preparation and poke errors.
pub fn replay_trace(
    module: &Module,
    assertion: &Expr,
    trace: &[Vec<u64>],
    backend: Backend,
) -> Result<Option<usize>, SimError> {
    let inputs = trace_inputs(module);
    let mut sim = Sim::with_backend(module, backend)?;
    for (cycle, step) in trace.iter().enumerate() {
        for ((name, width), v) in inputs.iter().zip(step) {
            sim.poke(name, Bits::from_u64(*v, *width))?;
        }
        if sim.eval(assertion).is_zero() {
            return Ok(Some(cycle));
        }
        sim.step()?;
    }
    Ok(None)
}

/// Renders a counterexample trace as a stable cycle-by-cycle table: the
/// violated assertion (in SystemVerilog syntax), each cycle's input-port
/// values, the assertion's settled value, and a marker on the violating
/// cycle. The text depends only on the module, assertion, and trace, so
/// it can be pinned by golden tests.
///
/// # Errors
///
/// Propagates simulator preparation errors from the replay.
pub fn render_trace(
    module: &Module,
    assertion: &Expr,
    trace: &[Vec<u64>],
) -> Result<String, SimError> {
    use std::fmt::Write as _;
    let inputs = trace_inputs(module);
    let mut sim = Sim::with_backend(module, Backend::Compiled)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "counterexample: `{}` violates `{}` (depth {})",
        module.name,
        anvil_rtl::sv_expr(module, assertion),
        trace.len()
    );
    let _ = writeln!(out, "  inputs: {}", {
        let names: Vec<&str> = inputs.iter().map(|(n, _)| n.as_str()).collect();
        if names.is_empty() {
            "(none)".to_string()
        } else {
            names.join(", ")
        }
    });
    for (cycle, step) in trace.iter().enumerate() {
        for ((name, width), v) in inputs.iter().zip(step) {
            sim.poke(name, Bits::from_u64(*v, *width))?;
        }
        let ok = sim.eval(assertion);
        let vals: Vec<String> = step.iter().map(|v| format!("{v:#x}")).collect();
        let _ = writeln!(
            out,
            "  cycle {cycle:>3} | {} | assert={}{}",
            if vals.is_empty() {
                "-".to_string()
            } else {
                vals.join(" ")
            },
            if ok.is_zero() { 0 } else { 1 },
            if ok.is_zero() { "  <-- violation" } else { "" }
        );
        if ok.is_zero() {
            break;
        }
        sim.step()?;
    }
    Ok(out)
}

/// Which engine of a [`prove_portfolio`] race produced the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prover {
    /// The symbolic BMC + k-induction engine.
    Symbolic,
    /// The explicit-state search of [`crate::bmc()`].
    ExplicitState,
}

/// Outcome of a portfolio race between the symbolic and explicit-state
/// engines.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The combined verdict (symbolic verdicts win ties).
    pub result: ProveResult,
    /// The engine that produced [`PortfolioOutcome::result`], when it is
    /// conclusive.
    pub winner: Option<Prover>,
    /// Statistics of the symbolic side.
    pub symbolic_stats: ProveStats,
    /// What the explicit-state engine reported (`None` when it was
    /// stopped before finishing).
    pub explicit: Option<(BmcResult, BmcStats)>,
}

/// Races the symbolic engine (BMC + k-induction up to `max_k`) against
/// the explicit-state bounded search (depth/state budgets as in
/// [`crate::bmc()`]) on up to `workers` scoped threads sharing a
/// cooperative stop flag: the first conclusive verdict cancels the other
/// engine.
///
/// A conclusive verdict is a proof or a confirmed counterexample. When
/// both engines conclude, the symbolic verdict is preferred (the combined
/// result stays deterministic); the explicit side's raw report is
/// returned alongside either way.
///
/// # Errors
///
/// See [`ProveError`].
pub fn prove_portfolio(
    module: &Module,
    assertion: &Expr,
    max_k: usize,
    depth: usize,
    max_states: usize,
    workers: usize,
) -> Result<PortfolioOutcome, ProveError> {
    enum Part {
        Symbolic(Result<(ProveResult, ProveStats), ProveError>),
        Explicit(Result<Option<(BmcResult, BmcStats)>, SimError>),
    }

    let stop = Arc::new(AtomicBool::new(false));
    let circuit = AigCircuit::from_module(module)?;
    let parts = run_indexed(2, workers.max(1), |i| {
        if i == 0 {
            let r = prove_with_circuit(
                circuit_ref(&circuit),
                assertion,
                max_k,
                Some(Arc::clone(&stop)),
            );
            if matches!(
                r,
                Ok((
                    ProveResult::Proved { .. } | ProveResult::Falsified { .. },
                    _
                ))
            ) {
                stop.store(true, Ordering::Relaxed);
            }
            Part::Symbolic(r)
        } else {
            let r = bmc_impl(
                module,
                assertion,
                depth,
                max_states,
                Backend::Compiled,
                Some(&stop),
            );
            if matches!(r, Ok(Some((BmcResult::Violation { .. }, _)))) {
                stop.store(true, Ordering::Relaxed);
            }
            Part::Explicit(r)
        }
    });

    let mut symbolic = None;
    let mut explicit = None;
    for p in parts {
        match p {
            Part::Symbolic(r) => symbolic = Some(r),
            Part::Explicit(r) => explicit = Some(r),
        }
    }
    let (sym_result, symbolic_stats) = symbolic.expect("symbolic part ran")?;
    let explicit = explicit.expect("explicit part ran")?;

    let (result, winner) = match sym_result {
        ProveResult::Proved { .. } | ProveResult::Falsified { .. } => {
            (sym_result, Some(Prover::Symbolic))
        }
        ProveResult::Unknown { .. } => match &explicit {
            Some((BmcResult::Violation { depth, trace }, _)) => (
                ProveResult::Falsified {
                    depth: *depth,
                    trace: trace.clone(),
                },
                Some(Prover::ExplicitState),
            ),
            _ => (sym_result, None),
        },
    };
    Ok(PortfolioOutcome {
        result,
        winner,
        symbolic_stats,
        explicit,
    })
}

/// Identity helper keeping the borrow of the shared circuit readable in
/// the closure above.
fn circuit_ref(c: &AigCircuit) -> &AigCircuit {
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter with a shallow bug (same design as the explicit-state
    /// BMC tests): `q != 3` fails after three enabled cycles.
    fn shallow_bug() -> (Module, Expr) {
        let mut m = Module::new("shallow");
        let en = m.input("en", 1);
        let q = m.reg("q", 4);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 4)));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(3, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    /// A saturating counter: `cnt <= 10` for all time, but only provable
    /// by induction (the state space is 2^8).
    fn saturating_counter() -> (Module, Expr) {
        let mut m = Module::new("sat_cnt");
        let en = m.input("en", 1);
        let cnt = m.reg("cnt", 8);
        let at_max = Expr::Signal(cnt).eq(Expr::lit(10, 8));
        m.update_when(
            cnt,
            Expr::Signal(en).and(at_max.clone().logic_not()),
            Expr::Signal(cnt).add(Expr::lit(1, 8)),
        );
        let ok = m.wire_from(
            "ok",
            Expr::bin(anvil_rtl::BinaryOp::Le, Expr::Signal(cnt), Expr::lit(10, 8)),
        );
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let assertion = Expr::Signal(m.find("ok").unwrap());
        (m, assertion)
    }

    #[test]
    fn falsifies_shallow_bug_at_minimal_depth() {
        let (m, a) = shallow_bug();
        let (result, stats) = prove(&m, &a, 10).unwrap();
        let ProveResult::Falsified { depth, trace } = result else {
            panic!("expected falsification, got {result:?}");
        };
        assert_eq!(depth, 4);
        assert_eq!(trace.len(), 4);
        // `en` must be high in the first three cycles.
        for step in &trace[..3] {
            assert_eq!(step, &vec![1]);
        }
        assert!(stats.conflicts + stats.decisions > 0 || stats.frames > 0);
        // The trace replays to a violation on both backends.
        for backend in [Backend::Tree, Backend::Compiled] {
            assert_eq!(replay_trace(&m, &a, &trace, backend).unwrap(), Some(3));
        }
    }

    #[test]
    fn proves_saturating_counter_by_induction() {
        let (m, a) = saturating_counter();
        let (result, _) = prove(&m, &a, 8).unwrap();
        assert_eq!(result, ProveResult::Proved { k: 1 });
    }

    #[test]
    fn bounded_mode_reports_unknown_without_induction() {
        let (m, a) = saturating_counter();
        let (result, _) = prove_bounded(&m, &a, 6).unwrap();
        assert_eq!(result, ProveResult::Unknown { depth: 6 });
    }

    #[test]
    fn bounded_mode_depth_zero_checks_nothing() {
        // A zero-cycle budget must not surprise the caller with a
        // counterexample — even when the assertion is false at reset.
        let mut m = Module::new("init_bad");
        let q = m.reg_init("q", Bits::from_u64(7, 4));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(7, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let a = Expr::Signal(m.find("ok").unwrap());
        let (result, _) = prove_bounded(&m, &a, 0).unwrap();
        assert_eq!(result, ProveResult::Unknown { depth: 0 });
        let (result, _) = prove_bounded(&m, &a, 1).unwrap();
        assert!(matches!(result, ProveResult::Falsified { depth: 1, .. }));
    }

    #[test]
    fn constant_true_assertion_proves_immediately() {
        let mut m = Module::new("triv");
        let a = m.input("a", 4);
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(a).eq(Expr::Signal(a)));
        // Both modes conclude without any unrolling: k = 0 marks the
        // combinationally-constant case.
        let (result, stats) = prove(&m, &Expr::lit(1, 1), 4).unwrap();
        assert_eq!(result, ProveResult::Proved { k: 0 });
        assert_eq!(stats.frames, 0);
        let (result, _) = prove_bounded(&m, &Expr::lit(1, 1), 4).unwrap();
        assert_eq!(result, ProveResult::Proved { k: 0 });
    }

    #[test]
    fn initial_state_violation_has_depth_one() {
        // Assertion false in the reset state itself.
        let mut m = Module::new("init_bad");
        let q = m.reg_init("q", Bits::from_u64(7, 4));
        let ok = m.wire_from("ok", Expr::Signal(q).ne(Expr::lit(7, 4)));
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(ok));
        let a = Expr::Signal(m.find("ok").unwrap());
        let (result, _) = prove(&m, &a, 4).unwrap();
        let ProveResult::Falsified { depth, trace } = result else {
            panic!("expected falsification, got {result:?}");
        };
        assert_eq!(depth, 1);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn portfolio_agrees_with_both_engines() {
        let (m, a) = shallow_bug();
        let out = prove_portfolio(&m, &a, 8, 10, 100_000, 2).unwrap();
        let ProveResult::Falsified { depth, .. } = out.result else {
            panic!("expected falsification, got {:?}", out.result);
        };
        assert_eq!(depth, 4);
        assert!(out.winner.is_some());

        let (m, a) = saturating_counter();
        let out = prove_portfolio(&m, &a, 8, 6, 10_000, 2).unwrap();
        assert_eq!(out.result, ProveResult::Proved { k: 1 });
        assert_eq!(out.winner, Some(Prover::Symbolic));
    }

    #[test]
    fn render_trace_is_stable() {
        let (m, a) = shallow_bug();
        let (result, _) = prove(&m, &a, 10).unwrap();
        let ProveResult::Falsified { trace, .. } = result else {
            panic!("expected falsification");
        };
        let text = render_trace(&m, &a, &trace).unwrap();
        assert!(text.contains("counterexample: `shallow`"));
        assert!(text.contains("<-- violation"));
    }
}
