//! An atomic-rule scheduler in the Bluespec SystemVerilog model
//! (paper §2.2, Fig. 2).
//!
//! BSV describes hardware as guarded atomic rules; each cycle the compiler
//! schedules a *conflict-free* subset (no two scheduled rules write the
//! same register) and executes them atomically. Figure 2's point: because
//! scheduling is per-cycle, BSV admits schedules that are conflict-free
//! every cycle yet *timing-unsafe across cycles* — e.g. mutating an
//! address register while the cache is still resolving the previous
//! request. This module implements that scheduling model so the Fig. 2
//! bench can enumerate the three candidate schedules and show which
//! violate the (externally known) timing contract.

use std::collections::{BTreeMap, BTreeSet};

/// The register state a rule engine executes over.
pub type State = BTreeMap<String, u64>;

/// One guarded atomic rule.
///
/// Guard and body closures are `Send + Sync` so whole engines can be
/// built and run on [`sweep_schedules`] worker threads.
pub struct Rule {
    /// Rule name (used in schedules and reports).
    pub name: String,
    /// Registers the rule writes (conflict detection).
    pub writes: BTreeSet<String>,
    /// Fires only when the guard holds.
    pub guard: Box<dyn Fn(&State) -> bool + Send + Sync>,
    /// Atomic state update.
    pub body: Box<dyn Fn(&mut State) + Send + Sync>,
}

impl Rule {
    /// Builds a rule from closures.
    pub fn new(
        name: impl Into<String>,
        writes: &[&str],
        guard: impl Fn(&State) -> bool + Send + Sync + 'static,
        body: impl Fn(&mut State) + Send + Sync + 'static,
    ) -> Rule {
        Rule {
            name: name.into(),
            writes: writes.iter().map(|s| s.to_string()).collect(),
            guard: Box::new(guard),
            body: Box::new(body),
        }
    }
}

/// A rule engine with a fixed priority order (the "schedule" a BSV
/// compiler might generate).
pub struct RuleEngine {
    /// Current register state.
    pub state: State,
    rules: Vec<Rule>,
    /// Names of rules fired per cycle (the executed schedule).
    pub history: Vec<Vec<String>>,
}

impl RuleEngine {
    /// Creates an engine over the given initial state.
    pub fn new(state: State, rules: Vec<Rule>) -> RuleEngine {
        RuleEngine {
            state,
            rules,
            history: Vec::new(),
        }
    }

    /// Executes one cycle under the given rule priority order: rules are
    /// considered in `priority` order and fire if their guard holds and
    /// they do not write-conflict with an already-scheduled rule —
    /// the maximal conflict-free subset under that order.
    pub fn cycle(&mut self, priority: &[usize]) {
        let mut written: BTreeSet<String> = BTreeSet::new();
        let mut fired: Vec<usize> = Vec::new();
        for &i in priority {
            let rule = &self.rules[i];
            if !(rule.guard)(&self.state) {
                continue;
            }
            if rule.writes.iter().any(|w| written.contains(w)) {
                continue; // conflict: skipped this cycle
            }
            written.extend(rule.writes.iter().cloned());
            fired.push(i);
        }
        // Atomic execution: all bodies see the start-of-cycle state.
        let snapshot = self.state.clone();
        let mut next = self.state.clone();
        for &i in &fired {
            // Each rule reads the snapshot, writes into `next`.
            let mut scratch = snapshot.clone();
            (self.rules[i].body)(&mut scratch);
            for w in &self.rules[i].writes {
                if let Some(v) = scratch.get(w) {
                    next.insert(w.clone(), *v);
                }
            }
        }
        self.state = next;
        self.history
            .push(fired.iter().map(|i| self.rules[*i].name.clone()).collect());
    }

    /// Runs `n` cycles under one priority order.
    pub fn run(&mut self, priority: &[usize], n: usize) {
        for _ in 0..n {
            self.cycle(priority);
        }
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

/// The batched check entry point for the rule model: runs one fresh
/// engine (from `build`) per candidate priority schedule for `cycles`
/// cycles, spreading schedules across up to `workers` scoped threads, and
/// returns the finished engines **in schedule order** — so enumerating
/// every schedule of a design (the Fig. 2 experiment: which
/// conflict-free-per-cycle schedules are timing-unsafe across cycles?) is
/// one call instead of a hand-rolled loop, and scales with cores.
pub fn sweep_schedules<B>(
    build: B,
    priorities: &[Vec<usize>],
    cycles: usize,
    workers: usize,
) -> Vec<RuleEngine>
where
    B: Fn() -> RuleEngine + Sync,
{
    anvil_sim::run_indexed(priorities.len(), workers, |i| {
        let mut e = build();
        e.run(&priorities[i], cycles);
        e
    })
}

/// Builds the Fig. 2 scenario: `Top` reads a value from a cache (which
/// responds `latency` cycles after a request, with the result valid for
/// one cycle) and enqueues it into a FIFO. The cache contract requires
/// `address` to stay constant from request until response.
///
/// Rules: `send_cache_req`, `change_address`, `get_cache_res` (+enqueue).
/// Returns the engine; the timing contract is checked by
/// [`fig2_contract_violations`] after a run.
pub fn fig2_engine(latency: u64) -> RuleEngine {
    let mut st = State::new();
    st.insert("address".into(), 0);
    st.insert("req_inflight".into(), 0); // cycles until response; 0 = idle
    st.insert("req_addr".into(), 0); // address the cache latched
    st.insert("data_valid".into(), 0);
    st.insert("data".into(), 0);
    st.insert("enq_count".into(), 0);
    st.insert("enq_last".into(), u64::MAX);
    st.insert("addr_changed_during".into(), 0); // contract monitor

    let send_req = Rule::new(
        "send_cache_req",
        &["req_inflight", "req_addr"],
        |s| s["req_inflight"] == 0 && s["data_valid"] == 0,
        move |s| {
            s.insert("req_inflight".into(), latency);
            let a = s["address"];
            s.insert("req_addr".into(), a);
        },
    );
    let change_addr = Rule::new(
        "change_address",
        &["address", "addr_changed_during"],
        |_| true,
        |s| {
            let a = s["address"];
            s.insert("address".into(), a + 1);
            if s["req_inflight"] > 0 {
                // Contract violation: address mutated while the cache is
                // still resolving the request against `address`.
                s.insert("addr_changed_during".into(), 1);
            }
        },
    );
    let get_res = Rule::new(
        "get_cache_res",
        &[
            "req_inflight",
            "data_valid",
            "data",
            "enq_count",
            "enq_last",
        ],
        |s| s["req_inflight"] == 1,
        |s| {
            s.insert("req_inflight".into(), 0);
            // The cache dereferences the *current* address wire if the
            // requester failed to hold it (the hazard!), else req_addr.
            let effective = if s["addr_changed_during"] == 1 {
                s["address"]
            } else {
                s["req_addr"]
            };
            s.insert("data".into(), effective * 10); // "memory" contents
            s.insert("data_valid".into(), 0);
            let c = s["enq_count"];
            s.insert("enq_count".into(), c + 1);
            s.insert("enq_last".into(), effective * 10);
        },
    );
    let tick = Rule::new(
        "cache_tick",
        &["req_inflight_tick"],
        |s| s["req_inflight"] > 1,
        |s| {
            let v = s["req_inflight"];
            s.insert("req_inflight".into(), v - 1);
        },
    );
    // `cache_tick` writes req_inflight too; give it a distinct conflict
    // class so it can coexist with rules that do not touch it.
    let mut tick = tick;
    tick.writes = BTreeSet::from(["req_inflight".to_string()]);

    RuleEngine::new(st, vec![send_req, change_addr, get_res, tick])
}

/// After a run of [`fig2_engine`], reports whether the executed schedule
/// violated the cache timing contract, and what was enqueued.
pub fn fig2_contract_violations(engine: &RuleEngine) -> (bool, Vec<u64>) {
    let violated = engine.state["addr_changed_during"] == 1;
    let enq = if engine.state["enq_count"] > 0 {
        vec![engine.state["enq_last"]]
    } else {
        vec![]
    };
    (violated, enq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_by_priority_without_write_conflicts() {
        let mut st = State::new();
        st.insert("x".into(), 0);
        let r1 = Rule::new(
            "inc",
            &["x"],
            |_| true,
            |s| {
                let v = s["x"];
                s.insert("x".into(), v + 1);
            },
        );
        let r2 = Rule::new(
            "dec",
            &["x"],
            |_| true,
            |s| {
                let v = s["x"];
                s.insert("x".into(), v.wrapping_sub(1));
            },
        );
        let mut e = RuleEngine::new(st, vec![r1, r2]);
        e.cycle(&[0, 1]);
        // Only `inc` fired: `dec` write-conflicts.
        assert_eq!(e.state["x"], 1);
        assert_eq!(e.history[0], vec!["inc".to_string()]);
        e.cycle(&[1, 0]);
        assert_eq!(e.state["x"], 0);
    }

    #[test]
    fn atomic_execution_reads_snapshot() {
        let mut st = State::new();
        st.insert("a".into(), 1);
        st.insert("b".into(), 2);
        let swap_a = Rule::new(
            "a_gets_b",
            &["a"],
            |_| true,
            |s| {
                let b = s["b"];
                s.insert("a".into(), b);
            },
        );
        let swap_b = Rule::new(
            "b_gets_a",
            &["b"],
            |_| true,
            |s| {
                let a = s["a"];
                s.insert("b".into(), a);
            },
        );
        let mut e = RuleEngine::new(st, vec![swap_a, swap_b]);
        e.cycle(&[0, 1]);
        assert_eq!(e.state["a"], 2);
        assert_eq!(e.state["b"], 1);
    }

    #[test]
    fn fig2_schedule_with_eager_address_change_is_unsafe() {
        // Schedule 1/2 of Fig. 2: change_address fires while the request
        // is in flight -> contract violated, wrong value enqueued.
        let mut e = fig2_engine(2);
        // Priority: send_req, change_addr, get_res, tick.
        e.run(&[0, 1, 2, 3], 6);
        let (violated, enq) = fig2_contract_violations(&e);
        assert!(violated);
        // The enqueued value comes from a *changed* address, not 0.
        assert_ne!(enq.first().copied(), Some(0));
    }

    #[test]
    fn schedule_sweep_matches_individual_runs() {
        // All 6 priority permutations of the first three Fig. 2 rules
        // (tick always last), swept in parallel vs run one by one.
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3],
            vec![0, 2, 1, 3],
            vec![1, 0, 2, 3],
            vec![1, 2, 0, 3],
            vec![2, 0, 1, 3],
            vec![2, 1, 0, 3],
        ];
        let swept = sweep_schedules(|| fig2_engine(2), &perms, 6, 3);
        assert_eq!(swept.len(), perms.len());
        for (p, engine) in perms.iter().zip(&swept) {
            let mut seq = fig2_engine(2);
            seq.run(p, 6);
            assert_eq!(seq.state, engine.state, "schedule {p:?} diverged");
            assert_eq!(seq.history, engine.history);
        }
        // The sweep reproduces the Fig. 2 finding: every schedule that
        // fires `change_address` while a request is in flight violates.
        assert!(swept.iter().any(|e| fig2_contract_violations(e).0));
    }

    #[test]
    fn fig2_safe_schedule_exists_but_is_not_chosen_by_conflict_freedom() {
        // Holding the address until the response (the Anvil-enforced
        // discipline) gives the correct value: only fire change_address
        // when no request is in flight.
        let mut e = fig2_engine(2);
        for _ in 0..6 {
            let inflight = e.state["req_inflight"] > 0;
            if inflight {
                e.cycle(&[0, 2, 3]); // no change_address
            } else {
                e.cycle(&[0, 1, 2, 3]);
            }
        }
        let (violated, enq) = fig2_contract_violations(&e);
        assert!(!violated);
        // Two requests complete in 6 cycles: address 0 then address 1;
        // the last enqueued datum is address 1's contents (1 * 10).
        assert_eq!(enq.first().copied(), Some(10));
    }
}
