//! Integration tests for the compile service: the full method surface
//! through [`CompileService::handle`], and the serve loop over real
//! socket pairs — including two clients sharing one warm session and a
//! panicking compile that must not take the daemon down.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

use anvild::{parse_incoming, CompileService, Incoming, Json, RpcError};

const GOOD: &str = "proc p() { reg r : logic[8]; loop { set r := *r + 1 >> cycle 1 } }";
const BAD: &str = "proc p() { loop { ??? } }";

/// Sends one request through `handle`, returning (response, notes).
fn call(service: &CompileService, id: i64, method: &str, params: Json) -> (Json, Vec<Json>) {
    let mut notes = Vec::new();
    let resp = service
        .handle(Incoming::request(id, method, params), &mut |n| {
            notes.push(n)
        })
        .expect("requests get responses");
    (resp, notes)
}

fn result<'r>(resp: &'r Json, key: &str) -> &'r Json {
    resp.get("result")
        .and_then(|r| r.get(key))
        .unwrap_or_else(|| panic!("missing result.{key} in {resp}"))
}

fn error_code(resp: &Json) -> i64 {
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("expected an error response, got {resp}"))
}

fn open(service: &CompileService, uri: &str, text: &str) {
    let (resp, _) = call(
        service,
        90,
        "open",
        Json::obj([("uri", Json::str(uri)), ("text", Json::str(text))]),
    );
    assert!(resp.get("result").is_some(), "{resp}");
}

#[test]
fn compile_is_cold_then_warm_with_cache_delta_on_the_wire() {
    let service = CompileService::new();
    open(&service, "a.anv", GOOD);

    let (cold, notes) = call(
        &service,
        1,
        "compile",
        Json::obj([("uri", Json::str("a.anv"))]),
    );
    let misses = result(&cold, "cacheDelta")
        .get("misses")
        .and_then(Json::as_i64);
    assert!(misses > Some(0), "cold compile: {cold}");
    assert!(
        result(&cold, "systemverilog")
            .as_str()
            .unwrap()
            .contains("module p"),
        "{cold}"
    );
    // A clean compile streams an empty diagnostics notification.
    assert_eq!(notes.len(), 1);
    assert_eq!(
        notes[0]
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Json::as_array)
            .map(|d| d.len()),
        Some(0)
    );

    let (warm, _) = call(
        &service,
        2,
        "compile",
        Json::obj([("uri", Json::str("a.anv"))]),
    );
    let delta = result(&warm, "cacheDelta");
    assert_eq!(
        delta.get("misses").and_then(Json::as_i64),
        Some(0),
        "{warm}"
    );
    assert!(delta.get("hits").and_then(Json::as_i64) > Some(0), "{warm}");
}

#[test]
fn broken_file_answers_compile_failed_and_streams_diagnostics() {
    let service = CompileService::new();
    open(&service, "b.anv", BAD);

    let (resp, notes) = call(
        &service,
        1,
        "compile",
        Json::obj([("uri", Json::str("b.anv"))]),
    );
    assert_eq!(error_code(&resp), anvild::COMPILE_FAILED);
    let diags = notes
        .iter()
        .find_map(|n| {
            (n.get("method").and_then(Json::as_str) == Some("diagnostics"))
                .then(|| n.get("params").unwrap().get("diagnostics").unwrap())
        })
        .expect("diagnostics notification streamed");
    let diags = diags.as_array().unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("line").and_then(Json::as_i64), Some(1));
    assert!(diags[0].get("col").and_then(Json::as_i64) > Some(0));

    // The `diagnostics` (check-only) method reports the same count.
    let (resp, notes) = call(
        &service,
        2,
        "diagnostics",
        Json::obj([("uri", Json::str("b.anv"))]),
    );
    assert_eq!(result(&resp, "count").as_i64(), Some(1));
    assert_eq!(notes.len(), 1);
}

#[test]
fn registry_enforces_open_and_version_monotonicity() {
    let service = CompileService::new();

    // Compile before open → FILE_NOT_OPEN.
    let (resp, _) = call(&service, 1, "compile", Json::obj([("uri", Json::str("x"))]));
    assert_eq!(error_code(&resp), anvild::FILE_NOT_OPEN);

    open(&service, "x", GOOD);
    let (resp, _) = call(
        &service,
        2,
        "update",
        Json::obj([
            ("uri", Json::str("x")),
            ("text", Json::str(GOOD)),
            ("version", Json::int(5)),
        ]),
    );
    assert_eq!(result(&resp, "version").as_i64(), Some(5));

    // Going backwards (or sideways) is rejected.
    let (resp, _) = call(
        &service,
        3,
        "update",
        Json::obj([
            ("uri", Json::str("x")),
            ("text", Json::str(GOOD)),
            ("version", Json::int(5)),
        ]),
    );
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);

    // Close, then the uri is gone.
    let (resp, _) = call(&service, 4, "close", Json::obj([("uri", Json::str("x"))]));
    assert!(resp.get("result").is_some());
    let (resp, _) = call(&service, 5, "close", Json::obj([("uri", Json::str("x"))]));
    assert_eq!(error_code(&resp), anvild::FILE_NOT_OPEN);
    assert_eq!(service.open_files(), 0);
}

#[test]
fn unknown_methods_and_malformed_params_get_spec_codes() {
    let service = CompileService::new();
    let (resp, _) = call(&service, 1, "transmogrify", Json::Null);
    assert_eq!(error_code(&resp), anvild::METHOD_NOT_FOUND);

    let (resp, _) = call(&service, 2, "open", Json::obj([("uri", Json::str("u"))]));
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);

    let (resp, _) = call(&service, 3, "cancel", Json::Null);
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);
}

#[test]
fn pre_cancellation_cancels_the_request_when_it_arrives() {
    let service = CompileService::new();
    open(&service, "c.anv", GOOD);

    let (resp, _) = call(&service, 100, "cancel", Json::obj([("id", Json::int(7))]));
    assert_eq!(result(&resp, "inflight").as_bool(), Some(false));

    let (resp, _) = call(
        &service,
        7,
        "compile",
        Json::obj([("uri", Json::str("c.anv"))]),
    );
    assert_eq!(error_code(&resp), anvild::REQUEST_CANCELLED);

    // The id is consumed: reusing it afterwards works normally.
    let (resp, _) = call(
        &service,
        7,
        "compile",
        Json::obj([("uri", Json::str("c.anv"))]),
    );
    assert!(resp.get("result").is_some(), "{resp}");
}

#[test]
fn injected_compiler_panic_kills_the_request_not_the_service() {
    let service = CompileService::new();
    let boom = format!("proc boom() {{ }} // {}", anvil_core::PANIC_MARKER);
    open(&service, "boom.anv", &boom);
    open(&service, "ok.anv", GOOD);

    let (resp, _) = call(
        &service,
        1,
        "compile",
        Json::obj([("uri", Json::str("boom.anv"))]),
    );
    assert_eq!(error_code(&resp), anvild::INTERNAL_ERROR);

    // The service keeps serving, and the cache recovered by itself.
    let (resp, _) = call(
        &service,
        2,
        "compile",
        Json::obj([("uri", Json::str("ok.anv"))]),
    );
    assert!(resp.get("result").is_some(), "{resp}");
    let (stats, _) = call(&service, 3, "cacheStats", Json::Null);
    assert!(result(&stats, "poisoned").as_i64().is_some());
}

#[test]
fn prove_falsifies_a_failing_property_over_the_wire() {
    let service = CompileService::new();
    // Registers reset to 0, so "ok stays truthy" is falsified at the
    // first checked cycle.
    open(
        &service,
        "p.anv",
        "proc main() { reg ok : logic; loop { set ok := 1 >> cycle 1 } }",
    );
    let (resp, _) = call(
        &service,
        1,
        "prove",
        Json::obj([
            ("uri", Json::str("p.anv")),
            ("signal", Json::str("ok")),
            ("maxK", Json::int(4)),
        ]),
    );
    assert_eq!(result(&resp, "verdict").as_str(), Some("falsified"));
    assert_eq!(result(&resp, "depth").as_i64(), Some(1));
    assert!(result(&resp, "trace").as_str().is_some(), "{resp}");
    // A cold prove names its winning engine and reports both AIG sizes.
    assert!(
        matches!(
            result(&resp, "engine").as_str(),
            Some("symbolic" | "pdr" | "explicit")
        ),
        "{resp}"
    );
    assert!(result(&resp, "aigNodes").as_i64().is_some());
    assert!(result(&resp, "aigNodesAfterRewrite").as_i64().is_some());
    assert!(result(&resp, "clauses").as_i64().is_some());

    // Unknown signal → invalid params naming the candidates.
    let (resp, _) = call(
        &service,
        2,
        "prove",
        Json::obj([("uri", Json::str("p.anv")), ("signal", Json::str("nope"))]),
    );
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);
}

#[test]
fn warm_reprove_is_a_proof_cache_hit_across_whitespace_edits() {
    let service = CompileService::new();
    let src = "proc main() { reg ok : logic; loop { set ok := 1 >> cycle 1 } }";
    open(&service, "w.anv", src);
    let params = Json::obj([
        ("uri", Json::str("w.anv")),
        ("signal", Json::str("ok")),
        ("maxK", Json::int(4)),
    ]);

    let (cold, _) = call(&service, 1, "prove", params.clone());
    assert_eq!(result(&cold, "verdict").as_str(), Some("falsified"));
    let cold_engine = result(&cold, "engine").as_str().unwrap().to_string();
    assert_ne!(cold_engine, "cache");

    // Reformat the file (whitespace only): the lower-stage fingerprint
    // is unchanged, so re-proving revalidates the cached certificate
    // instead of rerunning the portfolio.
    open(&service, "w.anv", &src.replace(" { ", " {\n    "));
    let (warm, _) = call(&service, 2, "prove", params);
    assert_eq!(result(&warm, "engine").as_str(), Some("cache"), "{warm}");
    // The certificate remembers its producer by proof style: "bmc" /
    // "k-induction" / "pdr" / "explicit".
    assert!(
        matches!(
            result(&warm, "cachedEngine").as_str(),
            Some("bmc" | "k-induction" | "pdr" | "explicit")
        ),
        "{warm}"
    );
    assert_eq!(result(&warm, "verdict").as_str(), Some("falsified"));
    assert_eq!(result(&warm, "depth").as_i64(), Some(1));

    // The proof stage's counters saw exactly one miss (cold) and one
    // hit (warm).
    let (stats, _) = call(&service, 3, "cacheStats", Json::Null);
    let proof = result(&stats, "proof");
    assert_eq!(proof.get("hits").and_then(Json::as_i64), Some(1), "{stats}");
    assert_eq!(proof.get("misses").and_then(Json::as_i64), Some(1));
}

#[test]
fn notifications_get_no_response() {
    let service = CompileService::new();
    let msg = parse_incoming(r#"{"jsonrpc":"2.0","method":"ping"}"#).unwrap();
    assert!(service.handle(msg, &mut |_| {}).is_none());
}

/// Runs the serve loop over a socketpair on a scoped thread, returning
/// the client end.
fn serve_pair<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    service: &'env CompileService,
) -> UnixStream {
    let (client, server) = UnixStream::pair().expect("socketpair");
    scope.spawn(move || {
        let reader = BufReader::new(server.try_clone().expect("clone"));
        service.serve(reader, &server).expect("serve");
    });
    client
}

fn call_over_wire(
    stream: &mut UnixStream,
    reader: &mut BufReader<UnixStream>,
    frame: &str,
) -> Json {
    writeln!(stream, "{frame}").expect("write");
    // A malformed frame has no recoverable id; the server answers it
    // with `"id":null`, so match on Null in that case.
    let want = Json::parse(frame)
        .ok()
        .and_then(|f| f.get("id").cloned())
        .unwrap_or(Json::Null);
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server hung up"
        );
        let resp = Json::parse(line.trim()).expect("valid frame");
        if resp.get("id") == Some(&want) {
            return resp;
        }
    }
}

#[test]
fn serve_loop_shares_one_warm_session_across_two_clients() {
    let service = CompileService::new();
    std::thread::scope(|scope| {
        let mut c1 = serve_pair(scope, &service);
        let mut r1 = BufReader::new(c1.try_clone().unwrap());
        let mut c2 = serve_pair(scope, &service);
        let mut r2 = BufReader::new(c2.try_clone().unwrap());

        // Client 1 opens and compiles cold.
        let open = Incoming::request(
            1,
            "open",
            Json::obj([("uri", Json::str("s.anv")), ("text", Json::str(GOOD))]),
        )
        .to_frame()
        .to_string();
        call_over_wire(&mut c1, &mut r1, &open);
        let resp = call_over_wire(
            &mut c1,
            &mut r1,
            r#"{"jsonrpc":"2.0","id":2,"method":"compile","params":{"uri":"s.anv"}}"#,
        );
        assert!(
            result(&resp, "cacheDelta")
                .get("misses")
                .and_then(Json::as_i64)
                > Some(0),
            "{resp}"
        );

        // Client 2 sees the same registry AND a fully warm cache.
        let resp = call_over_wire(
            &mut c2,
            &mut r2,
            r#"{"jsonrpc":"2.0","id":3,"method":"compile","params":{"uri":"s.anv"}}"#,
        );
        assert_eq!(
            result(&resp, "cacheDelta")
                .get("misses")
                .and_then(Json::as_i64),
            Some(0),
            "second client was not warm: {resp}"
        );

        // Malformed JSON gets a parse error, id null, connection lives.
        let resp = call_over_wire(&mut c2, &mut r2, "{nope");
        assert_eq!(error_code(&resp), anvild::PARSE_ERROR);

        // Shutdown via client 1 ends both serve loops (scope joins).
        call_over_wire(
            &mut c1,
            &mut r1,
            r#"{"jsonrpc":"2.0","id":9,"method":"shutdown"}"#,
        );
        assert!(service.is_shut_down());
        drop((c1, c2));
    });
}

#[test]
fn rpc_error_type_is_usable_downstream() {
    let err = RpcError::invalid_params("nope");
    assert_eq!(err.code, anvild::INVALID_PARAMS);
    assert_eq!(err.to_string(), "[-32602] nope");
}
