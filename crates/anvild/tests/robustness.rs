//! Overload-and-failure survival tests for the compile service:
//! deadlines (`-32003` with partial progress), admission control
//! (`-32004` with a retry hint), watchdog recovery of overdue workers,
//! the `health` counters, drain/abort shutdown, and a cancellation
//! storm that must leave no orphaned state behind.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use anvild::{CompileService, Incoming, Json, ServiceConfig};

const GOOD: &str = "proc p() { reg r : logic[8]; loop { set r := *r + 1 >> cycle 1 } }";

/// A property with an astronomically deep counterexample: `ok` only
/// goes false when a 32-bit counter wraps, so no engine settles it in
/// test time — proves with short deadlines reliably time out.
const SLOW: &str = "proc slow() { reg c : logic[32]; reg ok : logic := 1; \
    loop { set ok := !(*c == 4294967295); set c := *c + 1 >> cycle 1 } }";

fn call(service: &CompileService, id: i64, method: &str, params: Json) -> Json {
    service
        .handle(Incoming::request(id, method, params), &mut |_| {})
        .expect("requests get responses")
}

fn result<'r>(resp: &'r Json, key: &str) -> &'r Json {
    resp.get("result")
        .and_then(|r| r.get(key))
        .unwrap_or_else(|| panic!("missing result.{key} in {resp}"))
}

fn error_code(resp: &Json) -> i64 {
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("expected an error response, got {resp}"))
}

fn error_data<'r>(resp: &'r Json, key: &str) -> &'r Json {
    resp.get("error")
        .and_then(|e| e.get("data"))
        .and_then(|d| d.get(key))
        .unwrap_or_else(|| panic!("missing error.data.{key} in {resp}"))
}

fn open(service: &CompileService, uri: &str, text: &str) {
    let resp = call(
        service,
        90,
        "open",
        Json::obj([("uri", Json::str(uri)), ("text", Json::str(text))]),
    );
    assert!(resp.get("result").is_some(), "{resp}");
}

/// Runs the serve loop over a socketpair on a scoped thread, returning
/// the client end.
fn serve_pair<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    service: &'env CompileService,
) -> UnixStream {
    let (client, server) = UnixStream::pair().expect("socketpair");
    scope.spawn(move || {
        let reader = BufReader::new(server.try_clone().expect("clone"));
        service.serve(reader, &server).expect("serve");
    });
    client
}

/// Reads frames until the response for `id` arrives. Responses come
/// back out of order (workers race), so frames for other ids are
/// buffered, not dropped; notifications are discarded.
struct Responses {
    reader: BufReader<UnixStream>,
    pending: std::collections::HashMap<i64, Json>,
}

impl Responses {
    fn new(stream: &UnixStream) -> Responses {
        Responses {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            pending: std::collections::HashMap::new(),
        }
    }

    fn read(&mut self, id: i64) -> Json {
        if let Some(frame) = self.pending.remove(&id) {
            return frame;
        }
        loop {
            let mut line = String::new();
            assert!(
                self.reader.read_line(&mut line).expect("read") > 0,
                "server closed while waiting for response {id}"
            );
            let frame = Json::parse(line.trim()).expect("valid JSON from server");
            match frame.get("id").and_then(Json::as_i64) {
                Some(got) if got == id => return frame,
                Some(got) => {
                    self.pending.insert(got, frame);
                }
                None => {}
            }
        }
    }
}

#[test]
fn expired_deadline_fails_fast_and_the_service_keeps_serving() {
    let service = CompileService::new();
    open(&service, "d.anv", GOOD);

    // deadlineMs:0 is already expired at registration; the dispatcher
    // answers -32003 without starting the pipeline.
    let resp = call(
        &service,
        1,
        "compile",
        Json::obj([("uri", Json::str("d.anv")), ("deadlineMs", Json::int(0))]),
    );
    assert_eq!(error_code(&resp), anvild::DEADLINE_EXCEEDED, "{resp}");

    // Same request without a deadline compiles fine afterwards.
    let resp = call(
        &service,
        2,
        "compile",
        Json::obj([("uri", Json::str("d.anv"))]),
    );
    assert!(resp.get("result").is_some(), "{resp}");

    let stats = service.service_stats();
    assert_eq!(stats.deadline_expired, 1, "{stats:?}");
}

#[test]
fn deadline_param_is_validated() {
    let service = CompileService::new();
    let resp = call(
        &service,
        1,
        "ping",
        Json::obj([("deadlineMs", Json::int(-5))]),
    );
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);
    let resp = call(
        &service,
        2,
        "ping",
        Json::obj([("deadlineMs", Json::str("soon"))]),
    );
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);
}

#[test]
fn prove_deadline_returns_partial_progress_quickly() {
    let service = CompileService::new();
    open(&service, "slow.anv", SLOW);

    // Warm the compile artifacts so the deadline lands inside the
    // portfolio, not the pipeline — the partial-progress shape is the
    // point here.
    let resp = call(
        &service,
        1,
        "compile",
        Json::obj([("uri", Json::str("slow.anv"))]),
    );
    assert!(resp.get("result").is_some(), "{resp}");

    let started = Instant::now();
    let resp = call(
        &service,
        2,
        "prove",
        Json::obj([
            ("uri", Json::str("slow.anv")),
            ("signal", Json::str("ok")),
            ("maxK", Json::int(100_000)),
            ("deadlineMs", Json::int(30)),
        ]),
    );
    let elapsed = started.elapsed();
    assert_eq!(error_code(&resp), anvild::DEADLINE_EXCEEDED, "{resp}");
    assert!(
        elapsed < Duration::from_secs(1),
        "deadline-bounded prove took {elapsed:?}"
    );
    // Partial progress rides in error.data.
    assert_eq!(error_data(&resp, "verdict").as_str(), Some("unknown"));
    assert!(
        error_data(&resp, "depthReached").as_i64() >= Some(0),
        "{resp}"
    );
    assert!(
        matches!(
            error_data(&resp, "engine").as_str(),
            Some("symbolic" | "pdr")
        ),
        "{resp}"
    );
    assert!(error_data(&resp, "conflicts").as_i64() >= Some(0), "{resp}");

    // The daemon is unharmed: the same prove with a sane budget answers.
    let resp = call(
        &service,
        3,
        "prove",
        Json::obj([
            ("uri", Json::str("slow.anv")),
            ("signal", Json::str("ok")),
            ("maxK", Json::int(2)),
        ]),
    );
    assert!(resp.get("result").is_some(), "{resp}");
}

#[test]
fn admission_gate_sheds_bursts_with_a_retry_hint() {
    let config = ServiceConfig {
        max_concurrency: 1,
        max_queue: 1,
        chaos: true,
        ..ServiceConfig::default()
    };
    let service = CompileService::with_config(anvil_core::Session::new(), config);
    open(&service, "b.anv", GOOD);

    std::thread::scope(|scope| {
        let client = serve_pair(scope, &service);
        let mut responses = Responses::new(&client);
        let mut client = client;

        // One stalled compile clogs the only worker slot...
        writeln!(
            client,
            r#"{{"jsonrpc":"2.0","id":1,"method":"compile","params":{{"uri":"b.anv","chaosStallMs":300}}}}"#
        )
        .expect("write");
        // ...then a burst: one queues, the rest shed immediately.
        for id in 2..7 {
            writeln!(
                client,
                r#"{{"jsonrpc":"2.0","id":{id},"method":"compile","params":{{"uri":"b.anv"}}}}"#
            )
            .expect("write");
        }
        let mut shed = 0;
        let mut served = 0;
        for id in 1..7 {
            let resp = responses.read(id);
            if resp.get("result").is_some() {
                served += 1;
            } else {
                assert_eq!(error_code(&resp), anvild::OVERLOADED, "{resp}");
                let hint = error_data(&resp, "retryAfterMs").as_i64();
                assert!(hint > Some(0), "{resp}");
                shed += 1;
            }
        }
        // Slot + queue = 2 requests make it through; the rest shed.
        assert_eq!(served, 2, "expected exactly slot+queue to be served");
        assert_eq!(shed, 4);

        // After the burst drains, the gate admits again.
        writeln!(
            client,
            r#"{{"jsonrpc":"2.0","id":10,"method":"compile","params":{{"uri":"b.anv"}}}}"#
        )
        .expect("write");
        let resp = responses.read(10);
        assert!(resp.get("result").is_some(), "{resp}");

        writeln!(client, r#"{{"jsonrpc":"2.0","id":11,"method":"shutdown"}}"#).expect("write");
        responses.read(11);
    });

    let stats = service.service_stats();
    assert_eq!(stats.shed, 4, "{stats:?}");
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    assert_eq!(stats.queued, 0, "{stats:?}");
}

#[test]
fn watchdog_cancels_workers_that_overrun_their_deadline() {
    let config = ServiceConfig {
        max_concurrency: 2,
        watchdog_grace_ms: 20,
        chaos: true,
        ..ServiceConfig::default()
    };
    let service = CompileService::with_config(anvil_core::Session::new(), config);
    open(&service, "w.anv", GOOD);

    std::thread::scope(|scope| {
        let client = serve_pair(scope, &service);
        let mut responses = Responses::new(&client);
        let mut client = client;

        // The stall outlives deadline+grace, so the serve loop's watchdog
        // fires mid-stall; the pipeline then observes the expired
        // deadline at its first poll and answers -32003.
        writeln!(
            client,
            r#"{{"jsonrpc":"2.0","id":1,"method":"compile","params":{{"uri":"w.anv","chaosStallMs":200,"deadlineMs":25}}}}"#
        )
        .expect("write");
        let resp = responses.read(1);
        assert_eq!(error_code(&resp), anvild::DEADLINE_EXCEEDED, "{resp}");

        // health reflects the recovery.
        writeln!(client, r#"{{"jsonrpc":"2.0","id":2,"method":"health"}}"#).expect("write");
        let health = responses.read(2);
        assert!(
            result(&health, "watchdogFired").as_i64() >= Some(1),
            "{health}"
        );
        assert!(
            result(&health, "deadlineExpired").as_i64() >= Some(1),
            "{health}"
        );
        assert_eq!(result(&health, "ok").as_bool(), Some(true));

        writeln!(client, r#"{{"jsonrpc":"2.0","id":3,"method":"shutdown"}}"#).expect("write");
        responses.read(3);
    });
}

#[test]
fn watchdog_scan_is_a_noop_without_overdue_work() {
    let service = CompileService::new();
    assert_eq!(service.watchdog_scan(), 0);
    assert_eq!(service.service_stats().watchdog_fired, 0);
}

#[test]
fn health_counts_requests_and_recovered_panics() {
    let service = CompileService::new();
    let boom = format!("proc boom() {{ }} // {}", anvil_core::PANIC_MARKER);
    open(&service, "boom.anv", &boom);

    let resp = call(
        &service,
        1,
        "compile",
        Json::obj([("uri", Json::str("boom.anv"))]),
    );
    assert_eq!(error_code(&resp), anvild::INTERNAL_ERROR);

    let health = call(&service, 2, "health", Json::Null);
    assert_eq!(result(&health, "ok").as_bool(), Some(true));
    assert!(
        result(&health, "panicsRecovered").as_i64() >= Some(1),
        "{health}"
    );
    assert!(result(&health, "requests").as_i64() >= Some(2), "{health}");
    assert!(result(&health, "uptimeMs").as_i64() >= Some(0));
    assert_eq!(result(&health, "inFlight").as_i64(), Some(0));
}

#[test]
fn shutdown_validates_mode_and_drain_spares_inflight_flags() {
    let service = CompileService::new();
    let resp = call(
        &service,
        1,
        "shutdown",
        Json::obj([("mode", Json::str("yolo"))]),
    );
    assert_eq!(error_code(&resp), anvild::INVALID_PARAMS);
    assert!(!service.is_shut_down());

    let resp = call(&service, 2, "shutdown", Json::Null);
    assert_eq!(result(&resp, "mode").as_str(), Some("drain"));
    assert!(service.is_shut_down());
}

#[test]
fn abort_shutdown_cancels_inflight_work() {
    let config = ServiceConfig {
        max_concurrency: 2,
        chaos: true,
        ..ServiceConfig::default()
    };
    let service = CompileService::with_config(anvil_core::Session::new(), config);
    open(&service, "a.anv", GOOD);

    std::thread::scope(|scope| {
        let client = serve_pair(scope, &service);
        let mut responses = Responses::new(&client);
        let mut client = client;

        // A long stall, no deadline: only the abort can unstick it early
        // (the stop flag is polled right after the stall, cancelling the
        // compile before any pipeline work runs).
        writeln!(
            client,
            r#"{{"jsonrpc":"2.0","id":1,"method":"compile","params":{{"uri":"a.anv","chaosStallMs":150}}}}"#
        )
        .expect("write");
        writeln!(
            client,
            r#"{{"jsonrpc":"2.0","id":2,"method":"shutdown","params":{{"mode":"abort"}}}}"#
        )
        .expect("write");
        let resp = responses.read(2);
        assert_eq!(result(&resp, "mode").as_str(), Some("abort"));
        let resp = responses.read(1);
        assert_eq!(error_code(&resp), anvild::REQUEST_CANCELLED, "{resp}");
    });
    assert!(service.is_shut_down());
}

#[test]
fn cancellation_storm_leaves_no_orphaned_state() {
    let service = CompileService::with_config(
        anvil_core::Session::new(),
        ServiceConfig {
            max_concurrency: 4,
            max_queue: 64,
            ..ServiceConfig::default()
        },
    );
    open(&service, "s.anv", GOOD);
    const COMPILES: i64 = 24;

    std::thread::scope(|scope| {
        // Connection A streams compiles; connection B storms cancels for
        // ids in flight, already done, and never-to-arrive.
        let a = serve_pair(scope, &service);
        let mut a_responses = Responses::new(&a);
        let mut a = a;
        let b = serve_pair(scope, &service);
        let mut b_responses = Responses::new(&b);
        let mut b = b;

        let canceller = scope.spawn(move || {
            for wave in 0..3 {
                for id in (100..100 + COMPILES).chain(500..508) {
                    writeln!(
                        b,
                        r#"{{"jsonrpc":"2.0","id":{cid},"method":"cancel","params":{{"id":{id}}}}}"#,
                        cid = 9000 + wave * 100 + id,
                    )
                    .expect("cancel write");
                }
            }
            // Every cancel gets its own ok response, in order.
            for wave in 0..3 {
                for id in (100..100 + COMPILES).chain(500..508) {
                    let resp = b_responses.read(9000 + wave * 100 + id);
                    assert!(resp.get("result").is_some(), "{resp}");
                }
            }
        });

        for id in 100..100 + COMPILES {
            writeln!(
                a,
                r#"{{"jsonrpc":"2.0","id":{id},"method":"compile","params":{{"uri":"s.anv"}}}}"#
            )
            .expect("compile write");
        }
        // Every compile is answered: success or a clean -32800, nothing
        // hangs, nothing panics.
        for id in 100..100 + COMPILES {
            let resp = a_responses.read(id);
            assert!(
                resp.get("result").is_some() || error_code(&resp) == anvild::REQUEST_CANCELLED,
                "{resp}"
            );
        }
        canceller.join().expect("canceller");

        // Ids 500..508 were pre-cancelled but never arrived: their flags
        // linger by design, and are consumed by the next use of the id.
        for id in 500..508 {
            writeln!(
                a,
                r#"{{"jsonrpc":"2.0","id":{id},"method":"compile","params":{{"uri":"s.anv"}}}}"#
            )
            .expect("write");
            let resp = a_responses.read(id);
            assert_eq!(error_code(&resp), anvild::REQUEST_CANCELLED, "{resp}");
        }
        // Consumed: the same ids now work normally — no orphaned flags.
        for id in 500..508 {
            writeln!(
                a,
                r#"{{"jsonrpc":"2.0","id":{id},"method":"compile","params":{{"uri":"s.anv"}}}}"#
            )
            .expect("write");
            let resp = a_responses.read(id);
            assert!(resp.get("result").is_some(), "{resp}");
        }

        writeln!(a, r#"{{"jsonrpc":"2.0","id":8000,"method":"ping"}}"#).expect("write");
        let resp = a_responses.read(8000);
        assert!(resp.get("result").is_some(), "{resp}");
        writeln!(a, r#"{{"jsonrpc":"2.0","id":8001,"method":"shutdown"}}"#).expect("write");
        a_responses.read(8001);
    });

    let stats = service.service_stats();
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    assert_eq!(stats.queued, 0, "{stats:?}");
}
