//! Admission control and service health accounting for [`crate::CompileService`].
//!
//! The daemon survives overload by *shedding* rather than queueing
//! without bound: heavy requests (compile / diagnostics / prove) pass
//! through an [`AdmissionGate`] sized by [`ServiceConfig`] — up to
//! `max_concurrency` run at once, up to `max_queue` wait their turn on a
//! condvar, and anything beyond that is rejected immediately with
//! `OVERLOADED` (`-32004`) plus a `retryAfterMs` hint derived from an
//! EWMA of recent service times. Cheap registry/control methods (ping,
//! open, cancel, health, ...) bypass the gate entirely, so a wedged
//! worker pool never takes liveness probes down with it.
//!
//! [`ServiceCounters`] holds the operational counters the `health`
//! method reports (and [`ServiceStats`] snapshots for tests): requests
//! seen, sheds, deadline expiries, watchdog firings, recovered panics,
//! cancellations, completions. The counters are handles into the
//! service's [`anvil_trace::Registry`], so `health`, `cacheStats`, the
//! `metrics` method, and the Prometheus exposition all read the same
//! numbers — there is no bespoke counter plumbing to drift out of sync.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use anvil_trace::{Counter, Gauge, Registry};

/// Tunables for one [`crate::CompileService`]: worker cap, queue depth,
/// default deadline, watchdog grace, and the chaos switch.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Heavy requests (compile / diagnostics / prove) running at once.
    pub max_concurrency: usize,
    /// Heavy requests allowed to wait beyond the running cap before the
    /// gate sheds with `OVERLOADED`.
    pub max_queue: usize,
    /// Deadline applied to requests that carry no `deadlineMs` param
    /// (`None` = no default; such requests can run forever unless
    /// cancelled).
    pub default_deadline_ms: Option<u64>,
    /// How far past its deadline a worker may run before the watchdog
    /// raises its stop flag and counts a recovery.
    pub watchdog_grace_ms: u64,
    /// When true, honors the `#[doc(hidden)]` chaos hooks (the
    /// `chaosStallMs` compile param). Off in production.
    pub chaos: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_concurrency: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .clamp(2, 8),
            max_queue: 32,
            default_deadline_ms: None,
            watchdog_grace_ms: 250,
            chaos: false,
        }
    }
}

/// What the gate decided for an arriving heavy request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A worker slot was free; run immediately.
    Run,
    /// All slots busy but queue space was free; call
    /// [`AdmissionGate::wait_turn`] before running.
    Queued,
    /// Queue full too; shed with `OVERLOADED` without starting.
    Shed,
}

#[derive(Default)]
struct GateState {
    running: usize,
    queued: usize,
}

/// Bounded two-stage admission: `max_concurrency` running,
/// `max_queue` waiting, everything else shed at arrival.
pub struct AdmissionGate {
    state: Mutex<GateState>,
    turn: Condvar,
    max_concurrency: usize,
    max_queue: usize,
}

impl AdmissionGate {
    pub fn new(max_concurrency: usize, max_queue: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            turn: Condvar::new(),
            max_concurrency: max_concurrency.max(1),
            max_queue,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        // The gate holds no invariants a panicking thread could break
        // mid-update; recover rather than cascade.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Decides at arrival: run now, wait in the bounded queue, or shed.
    pub fn try_admit(&self) -> Admission {
        let mut state = self.lock();
        if state.running < self.max_concurrency {
            state.running += 1;
            Admission::Run
        } else if state.queued < self.max_queue {
            state.queued += 1;
            Admission::Queued
        } else {
            Admission::Shed
        }
    }

    /// Blocks a [`Admission::Queued`] request until a worker slot frees.
    pub fn wait_turn(&self) {
        let mut state = self.lock();
        while state.running >= self.max_concurrency {
            state = self.turn.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.queued = state.queued.saturating_sub(1);
        state.running += 1;
    }

    /// Releases a worker slot (must pair every `Run` admission and every
    /// `wait_turn` return) and wakes one queued waiter.
    pub fn depart(&self) {
        let mut state = self.lock();
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.turn.notify_one();
    }

    /// Current `(running, queued)` gauges, for `health` and shed hints.
    pub fn gauges(&self) -> (usize, usize) {
        let state = self.lock();
        (state.running, state.queued)
    }
}

/// Monotonic operational counters backing the `health` method — thin
/// handles into the service's metrics [`Registry`], fetched once at
/// construction so the hot path stays lock-free.
pub struct ServiceCounters {
    started: Instant,
    registry: Arc<Registry>,
    /// Requests dispatched (frames with a method, including sheds).
    pub requests: Arc<Counter>,
    /// Heavy requests rejected with `OVERLOADED` before starting.
    pub shed: Arc<Counter>,
    /// Responses that reported `DEADLINE_EXCEEDED`.
    pub deadline_expired: Arc<Counter>,
    /// Stop flags raised by the watchdog on overdue workers.
    pub watchdog_fired: Arc<Counter>,
    /// Handler panics caught and converted to `INTERNAL_ERROR`.
    pub panics_recovered: Arc<Counter>,
    /// Responses that reported `REQUEST_CANCELLED`.
    pub cancelled: Arc<Counter>,
    /// Requests that produced a response (success or error).
    pub completed: Arc<Counter>,
    /// EWMA of heavy-request service time, milliseconds (alpha = 1/4).
    pub ewma_service_ms: Arc<Gauge>,
    /// Full distribution of heavy-request service times, microseconds.
    pub service_us: Arc<anvil_trace::Histogram>,
}

impl ServiceCounters {
    pub fn new() -> ServiceCounters {
        ServiceCounters::with_registry(Arc::new(Registry::new()))
    }

    /// Counters registered in (and readable back from) `registry`.
    pub fn with_registry(registry: Arc<Registry>) -> ServiceCounters {
        ServiceCounters {
            started: Instant::now(),
            requests: registry.counter("anvild_requests_total"),
            shed: registry.counter("anvild_shed_total"),
            deadline_expired: registry.counter("anvild_deadline_expired_total"),
            watchdog_fired: registry.counter("anvild_watchdog_fired_total"),
            panics_recovered: registry.counter("anvild_panics_recovered_total"),
            cancelled: registry.counter("anvild_cancelled_total"),
            completed: registry.counter("anvild_completed_total"),
            ewma_service_ms: registry.gauge("anvild_ewma_service_ms"),
            service_us: registry.histogram("anvild_service_us"),
            registry,
        }
    }

    /// The registry these counters live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Milliseconds since the service was constructed.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Folds one heavy-request service time into the EWMA gauge and the
    /// service-time histogram.
    pub fn observe_service_micros(&self, micros: u64) {
        self.ewma_service_ms.observe_ewma(micros as f64 / 1000.0);
        self.service_us.observe(micros);
    }

    /// The service-time EWMA in microseconds (for `retryAfterMs`).
    pub fn ewma_service_micros(&self) -> u64 {
        (self.ewma_service_ms.get() * 1000.0) as u64
    }
}

impl Default for ServiceCounters {
    fn default() -> ServiceCounters {
        ServiceCounters::new()
    }
}

/// A point-in-time snapshot of the service's health counters — the same
/// numbers the `health` method returns on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Milliseconds since the service was constructed.
    pub uptime_ms: u64,
    /// Heavy requests currently occupying a worker slot.
    pub in_flight: usize,
    /// Heavy requests waiting for a worker slot.
    pub queued: usize,
    /// Requests dispatched so far (including sheds).
    pub requests: u64,
    /// Heavy requests rejected with `OVERLOADED` before starting.
    pub shed: u64,
    /// Responses that reported `DEADLINE_EXCEEDED`.
    pub deadline_expired: u64,
    /// Stop flags raised by the watchdog on overdue workers.
    pub watchdog_fired: u64,
    /// Handler panics caught and converted to `INTERNAL_ERROR`.
    pub panics_recovered: u64,
    /// Responses that reported `REQUEST_CANCELLED`.
    pub cancelled: u64,
    /// Requests that produced a response (success or error).
    pub completed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_cap_then_queues_then_sheds() {
        let gate = AdmissionGate::new(2, 1);
        assert_eq!(gate.try_admit(), Admission::Run);
        assert_eq!(gate.try_admit(), Admission::Run);
        assert_eq!(gate.try_admit(), Admission::Queued);
        assert_eq!(gate.try_admit(), Admission::Shed);
        assert_eq!(gate.gauges(), (2, 1));
    }

    #[test]
    fn departing_wakes_a_queued_waiter() {
        let gate = AdmissionGate::new(1, 4);
        assert_eq!(gate.try_admit(), Admission::Run);
        assert_eq!(gate.try_admit(), Admission::Queued);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| gate.wait_turn());
            std::thread::sleep(std::time::Duration::from_millis(10));
            gate.depart();
            waiter.join().unwrap();
        });
        assert_eq!(gate.gauges(), (1, 0));
    }

    #[test]
    fn ewma_smooths_toward_recent_observations() {
        let c = ServiceCounters::new();
        c.observe_service_micros(1000);
        assert_eq!(c.ewma_service_micros(), 1000);
        c.observe_service_micros(2000);
        assert_eq!(c.ewma_service_micros(), 1250);
    }

    #[test]
    fn counters_are_readable_back_from_the_registry() {
        let c = ServiceCounters::new();
        c.requests.add(3);
        c.shed.inc();
        c.observe_service_micros(5000);
        let snap = c.registry().snapshot();
        assert_eq!(snap.counter("anvild_requests_total"), Some(3));
        assert_eq!(snap.counter("anvild_shed_total"), Some(1));
        assert_eq!(snap.gauge("anvild_ewma_service_ms"), Some(5.0));
        assert_eq!(snap.histogram("anvild_service_us").unwrap().count, 1);
    }
}
