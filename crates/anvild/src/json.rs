//! A minimal JSON value type with a parser and compact serializer.
//!
//! The workspace is offline (no serde), and the anvild wire protocol
//! only needs newline-delimited compact JSON, so this is a small
//! recursive-descent implementation of RFC 8259: all escape forms
//! (including `\uXXXX` with surrogate pairs), numbers as `f64` with
//! integral values serialized without a fractional part, and objects
//! kept in a `BTreeMap` so serialization is deterministic.

use std::collections::BTreeMap;
use std::fmt;

use anvil_syntax::json_escape_into;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integral values round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, ordered by key for deterministic serialization.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn int(n: i64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Compact single-line serialization (no added whitespace), the
    /// framing anvild's newline-delimited transport requires.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null") // JSON has no NaN/Inf
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                json_escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    json_escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON parse failure with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What was malformed.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must
                                // follow immediately.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("2.5"), "2.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_roundtrip_deterministically() {
        assert_eq!(roundtrip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(roundtrip("{}"), "{}");
        // Keys sort, so serialization is order-independent.
        assert_eq!(roundtrip("{\"b\":1,\"a\":2}"), "{\"a\":2,\"b\":1}");
        assert_eq!(
            roundtrip("{\"x\": {\"y\": [true, null]}}"),
            "{\"x\":{\"y\":[true,null]}}"
        );
    }

    #[test]
    fn string_escapes_parse() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".to_string())
        );
        // Escaped surrogate pair decodes to U+1F600, and literal
        // non-ASCII passes through.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        assert_eq!(
            Json::parse("\"\u{1F600}\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn malformed_input_reports_offset() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"id": 3, "ok": true, "xs": [1], "s": "t"}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(v.get("missing"), None);
    }
}
