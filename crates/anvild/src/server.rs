//! The compile service: method dispatch, the versioned file registry,
//! request cancellation, deadlines, admission control, the watchdog,
//! and the newline-delimited serve loop.
//!
//! One [`CompileService`] owns one [`Session`] — and therefore one
//! sharded query cache — shared by every request on every connection.
//! A warm `compile` of an unchanged (or whitespace-edited) file is a
//! pure cache hit regardless of which client sends it; the `cacheDelta`
//! member of each compile response makes that observable on the wire.
//!
//! # Crash and cancellation safety
//!
//! Every request handler runs under `catch_unwind`: a panicking compile
//! produces an `internal error` response for *that request* and the
//! daemon keeps serving (the session's cache recovers poisoned shards
//! by itself, see `anvil_core`'s cache docs). Requests carrying an id
//! register a cooperative stop flag keyed by that id; the `cancel`
//! method raises the flag, and [`Session::compile_cancellable`] /
//! the prover poll it at unit boundaries. A `cancel` that arrives
//! before its request pre-raises the flag, so cancelling is never racy
//! from the client's point of view. Ids must not be reused after
//! cancellation (a pre-raised flag for an id lingers until that id is
//! seen once).
//!
//! # Overload and deadline safety
//!
//! Any request may carry a `deadlineMs` param: a monotonic [`Deadline`]
//! armed when the request registers (so queue wait counts against it)
//! and polled by the compile pipeline and every prover engine alongside
//! the stop flag. Expiry answers `DEADLINE_EXCEEDED` (`-32003`) with
//! partial progress in `error.data`. Heavy methods (`compile`,
//! `diagnostics`, `prove`) pass through a bounded admission gate on the
//! serve loop — beyond `max_concurrency` running plus `max_queue`
//! waiting, requests are shed immediately with `OVERLOADED` (`-32004`)
//! and a `retryAfterMs` hint, so the daemon answers fast even when it
//! cannot answer yes. A watchdog thread raises the stop flag of any
//! worker that overruns its deadline by the configured grace, and the
//! `health` method exposes the counters ([`ServiceStats`]) that make
//! all of this observable.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use anvil_core::fault::{FaultKind, FaultPlan};
use anvil_core::{CacheStats, CompileError, Deadline, Session};
use anvil_rtl::{Expr, Module};
use anvil_syntax::WireDiagnostic;
use anvil_verify::{
    prove_portfolio, render_trace, revalidate_certificate, ProveResult, ProveStats, Prover,
};

use crate::gate::{Admission, AdmissionGate, ServiceConfig, ServiceCounters, ServiceStats};
use crate::json::Json;
use crate::proto::{
    self, error_response, notification, parse_incoming, Incoming, RpcError, COMPILE_FAILED,
    DEADLINE_EXCEEDED, FILE_NOT_OPEN, INTERNAL_ERROR, METHOD_NOT_FOUND, OVERLOADED, PROVE_FAILED,
    REQUEST_CANCELLED,
};

/// Wire-protocol version reported by `ping`.
pub const PROTOCOL_VERSION: i64 = 1;

/// How often the serve-loop watchdog scans the in-flight table.
const WATCHDOG_TICK_MS: u64 = 10;

/// Span cap for `trace: true` responses: a prove request can record
/// tens of thousands of SAT-level spans; the response keeps the
/// earliest (coarsest) ones and flags `spanTreeTruncated`.
const MAX_TRACE_SPANS: usize = 4096;

/// One open file: the registry holds full-text versioned buffers (the
/// `sus-compiler`-style `add_file`/`update_file` model — full-text
/// replacement, no incremental deltas; the fingerprint cache already
/// makes an unchanged-proc recompile free, so deltas would only save
/// wire bytes).
struct FileEntry {
    text: Arc<String>,
    version: i64,
}

/// One in-flight (or pre-cancelled) request: its stop flag, its armed
/// deadline, and what the watchdog needs to spot an overdue worker.
struct Inflight {
    stop: Arc<AtomicBool>,
    deadline: Deadline,
    method: String,
    /// The watchdog raises each overdue request's flag once, not every
    /// scan tick.
    watchdog_hit: bool,
}

impl Inflight {
    fn new(method: &str, deadline: Deadline) -> Inflight {
        Inflight {
            stop: Arc::new(AtomicBool::new(false)),
            deadline,
            method: method.to_string(),
            watchdog_hit: false,
        }
    }
}

/// The persistent compile service behind `anvild`.
///
/// Owns the shared [`Session`], the file registry, the in-flight
/// request table, and the admission gate. All methods are `&self` and
/// internally synchronised: one service instance serves any number of
/// concurrent connections ([`CompileService::serve`] is `&self` too).
pub struct CompileService {
    session: Session,
    config: ServiceConfig,
    gate: AdmissionGate,
    counters: ServiceCounters,
    files: Mutex<HashMap<String, FileEntry>>,
    /// In-flight (or pre-cancelled) requests, keyed by the compact
    /// serialization of the request id.
    inflight: Mutex<HashMap<String, Inflight>>,
    shutdown: AtomicBool,
    /// Installed fault plan for the `server.dispatch` chaos seam; the
    /// armed flag keeps the uninstalled fast path at one relaxed load.
    faults: Mutex<Option<Arc<FaultPlan>>>,
    faults_armed: AtomicBool,
}

impl Default for CompileService {
    fn default() -> Self {
        CompileService::new()
    }
}

impl CompileService {
    /// A service over a fresh default [`Session`].
    pub fn new() -> CompileService {
        CompileService::with_session(Session::new())
    }

    /// A service over a configured session (options, externs, cache
    /// capacity) with default service limits.
    pub fn with_session(session: Session) -> CompileService {
        CompileService::with_config(session, ServiceConfig::default())
    }

    /// A service with explicit overload / deadline / watchdog tunables.
    pub fn with_config(session: Session, config: ServiceConfig) -> CompileService {
        let gate = AdmissionGate::new(config.max_concurrency, config.max_queue);
        CompileService {
            session,
            config,
            gate,
            counters: ServiceCounters::new(),
            files: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            faults: Mutex::new(None),
            faults_armed: AtomicBool::new(false),
        }
    }

    /// The shared session (tests inspect its cache stats directly).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The service limits this instance runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Number of files currently open in the registry.
    pub fn open_files(&self) -> usize {
        self.lock_files().len()
    }

    /// A snapshot of the operational counters the `health` method
    /// reports.
    pub fn service_stats(&self) -> ServiceStats {
        let (in_flight, queued) = self.gate.gauges();
        ServiceStats {
            uptime_ms: self.counters.uptime_ms(),
            in_flight,
            queued,
            requests: self.counters.requests.get(),
            shed: self.counters.shed.get(),
            deadline_expired: self.counters.deadline_expired.get(),
            watchdog_fired: self.counters.watchdog_fired.get(),
            panics_recovered: self.counters.panics_recovered.get(),
            cancelled: self.counters.cancelled.get(),
            completed: self.counters.completed.get(),
        }
    }

    /// The metrics registry every stat surface reads from: the service
    /// counters live in it, traced requests fold their span durations
    /// into it, and `health` / `cacheStats` / `metrics` / the
    /// Prometheus exposition are all views of one
    /// [`anvil_trace::Snapshot`] of it.
    pub fn metrics_registry(&self) -> &Arc<anvil_trace::Registry> {
        self.counters.registry()
    }

    /// Syncs the gauges derived from other subsystems (query-cache
    /// stage counters, hit rate, gate occupancy, open files, uptime)
    /// into the registry, then snapshots it.
    fn refreshed_snapshot(&self) -> anvil_trace::Snapshot {
        let reg = self.counters.registry();
        let stats = self.session.cache_stats();
        for (name, c) in [
            ("check", stats.check),
            ("opt_ir", stats.opt_ir),
            ("lower", stats.lower),
            ("emit", stats.emit),
            ("aig", stats.aig),
            ("proof", stats.proof),
        ] {
            reg.gauge(&format!("anvild_cache_{name}_hits"))
                .set(c.hits as f64);
            reg.gauge(&format!("anvild_cache_{name}_misses"))
                .set(c.misses as f64);
            reg.gauge(&format!("anvild_cache_{name}_evictions"))
                .set(c.evictions as f64);
        }
        let (hits, misses) = (stats.hits(), stats.misses());
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        reg.gauge("anvild_cache_hits").set(hits as f64);
        reg.gauge("anvild_cache_misses").set(misses as f64);
        reg.gauge("anvild_cache_evictions")
            .set(stats.evictions() as f64);
        reg.gauge("anvild_cache_poisoned")
            .set(stats.poisoned as f64);
        reg.gauge("anvild_cache_hit_rate").set(rate);
        let (in_flight, queued) = self.gate.gauges();
        reg.gauge("anvild_in_flight").set(in_flight as f64);
        reg.gauge("anvild_queued").set(queued as f64);
        reg.gauge("anvild_open_files").set(self.open_files() as f64);
        reg.gauge("anvild_uptime_ms")
            .set(self.counters.uptime_ms() as f64);
        reg.snapshot()
    }

    /// The Prometheus-style text exposition (`anvild --metrics-socket`
    /// serves exactly this string per connection).
    pub fn metrics_text(&self) -> String {
        self.refreshed_snapshot();
        self.counters.registry().render_prometheus()
    }

    /// Installs (or clears) a fault plan on the dispatch seam *and* the
    /// underlying session/cache seams. Chaos-test infrastructure.
    #[doc(hidden)]
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        self.session.set_fault_plan(plan.clone());
        self.faults_armed.store(plan.is_some(), Ordering::Relaxed);
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = plan;
    }

    /// The `server.dispatch` fault seam: panics unwind into `handle`'s
    /// `catch_unwind`, stalls clog a worker slot (exercising admission
    /// shedding and the watchdog), shard poison delegates to the
    /// session's recovery path.
    fn fault_point(&self, op: &str) {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return;
        }
        let kind = self
            .faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .and_then(|plan| plan.take(op));
        match kind {
            Some(FaultKind::Panic) => panic!("injected fault: panic at {op}"),
            Some(FaultKind::Stall(d)) => std::thread::sleep(d),
            Some(FaultKind::PoisonShard) => self.session.poison_cache_shard_for_tests(0),
            Some(FaultKind::MalformedFrame) | None => {}
        }
    }

    fn lock_files(&self) -> std::sync::MutexGuard<'_, HashMap<String, FileEntry>> {
        // Service mutexes never stay poisoned: state is a plain map a
        // panicked handler cannot leave half-updated mid-operation.
        self.files.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, HashMap<String, Inflight>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The deadline a request runs under: explicit `deadlineMs` param,
    /// else the configured default, else none.
    fn request_deadline(&self, params: &Json) -> Result<Deadline, RpcError> {
        match int_param(params, "deadlineMs")? {
            Some(ms) if ms < 0 => Err(RpcError::invalid_params("deadlineMs must be >= 0")),
            Some(ms) => Ok(Deadline::in_ms(ms as u64)),
            None => Ok(self
                .config
                .default_deadline_ms
                .map_or(Deadline::none(), Deadline::in_ms)),
        }
    }

    /// Registers (or adopts a pre-cancelled / pre-registered) in-flight
    /// entry for a request id and returns its stop flag plus the armed
    /// deadline. Registration is idempotent: the serve loop registers
    /// *before* spawning the worker (arming the deadline so queue wait
    /// counts), `handle` re-registers and adopts the already-armed
    /// deadline.
    fn register(&self, id: &Json, method: &str, deadline: Deadline) -> (Arc<AtomicBool>, Deadline) {
        let mut inflight = self.lock_inflight();
        let entry = inflight
            .entry(id.to_string())
            .or_insert_with(|| Inflight::new(method, deadline));
        if entry.method.is_empty() {
            entry.method = method.to_string();
        }
        if entry.deadline.is_none() {
            entry.deadline = deadline;
        }
        (Arc::clone(&entry.stop), entry.deadline)
    }

    fn unregister(&self, id: &Json) {
        self.lock_inflight().remove(&id.to_string());
    }

    /// One watchdog pass: raises the stop flag of every in-flight
    /// request past its deadline by more than the configured grace (once
    /// per request), returning how many flags were raised. The serve
    /// loop runs this on a timer; tests can call it directly.
    #[doc(hidden)]
    pub fn watchdog_scan(&self) -> usize {
        let grace = Duration::from_millis(self.config.watchdog_grace_ms);
        let mut fired = 0;
        for entry in self.lock_inflight().values_mut() {
            if !entry.watchdog_hit && entry.deadline.expired_by(grace) {
                entry.stop.store(true, Ordering::Relaxed);
                entry.watchdog_hit = true;
                fired += 1;
            }
        }
        if fired > 0 {
            self.counters.watchdog_fired.add(fired as u64);
        }
        fired
    }

    /// The `OVERLOADED` shed response, with a `retryAfterMs` hint scaled
    /// from the service-time EWMA and the current queue depth.
    fn overloaded_error(&self) -> RpcError {
        let (_, queued) = self.gate.gauges();
        let per_ms = (self.counters.ewma_service_micros() / 1000).max(10);
        let hint = (per_ms * (queued as u64 + 1) / self.config.max_concurrency.max(1) as u64)
            .clamp(10, 10_000);
        RpcError::new(OVERLOADED, "server overloaded; request shed")
            .with_data(Json::obj([("retryAfterMs", Json::int(hint as i64))]))
    }

    /// Handles one frame, invoking `notify` for every server→client
    /// notification streamed while the request runs, and returning the
    /// response frame (`None` for notifications, which get no response).
    ///
    /// This is the transport-independent core: [`CompileService::serve`]
    /// calls it from the socket loop (behind the admission gate), tests
    /// call it directly (no admission — `handle` never sheds).
    pub fn handle(&self, msg: Incoming, notify: &mut dyn FnMut(Json)) -> Option<Json> {
        self.handle_admitted(msg, notify, None)
    }

    /// [`CompileService::handle`] with admission context from the serve
    /// loop: when the request passed the gate, `queue_wait` carries
    /// `(enqueued, started)` instants so a traced request's tree shows
    /// its gate admission / queue wait ahead of the dispatch work.
    pub fn handle_admitted(
        &self,
        msg: Incoming,
        notify: &mut dyn FnMut(Json),
        queue_wait: Option<(Instant, Instant)>,
    ) -> Option<Json> {
        let id = msg.id.clone();
        let heavy = is_heavy(&msg.method);
        let started = Instant::now();
        self.counters.requests.inc();
        // Per-request tracing: `trace: true` on any request with an id
        // opens a capture for the duration of the dispatch and returns
        // the stitched span tree in the response.
        let want_trace =
            id.is_some() && msg.params.get("trace").and_then(Json::as_bool) == Some(true);
        let trace_ctx = if want_trace {
            let capture = anvil_trace::Capture::start();
            let root = anvil_trace::span("anvild", "request").detail_with(|| msg.method.clone());
            if let Some((enqueued, dequeued)) = queue_wait {
                anvil_trace::record_manual("anvild", "gate.wait", root.id(), enqueued, dequeued);
            }
            Some((capture, root))
        } else {
            None
        };
        let result = match self.request_deadline(&msg.params) {
            Err(e) => Err(e),
            Ok(deadline) => {
                let registered = id
                    .as_ref()
                    .map(|id| self.register(id, &msg.method, deadline));
                let (stop, deadline) = match &registered {
                    Some((stop, armed)) => (Some(stop), *armed),
                    None => (None, deadline),
                };
                // A panicking handler must answer *this* request with an
                // error, not unwind through the serve loop: panic-safety
                // is the whole point of a multi-tenant daemon.
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let _sp =
                        anvil_trace::span("anvild", "dispatch").detail_with(|| msg.method.clone());
                    self.dispatch(&msg, stop, deadline, notify)
                }))
                .unwrap_or_else(|payload| {
                    self.counters.panics_recovered.inc();
                    Err(RpcError::new(
                        INTERNAL_ERROR,
                        format!("request handler panicked: {}", panic_message(&payload)),
                    ))
                })
            }
        };
        if let Some(id) = &id {
            self.unregister(id);
        }
        if let Err(err) = &result {
            let counter = match err.code {
                DEADLINE_EXCEEDED => Some(&self.counters.deadline_expired),
                REQUEST_CANCELLED => Some(&self.counters.cancelled),
                _ => None,
            };
            if let Some(counter) = counter {
                counter.inc();
            }
        }
        self.counters.completed.inc();
        if heavy {
            self.counters
                .observe_service_micros(started.elapsed().as_micros() as u64);
        }
        // Close the capture after the request is fully accounted: the
        // span durations feed the same registry the `metrics` method
        // reads, so a traced request's tree and its histogram increments
        // always agree.
        let trace_json = trace_ctx.map(|(capture, root)| {
            let root_id = root.id();
            drop(root);
            let mut records = capture.finish();
            self.counters.registry().observe_spans(&records);
            let truncated = records.len() > MAX_TRACE_SPANS;
            if truncated {
                // Records are start-sorted; the root and the request's
                // coarse phases come first, inner-loop spans fall off.
                records.truncate(MAX_TRACE_SPANS);
            }
            (anvil_trace::subtree(&records, root_id), truncated)
        });
        match (id, result) {
            (Some(id), Ok(mut result)) => {
                if let Some((Some(tree), truncated)) = trace_json {
                    if let Json::Obj(map) = &mut result {
                        // `spanTree`, not `trace`: falsified prove
                        // responses already use `trace` for the
                        // rendered counterexample.
                        map.insert("spanTree".to_string(), span_tree_json(&tree));
                        if truncated {
                            map.insert("spanTreeTruncated".to_string(), Json::Bool(true));
                        }
                    }
                }
                Some(proto::response(&id, result))
            }
            (Some(id), Err(err)) => Some(error_response(Some(&id), &err)),
            (None, _) => None,
        }
    }

    fn dispatch(
        &self,
        msg: &Incoming,
        stop: Option<&Arc<AtomicBool>>,
        deadline: Deadline,
        notify: &mut dyn FnMut(Json),
    ) -> Result<Json, RpcError> {
        if is_heavy(&msg.method) {
            self.fault_point("server.dispatch");
            // A deadline that expired while the request waited in the
            // admission queue (or before it was read) fails fast without
            // burning a worker slot on doomed work.
            if deadline.expired() {
                return Err(RpcError::new(
                    DEADLINE_EXCEEDED,
                    format!("deadline expired before `{}` started", msg.method),
                ));
            }
        }
        match msg.method.as_str() {
            "ping" => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("service", Json::str("anvild")),
                ("protocol", Json::int(PROTOCOL_VERSION)),
            ])),
            "open" => self.open(&msg.params),
            "update" => self.update(&msg.params),
            "close" => self.close(&msg.params),
            "compile" => self.compile(&msg.params, stop, deadline, notify),
            "diagnostics" => self.diagnostics(&msg.params, notify),
            "prove" => self.prove(&msg.params, stop, deadline, notify),
            "cacheStats" => Ok(self.cache_stats_json()),
            "health" => Ok(self.health_json()),
            "metrics" => Ok(self.metrics_json()),
            "cancel" => self.cancel(&msg.params),
            "shutdown" => self.shutdown(&msg.params),
            other => Err(RpcError::new(
                METHOD_NOT_FOUND,
                format!("unknown method `{other}`"),
            )),
        }
    }

    /// `shutdown` with `mode: "drain"` (default) stops accepting new
    /// frames but lets in-flight work finish; `mode: "abort"` also
    /// raises every in-flight stop flag so workers wind down at their
    /// next cancellation poll.
    fn shutdown(&self, params: &Json) -> Result<Json, RpcError> {
        let mode = match params.get("mode").and_then(Json::as_str) {
            None => "drain",
            Some(m @ ("drain" | "abort")) => m,
            Some(other) => {
                return Err(RpcError::invalid_params(format!(
                    "unknown shutdown mode `{other}` (expected `drain` or `abort`)"
                )))
            }
        };
        if mode == "abort" {
            for entry in self.lock_inflight().values() {
                entry.stop.store(true, Ordering::Relaxed);
            }
        }
        self.shutdown.store(true, Ordering::SeqCst);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("mode", Json::str(mode)),
        ]))
    }

    fn open(&self, params: &Json) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let text = str_param(params, "text")?;
        let version = int_param(params, "version")?.unwrap_or(1);
        self.lock_files().insert(
            uri.to_string(),
            FileEntry {
                text: Arc::new(text.to_string()),
                version,
            },
        );
        Ok(Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
        ]))
    }

    fn update(&self, params: &Json) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let text = str_param(params, "text")?;
        let version = int_param(params, "version")?;
        let mut files = self.lock_files();
        let entry = files.get_mut(uri).ok_or_else(|| not_open(uri))?;
        let version = version.unwrap_or(entry.version + 1);
        if version <= entry.version {
            return Err(RpcError::invalid_params(format!(
                "version must increase: got {version}, have {}",
                entry.version
            )));
        }
        entry.text = Arc::new(text.to_string());
        entry.version = version;
        Ok(Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
        ]))
    }

    fn close(&self, params: &Json) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        match self.lock_files().remove(uri) {
            Some(_) => Ok(Json::obj([("ok", Json::Bool(true))])),
            None => Err(not_open(uri)),
        }
    }

    /// A point-in-time snapshot of an open buffer (compiles run outside
    /// the registry lock; a concurrent `update` produces a new `Arc`,
    /// never mutates the one being compiled).
    fn snapshot(&self, uri: &str) -> Result<(Arc<String>, i64), RpcError> {
        let files = self.lock_files();
        let entry = files.get(uri).ok_or_else(|| not_open(uri))?;
        Ok((Arc::clone(&entry.text), entry.version))
    }

    fn compile(
        &self,
        params: &Json,
        stop: Option<&Arc<AtomicBool>>,
        deadline: Deadline,
        notify: &mut dyn FnMut(Json),
    ) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let (text, version) = self.snapshot(uri)?;
        // Chaos hook: a config-gated stall *inside* the worker slot, so
        // harnesses can clog the gate deterministically without counting
        // pipeline-internal fault occurrences.
        if self.config.chaos {
            if let Some(ms) = int_param(params, "chaosStallMs")? {
                std::thread::sleep(Duration::from_millis(ms.max(0) as u64));
            }
        }
        let before = self.session.cache_stats();
        let result =
            self.session
                .compile_with_deadline(&text, stop.map(|flag| flag.as_ref()), deadline);
        let delta = self.session.cache_stats() - before;
        match result {
            Ok(out) => {
                // A clean compile clears the file's diagnostics.
                notify(diagnostics_notification(uri, version, &[]));
                Ok(Json::obj([
                    ("uri", Json::str(uri)),
                    ("version", Json::int(version)),
                    ("systemverilog", Json::str(out.systemverilog)),
                    ("modules", Json::int(out.modules.iter().count() as i64)),
                    (
                        "passStats",
                        Json::obj([
                            ("parseUs", Json::int(out.stats.parse.as_micros() as i64)),
                            ("checkUs", Json::int(out.stats.check.as_micros() as i64)),
                            (
                                "optimizeUs",
                                Json::int(out.stats.optimize.as_micros() as i64),
                            ),
                            ("codegenUs", Json::int(out.stats.codegen.as_micros() as i64)),
                            ("emitUs", Json::int(out.stats.emit.as_micros() as i64)),
                            ("eventsBefore", Json::int(out.stats.events_before as i64)),
                            ("eventsAfter", Json::int(out.stats.events_after as i64)),
                        ]),
                    ),
                    ("cacheDelta", cache_delta_json(&delta)),
                ]))
            }
            Err(e) => {
                let err = compile_failure(&e, &text, uri, version, notify);
                if err.code == DEADLINE_EXCEEDED {
                    // Partial progress: the cache delta shows how many
                    // artifacts the expired compile still banked — a
                    // retry resumes warm from exactly there.
                    return Err(err.with_data(Json::obj([
                        ("uri", Json::str(uri)),
                        ("cacheDelta", cache_delta_json(&delta)),
                    ])));
                }
                Err(err)
            }
        }
    }

    fn diagnostics(&self, params: &Json, notify: &mut dyn FnMut(Json)) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let (text, version) = self.snapshot(uri)?;
        let diags = match self.session.check(&text) {
            Ok((_, reports)) => {
                let errors: Vec<_> = reports
                    .values()
                    .flat_map(|r| r.errors().into_iter().cloned())
                    .collect();
                if errors.is_empty() {
                    Vec::new()
                } else {
                    CompileError::TimingUnsafe(errors).wire_diagnostics(&text)
                }
            }
            Err(e) => e.wire_diagnostics(&text),
        };
        notify(diagnostics_notification(uri, version, &diags));
        Ok(Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
            ("count", Json::int(diags.len() as i64)),
        ]))
    }

    fn prove(
        &self,
        params: &Json,
        stop: Option<&Arc<AtomicBool>>,
        deadline: Deadline,
        notify: &mut dyn FnMut(Json),
    ) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let signal = str_param(params, "signal")?;
        let max_k = int_param(params, "maxK")?.unwrap_or(16).max(0) as usize;
        let (text, version) = self.snapshot(uri)?;

        // Resolve the top process: explicit `top`, else the file's only
        // proc (the same rule the anvilc CLI uses).
        let top = match params.get("top").and_then(Json::as_str) {
            Some(t) => t.to_string(),
            None => {
                let program = self
                    .session
                    .parse(&text)
                    .map_err(|e| compile_failure(&e, &text, uri, version, notify))?;
                match program.procs.as_slice() {
                    [only] => only.name.clone(),
                    procs => {
                        return Err(RpcError::invalid_params(format!(
                            "{} processes in `{uri}`; pick one with `top` (candidates: {})",
                            procs.len(),
                            procs
                                .iter()
                                .map(|p| p.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )))
                    }
                }
            }
        };

        let circuit = self
            .session
            .compile_flat_aig(&text, &top)
            .map_err(|e| compile_failure(&e, &text, uri, version, notify))?;
        let module = circuit.module();
        let Some(sig) = module.find(signal) else {
            return Err(RpcError::invalid_params(format!(
                "no signal `{signal}` in flattened `{top}` (signals: {})",
                module
                    .iter_signals()
                    .map(|(_, s)| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        };
        let assertion = Expr::Signal(sig);

        // ---- Proof cache: fingerprint-keyed certificates. ----
        // A hit is *revalidated* against the current circuit (one
        // incremental SAT session — no invariant search, no optimization
        // pipeline) rather than trusted blindly; a certificate that fails
        // its check falls through to the cold path below.
        let proof_key = self.session.proof_key(&text, &top, signal).ok().flatten();
        if let Some(key) = proof_key {
            if let Some(cert) = self.session.cached_proof(key) {
                if let Ok(Some(result)) = revalidate_certificate(&circuit, &assertion, &cert) {
                    return Ok(prove_response(
                        uri,
                        version,
                        signal,
                        &result,
                        "cache",
                        Some(cert.engine),
                        None,
                        module,
                        &assertion,
                    ));
                }
            }
        }

        // ---- Cold path: the cooperating portfolio. ----
        let out = prove_portfolio(
            circuit.module(),
            &assertion,
            max_k,
            max_k.max(8),
            100_000,
            3,
            stop.map(Arc::clone),
            deadline,
        )
        .map_err(|e| RpcError::new(PROVE_FAILED, e.to_string()))?;
        // An expired deadline wins over a raised stop flag: the watchdog
        // raises flags *because* deadlines expired, and the client should
        // see -32003 with partial progress, not a bare cancellation.
        if deadline.expired() {
            if let ProveResult::Unknown { depth } = out.result {
                let (engine, conflicts) = if out.pdr_stats.conflicts >= out.symbolic_stats.conflicts
                {
                    ("pdr", out.pdr_stats.conflicts)
                } else {
                    ("symbolic", out.symbolic_stats.conflicts)
                };
                return Err(
                    RpcError::new(DEADLINE_EXCEEDED, "prove deadline exceeded").with_data(
                        Json::obj([
                            ("verdict", Json::str("unknown")),
                            ("depthReached", Json::int(depth as i64)),
                            ("engine", Json::str(engine)),
                            ("conflicts", Json::int(conflicts as i64)),
                        ]),
                    ),
                );
            }
        }
        let cancelled = stop.is_some_and(|flag| flag.load(Ordering::Relaxed))
            && matches!(out.result, ProveResult::Unknown { .. });
        if cancelled {
            return Err(RpcError::new(REQUEST_CANCELLED, "prove cancelled"));
        }
        if let (Some(key), Some(cert)) = (proof_key, &out.certificate) {
            self.session.store_proof(key, Arc::new(cert.clone()));
        }
        let engine = match out.winner {
            Some(Prover::Symbolic) => "symbolic",
            Some(Prover::Pdr) => "pdr",
            Some(Prover::ExplicitState) => "explicit",
            None => "none",
        };
        let stats = match out.winner {
            Some(Prover::Pdr) => out.pdr_stats,
            _ => out.symbolic_stats,
        };
        Ok(prove_response(
            uri,
            version,
            signal,
            &out.result,
            engine,
            None,
            Some(&stats),
            module,
            &assertion,
        ))
    }

    fn cache_stats_json(&self) -> Json {
        let snap = self.refreshed_snapshot();
        let g = |name: &str| Json::int(snap.gauge(name).unwrap_or(0.0) as i64);
        let stage = |name: &str| {
            Json::obj([
                ("hits", g(&format!("anvild_cache_{name}_hits"))),
                ("misses", g(&format!("anvild_cache_{name}_misses"))),
                ("evictions", g(&format!("anvild_cache_{name}_evictions"))),
            ])
        };
        Json::obj([
            ("check", stage("check")),
            ("optIr", stage("opt_ir")),
            ("lower", stage("lower")),
            ("emit", stage("emit")),
            ("aig", stage("aig")),
            ("proof", stage("proof")),
            ("poisoned", g("anvild_cache_poisoned")),
            (
                "totals",
                Json::obj([
                    ("hits", g("anvild_cache_hits")),
                    ("misses", g("anvild_cache_misses")),
                    ("evictions", g("anvild_cache_evictions")),
                ]),
            ),
            ("openFiles", g("anvild_open_files")),
        ])
    }

    /// The `health` response: uptime, gate gauges, the monotonic
    /// robustness counters, plus the cache hit-rate and service-time
    /// EWMA gauges — all read from one registry snapshot, the same one
    /// `cacheStats` and `metrics` serve.
    fn health_json(&self) -> Json {
        let snap = self.refreshed_snapshot();
        let c = |name: &str| Json::int(snap.counter(name).unwrap_or(0) as i64);
        let g = |name: &str| Json::int(snap.gauge(name).unwrap_or(0.0) as i64);
        Json::obj([
            ("ok", Json::Bool(true)),
            ("uptimeMs", g("anvild_uptime_ms")),
            ("inFlight", g("anvild_in_flight")),
            ("queued", g("anvild_queued")),
            ("requests", c("anvild_requests_total")),
            ("completed", c("anvild_completed_total")),
            ("shed", c("anvild_shed_total")),
            ("deadlineExpired", c("anvild_deadline_expired_total")),
            ("watchdogFired", c("anvild_watchdog_fired_total")),
            ("panicsRecovered", c("anvild_panics_recovered_total")),
            ("cancelled", c("anvild_cancelled_total")),
            (
                "cacheHitRate",
                Json::Num(snap.gauge("anvild_cache_hit_rate").unwrap_or(0.0)),
            ),
            (
                "ewmaServiceMs",
                Json::Num(snap.gauge("anvild_ewma_service_ms").unwrap_or(0.0)),
            ),
            (
                "maxConcurrency",
                Json::int(self.config.max_concurrency as i64),
            ),
            ("maxQueue", Json::int(self.config.max_queue as i64)),
            ("openFiles", g("anvild_open_files")),
        ])
    }

    /// The `metrics` response: the full registry snapshot — counters,
    /// gauges, and histogram summaries (count / sum / p50 / p90 / p99,
    /// microseconds for `_us` instruments).
    fn metrics_json(&self) -> Json {
        let snap = self.refreshed_snapshot();
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::int(*v as i64)))
                .collect(),
        );
        let gauges = Json::Obj(
            snap.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        Json::obj([
                            ("count", Json::int(h.count as i64)),
                            ("sum", Json::int(h.sum as i64)),
                            ("p50", Json::int(h.p50 as i64)),
                            ("p90", Json::int(h.p90 as i64)),
                            ("p99", Json::int(h.p99 as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    fn cancel(&self, params: &Json) -> Result<Json, RpcError> {
        let id = params
            .get("id")
            .filter(|id| matches!(id, Json::Str(_) | Json::Num(_)))
            .ok_or_else(|| RpcError::invalid_params("cancel needs a string or number `id`"))?;
        let mut inflight = self.lock_inflight();
        let inflight_now = inflight.contains_key(&id.to_string());
        // Raise the flag; for an id not yet seen, pre-raise it so the
        // request observes cancellation the moment it arrives.
        inflight
            .entry(id.to_string())
            .or_insert_with(|| Inflight::new("", Deadline::none()))
            .stop
            .store(true, Ordering::Relaxed);
        Ok(Json::obj([
            ("id", id.clone()),
            ("inflight", Json::Bool(inflight_now)),
        ]))
    }

    /// Serves one connection: newline-delimited JSON-RPC frames from
    /// `reader`, responses and notifications to `writer`.
    ///
    /// Registry and control methods (`open`, `update`, `close`,
    /// `cancel`, `cacheStats`, `health`, `ping`, `shutdown`) are handled
    /// inline on the read loop — they are cheap and their order matters,
    /// and they bypass admission so liveness probes work even with every
    /// worker slot wedged. Heavy requests (`compile`, `diagnostics`,
    /// `prove`) pass the admission gate: run or queue on scoped worker
    /// threads (so the loop keeps reading — that is what lets a `cancel`
    /// frame reach an in-flight compile), or shed immediately with
    /// `OVERLOADED` when the queue is full. Responses may therefore
    /// arrive out of order; clients match on `id`.
    ///
    /// A watchdog thread scans the in-flight table every few
    /// milliseconds, raising the stop flag of any worker past its
    /// deadline by more than the configured grace.
    ///
    /// Returns when the peer disconnects or after a `shutdown` request
    /// (`drain` mode finishes in-flight work first; the scope join
    /// guarantees no worker outlives the loop either way).
    ///
    /// # Errors
    ///
    /// Propagates read errors from the transport; write failures are
    /// swallowed (a vanished client is not a server error).
    pub fn serve<R, W>(&self, reader: R, writer: W) -> std::io::Result<()>
    where
        R: BufRead,
        W: Write + Send,
    {
        let out = Mutex::new(writer);
        let send = |frame: &Json| {
            let mut w = out.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writeln!(w, "{frame}");
            let _ = w.flush();
        };
        let conn_done = AtomicBool::new(false);
        std::thread::scope(|scope| -> std::io::Result<()> {
            scope.spawn(|| {
                while !conn_done.load(Ordering::Relaxed) {
                    self.watchdog_scan();
                    std::thread::sleep(Duration::from_millis(WATCHDOG_TICK_MS));
                }
            });
            let result = (|| -> std::io::Result<()> {
                for line in reader.lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    let msg = match parse_incoming(&line) {
                        Ok(msg) => msg,
                        Err(e) => {
                            send(&error_response(None, &e));
                            continue;
                        }
                    };
                    if is_heavy(&msg.method) {
                        match self.gate.try_admit() {
                            Admission::Shed => {
                                self.counters.requests.inc();
                                self.counters.shed.inc();
                                if let Some(id) = &msg.id {
                                    send(&error_response(Some(id), &self.overloaded_error()));
                                }
                            }
                            admission => {
                                // Register the stop flag *before* the
                                // worker starts — a cancel read next
                                // never misses the request — and arm the
                                // deadline so queue wait counts toward it.
                                if let Some(id) = &msg.id {
                                    if let Ok(deadline) = self.request_deadline(&msg.params) {
                                        self.register(id, &msg.method, deadline);
                                    }
                                }
                                let send = &send;
                                let enqueued = Instant::now();
                                scope.spawn(move || {
                                    if admission == Admission::Queued {
                                        self.gate.wait_turn();
                                    }
                                    let admitted = Some((enqueued, Instant::now()));
                                    let frame =
                                        self.handle_admitted(msg, &mut |n| send(&n), admitted);
                                    self.gate.depart();
                                    if let Some(frame) = frame {
                                        send(&frame);
                                    }
                                });
                            }
                        }
                    } else {
                        if let Some(frame) = self.handle(msg, &mut |n| send(&n)) {
                            send(&frame);
                        }
                        if self.is_shut_down() {
                            break;
                        }
                    }
                }
                Ok(())
            })();
            conn_done.store(true, Ordering::Relaxed);
            result
        })
    }
}

/// Whether a method runs on a gated worker thread (long-running) rather
/// than inline on the read loop.
fn is_heavy(method: &str) -> bool {
    matches!(method, "compile" | "diagnostics" | "prove")
}

/// `FILE_NOT_OPEN` for a uri.
fn not_open(uri: &str) -> RpcError {
    RpcError::new(
        FILE_NOT_OPEN,
        format!("`{uri}` is not open; send `open` first"),
    )
    .with_data(Json::obj([("uri", Json::str(uri))]))
}

/// Required string param.
fn str_param<'p>(params: &'p Json, key: &str) -> Result<&'p str, RpcError> {
    params
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| RpcError::invalid_params(format!("missing string param `{key}`")))
}

/// Optional integer param (error if present but not an integer).
fn int_param(params: &Json, key: &str) -> Result<Option<i64>, RpcError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| RpcError::invalid_params(format!("param `{key}` must be an integer"))),
    }
}

/// Builds the `anvil/prove` response object. `engine` names who settled
/// the property (`symbolic` / `pdr` / `explicit` / `cache` / `none`);
/// `cached_engine` names the certificate's original producer on cache
/// hits. `stats` is absent on cache hits — revalidation does not rerun
/// the optimization pipeline, so node counts would be stale guesses.
#[allow(clippy::too_many_arguments)]
fn prove_response(
    uri: &str,
    version: i64,
    signal: &str,
    result: &ProveResult,
    engine: &str,
    cached_engine: Option<&str>,
    stats: Option<&ProveStats>,
    module: &Module,
    assertion: &Expr,
) -> Json {
    let mut fields = vec![
        ("uri", Json::str(uri)),
        ("version", Json::int(version)),
        ("signal", Json::str(signal)),
        ("engine", Json::str(engine)),
    ];
    if let Some(src) = cached_engine {
        fields.push(("cachedEngine", Json::str(src)));
    }
    if let Some(s) = stats {
        fields.push(("aigNodes", Json::int(s.aig_nodes as i64)));
        fields.push(("aigNodesAfterRewrite", Json::int(s.aig_nodes_after as i64)));
        fields.push(("latches", Json::int(s.latches as i64)));
        fields.push(("conflicts", Json::int(s.conflicts as i64)));
        fields.push(("clauses", Json::int(s.clauses as i64)));
        fields.push(("wallMs", Json::int((s.wall_micros / 1000) as i64)));
    }
    match result {
        ProveResult::Proved { k } => {
            fields.push(("verdict", Json::str("proved")));
            fields.push(("k", Json::int(*k as i64)));
        }
        ProveResult::Falsified { depth, trace } => {
            fields.push(("verdict", Json::str("falsified")));
            fields.push(("depth", Json::int(*depth as i64)));
            match render_trace(module, assertion, trace) {
                Ok(rendered) => fields.push(("trace", Json::str(rendered))),
                Err(e) => fields.push(("traceError", Json::str(e.to_string()))),
            }
        }
        ProveResult::Unknown { depth } => {
            fields.push(("verdict", Json::str("unknown")));
            fields.push(("depth", Json::int(*depth as i64)));
        }
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Serializes one traced request's span tree for the wire: `startUs`
/// is relative to the root span's start, so a client can reconstruct
/// the timeline without knowing the daemon's trace epoch.
fn span_tree_json(root: &anvil_trace::SpanNode) -> Json {
    fn node_json(node: &anvil_trace::SpanNode, base_ns: u64) -> Json {
        let rec = &node.record;
        let mut map = std::collections::BTreeMap::new();
        map.insert("cat".to_string(), Json::str(rec.cat));
        map.insert("name".to_string(), Json::str(rec.name));
        map.insert(
            "startUs".to_string(),
            Json::int((rec.start_ns.saturating_sub(base_ns) / 1_000) as i64),
        );
        map.insert("durUs".to_string(), Json::int((rec.dur_ns / 1_000) as i64));
        if let Some(d) = &rec.detail {
            map.insert("detail".to_string(), Json::str(d));
        }
        if !node.children.is_empty() {
            map.insert(
                "children".to_string(),
                Json::Arr(
                    node.children
                        .iter()
                        .map(|c| node_json(c, base_ns))
                        .collect(),
                ),
            );
        }
        Json::Obj(map)
    }
    node_json(root, root.record.start_ns)
}

fn cache_delta_json(delta: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::int(delta.hits() as i64)),
        ("misses", Json::int(delta.misses() as i64)),
        ("evictions", Json::int(delta.evictions() as i64)),
        ("poisoned", Json::int(delta.poisoned as i64)),
    ])
}

/// One wire diagnostic as a JSON value (same field names and shape as
/// [`WireDiagnostic::to_json`]).
fn diagnostic_json(d: &WireDiagnostic) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert("severity".to_string(), Json::str(d.severity.as_str()));
    map.insert("message".to_string(), Json::str(&d.message));
    if let Some(span) = d.span {
        map.insert("start".to_string(), Json::int(span.start as i64));
        map.insert("end".to_string(), Json::int(span.end as i64));
        map.insert("line".to_string(), Json::int(d.line as i64));
        map.insert("col".to_string(), Json::int(d.col as i64));
    }
    Json::Obj(map)
}

/// The `diagnostics` notification frame for a file version (an empty
/// list clears previously streamed diagnostics).
fn diagnostics_notification(uri: &str, version: i64, diags: &[WireDiagnostic]) -> Json {
    notification(
        "diagnostics",
        Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
            (
                "diagnostics",
                Json::Arr(diags.iter().map(diagnostic_json).collect()),
            ),
        ]),
    )
}

/// Converts a compile failure into the wire error, streaming the
/// diagnostics notification as a side effect (cancellation produces
/// [`REQUEST_CANCELLED`], deadline expiry [`DEADLINE_EXCEEDED`]; neither
/// streams diagnostics — the program wasn't fully analyzed).
fn compile_failure(
    e: &CompileError,
    text: &str,
    uri: &str,
    version: i64,
    notify: &mut dyn FnMut(Json),
) -> RpcError {
    if matches!(e, CompileError::Cancelled) {
        return RpcError::new(REQUEST_CANCELLED, "request cancelled");
    }
    if matches!(e, CompileError::DeadlineExceeded) {
        return RpcError::new(DEADLINE_EXCEEDED, "compilation deadline exceeded");
    }
    let diags = e.wire_diagnostics(text);
    notify(diagnostics_notification(uri, version, &diags));
    RpcError::new(
        COMPILE_FAILED,
        format!("compile failed: {} diagnostic(s)", diags.len()),
    )
    .with_data(Json::obj([
        ("rendered", Json::str(e.render(text))),
        (
            "diagnostics",
            Json::Arr(diags.iter().map(diagnostic_json).collect()),
        ),
    ]))
}

/// Renders a caught panic payload.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
