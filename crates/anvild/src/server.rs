//! The compile service: method dispatch, the versioned file registry,
//! request cancellation, and the newline-delimited serve loop.
//!
//! One [`CompileService`] owns one [`Session`] — and therefore one
//! sharded query cache — shared by every request on every connection.
//! A warm `compile` of an unchanged (or whitespace-edited) file is a
//! pure cache hit regardless of which client sends it; the `cacheDelta`
//! member of each compile response makes that observable on the wire.
//!
//! # Crash and cancellation safety
//!
//! Every request handler runs under `catch_unwind`: a panicking compile
//! produces an `internal error` response for *that request* and the
//! daemon keeps serving (the session's cache recovers poisoned shards
//! by itself, see `anvil_core`'s cache docs). Requests carrying an id
//! register a cooperative stop flag keyed by that id; the `cancel`
//! method raises the flag, and [`Session::compile_cancellable`] /
//! the prover poll it at unit boundaries. A `cancel` that arrives
//! before its request pre-raises the flag, so cancelling is never racy
//! from the client's point of view. Ids must not be reused after
//! cancellation (a pre-raised flag for an id lingers until that id is
//! seen once).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use anvil_core::{CacheStats, CompileError, Session, StageCounters};
use anvil_rtl::{Expr, Module};
use anvil_syntax::WireDiagnostic;
use anvil_verify::{
    prove_portfolio, render_trace, revalidate_certificate, ProveResult, ProveStats, Prover,
};

use crate::json::Json;
use crate::proto::{
    self, error_response, notification, parse_incoming, Incoming, RpcError, COMPILE_FAILED,
    FILE_NOT_OPEN, INTERNAL_ERROR, METHOD_NOT_FOUND, PROVE_FAILED, REQUEST_CANCELLED,
};

/// Wire-protocol version reported by `ping`.
pub const PROTOCOL_VERSION: i64 = 1;

/// One open file: the registry holds full-text versioned buffers (the
/// `sus-compiler`-style `add_file`/`update_file` model — full-text
/// replacement, no incremental deltas; the fingerprint cache already
/// makes an unchanged-proc recompile free, so deltas would only save
/// wire bytes).
struct FileEntry {
    text: Arc<String>,
    version: i64,
}

/// The persistent compile service behind `anvild`.
///
/// Owns the shared [`Session`], the file registry, and the in-flight
/// request table. All methods are `&self` and internally synchronised:
/// one service instance serves any number of concurrent connections
/// ([`CompileService::serve`] is `&self` too).
pub struct CompileService {
    session: Session,
    files: Mutex<HashMap<String, FileEntry>>,
    /// Stop flags for in-flight (or pre-cancelled) requests, keyed by
    /// the compact serialization of the request id.
    inflight: Mutex<HashMap<String, Arc<AtomicBool>>>,
    shutdown: AtomicBool,
}

impl Default for CompileService {
    fn default() -> Self {
        CompileService::new()
    }
}

impl CompileService {
    /// A service over a fresh default [`Session`].
    pub fn new() -> CompileService {
        CompileService::with_session(Session::new())
    }

    /// A service over a configured session (options, externs, cache
    /// capacity).
    pub fn with_session(session: Session) -> CompileService {
        CompileService {
            session,
            files: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The shared session (tests inspect its cache stats directly).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Number of files currently open in the registry.
    pub fn open_files(&self) -> usize {
        self.lock_files().len()
    }

    fn lock_files(&self) -> std::sync::MutexGuard<'_, HashMap<String, FileEntry>> {
        // Service mutexes never stay poisoned: state is a plain map a
        // panicked handler cannot leave half-updated mid-operation.
        self.files.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<AtomicBool>>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or adopts a pre-cancelled) stop flag for a request id.
    fn register(&self, id: &Json) -> Arc<AtomicBool> {
        self.lock_inflight()
            .entry(id.to_string())
            .or_default()
            .clone()
    }

    fn unregister(&self, id: &Json) {
        self.lock_inflight().remove(&id.to_string());
    }

    /// Handles one frame, invoking `notify` for every server→client
    /// notification streamed while the request runs, and returning the
    /// response frame (`None` for notifications, which get no response).
    ///
    /// This is the transport-independent core: [`CompileService::serve`]
    /// calls it from the socket loop, tests call it directly.
    pub fn handle(&self, msg: Incoming, notify: &mut dyn FnMut(Json)) -> Option<Json> {
        let id = msg.id.clone();
        let stop = id.as_ref().map(|id| self.register(id));
        // A panicking handler must answer *this* request with an error,
        // not unwind through the serve loop: panic-safety is the whole
        // point of a multi-tenant daemon.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.dispatch(&msg, stop.as_ref(), notify)
        }))
        .unwrap_or_else(|payload| {
            Err(RpcError::new(
                INTERNAL_ERROR,
                format!("request handler panicked: {}", panic_message(&payload)),
            ))
        });
        if let Some(id) = &id {
            self.unregister(id);
        }
        match (id, result) {
            (Some(id), Ok(result)) => Some(proto::response(&id, result)),
            (Some(id), Err(err)) => Some(error_response(Some(&id), &err)),
            (None, _) => None,
        }
    }

    fn dispatch(
        &self,
        msg: &Incoming,
        stop: Option<&Arc<AtomicBool>>,
        notify: &mut dyn FnMut(Json),
    ) -> Result<Json, RpcError> {
        match msg.method.as_str() {
            "ping" => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("service", Json::str("anvild")),
                ("protocol", Json::int(PROTOCOL_VERSION)),
            ])),
            "open" => self.open(&msg.params),
            "update" => self.update(&msg.params),
            "close" => self.close(&msg.params),
            "compile" => self.compile(&msg.params, stop, notify),
            "diagnostics" => self.diagnostics(&msg.params, notify),
            "prove" => self.prove(&msg.params, stop, notify),
            "cacheStats" => Ok(self.cache_stats_json()),
            "cancel" => self.cancel(&msg.params),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                // Raise every in-flight flag so workers wind down fast.
                for flag in self.lock_inflight().values() {
                    flag.store(true, Ordering::Relaxed);
                }
                Ok(Json::obj([("ok", Json::Bool(true))]))
            }
            other => Err(RpcError::new(
                METHOD_NOT_FOUND,
                format!("unknown method `{other}`"),
            )),
        }
    }

    fn open(&self, params: &Json) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let text = str_param(params, "text")?;
        let version = int_param(params, "version")?.unwrap_or(1);
        self.lock_files().insert(
            uri.to_string(),
            FileEntry {
                text: Arc::new(text.to_string()),
                version,
            },
        );
        Ok(Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
        ]))
    }

    fn update(&self, params: &Json) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let text = str_param(params, "text")?;
        let version = int_param(params, "version")?;
        let mut files = self.lock_files();
        let entry = files.get_mut(uri).ok_or_else(|| not_open(uri))?;
        let version = version.unwrap_or(entry.version + 1);
        if version <= entry.version {
            return Err(RpcError::invalid_params(format!(
                "version must increase: got {version}, have {}",
                entry.version
            )));
        }
        entry.text = Arc::new(text.to_string());
        entry.version = version;
        Ok(Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
        ]))
    }

    fn close(&self, params: &Json) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        match self.lock_files().remove(uri) {
            Some(_) => Ok(Json::obj([("ok", Json::Bool(true))])),
            None => Err(not_open(uri)),
        }
    }

    /// A point-in-time snapshot of an open buffer (compiles run outside
    /// the registry lock; a concurrent `update` produces a new `Arc`,
    /// never mutates the one being compiled).
    fn snapshot(&self, uri: &str) -> Result<(Arc<String>, i64), RpcError> {
        let files = self.lock_files();
        let entry = files.get(uri).ok_or_else(|| not_open(uri))?;
        Ok((Arc::clone(&entry.text), entry.version))
    }

    fn compile(
        &self,
        params: &Json,
        stop: Option<&Arc<AtomicBool>>,
        notify: &mut dyn FnMut(Json),
    ) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let (text, version) = self.snapshot(uri)?;
        let before = self.session.cache_stats();
        let result = match stop {
            Some(flag) => self.session.compile_cancellable(&text, flag),
            None => self.session.compile(&text),
        };
        let delta = self.session.cache_stats() - before;
        match result {
            Ok(out) => {
                // A clean compile clears the file's diagnostics.
                notify(diagnostics_notification(uri, version, &[]));
                Ok(Json::obj([
                    ("uri", Json::str(uri)),
                    ("version", Json::int(version)),
                    ("systemverilog", Json::str(out.systemverilog)),
                    ("modules", Json::int(out.modules.iter().count() as i64)),
                    (
                        "passStats",
                        Json::obj([
                            ("parseUs", Json::int(out.stats.parse.as_micros() as i64)),
                            ("checkUs", Json::int(out.stats.check.as_micros() as i64)),
                            (
                                "optimizeUs",
                                Json::int(out.stats.optimize.as_micros() as i64),
                            ),
                            ("codegenUs", Json::int(out.stats.codegen.as_micros() as i64)),
                            ("emitUs", Json::int(out.stats.emit.as_micros() as i64)),
                            ("eventsBefore", Json::int(out.stats.events_before as i64)),
                            ("eventsAfter", Json::int(out.stats.events_after as i64)),
                        ]),
                    ),
                    ("cacheDelta", cache_delta_json(&delta)),
                ]))
            }
            Err(e) => Err(compile_failure(&e, &text, uri, version, notify)),
        }
    }

    fn diagnostics(&self, params: &Json, notify: &mut dyn FnMut(Json)) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let (text, version) = self.snapshot(uri)?;
        let diags = match self.session.check(&text) {
            Ok((_, reports)) => {
                let errors: Vec<_> = reports
                    .values()
                    .flat_map(|r| r.errors().into_iter().cloned())
                    .collect();
                if errors.is_empty() {
                    Vec::new()
                } else {
                    CompileError::TimingUnsafe(errors).wire_diagnostics(&text)
                }
            }
            Err(e) => e.wire_diagnostics(&text),
        };
        notify(diagnostics_notification(uri, version, &diags));
        Ok(Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
            ("count", Json::int(diags.len() as i64)),
        ]))
    }

    fn prove(
        &self,
        params: &Json,
        stop: Option<&Arc<AtomicBool>>,
        notify: &mut dyn FnMut(Json),
    ) -> Result<Json, RpcError> {
        let uri = str_param(params, "uri")?;
        let signal = str_param(params, "signal")?;
        let max_k = int_param(params, "maxK")?.unwrap_or(16).max(0) as usize;
        let (text, version) = self.snapshot(uri)?;

        // Resolve the top process: explicit `top`, else the file's only
        // proc (the same rule the anvilc CLI uses).
        let top = match params.get("top").and_then(Json::as_str) {
            Some(t) => t.to_string(),
            None => {
                let program = self
                    .session
                    .parse(&text)
                    .map_err(|e| compile_failure(&e, &text, uri, version, notify))?;
                match program.procs.as_slice() {
                    [only] => only.name.clone(),
                    procs => {
                        return Err(RpcError::invalid_params(format!(
                            "{} processes in `{uri}`; pick one with `top` (candidates: {})",
                            procs.len(),
                            procs
                                .iter()
                                .map(|p| p.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )))
                    }
                }
            }
        };

        let circuit = self
            .session
            .compile_flat_aig(&text, &top)
            .map_err(|e| compile_failure(&e, &text, uri, version, notify))?;
        let module = circuit.module();
        let Some(sig) = module.find(signal) else {
            return Err(RpcError::invalid_params(format!(
                "no signal `{signal}` in flattened `{top}` (signals: {})",
                module
                    .iter_signals()
                    .map(|(_, s)| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        };
        let assertion = Expr::Signal(sig);

        // ---- Proof cache: fingerprint-keyed certificates. ----
        // A hit is *revalidated* against the current circuit (one
        // incremental SAT session — no invariant search, no optimization
        // pipeline) rather than trusted blindly; a certificate that fails
        // its check falls through to the cold path below.
        let proof_key = self.session.proof_key(&text, &top, signal).ok().flatten();
        if let Some(key) = proof_key {
            if let Some(cert) = self.session.cached_proof(key) {
                if let Ok(Some(result)) = revalidate_certificate(&circuit, &assertion, &cert) {
                    return Ok(prove_response(
                        uri,
                        version,
                        signal,
                        &result,
                        "cache",
                        Some(cert.engine),
                        None,
                        module,
                        &assertion,
                    ));
                }
            }
        }

        // ---- Cold path: the cooperating portfolio. ----
        let out = prove_portfolio(
            circuit.module(),
            &assertion,
            max_k,
            max_k.max(8),
            100_000,
            3,
            stop.map(Arc::clone),
        )
        .map_err(|e| RpcError::new(PROVE_FAILED, e.to_string()))?;
        let cancelled = stop.is_some_and(|flag| flag.load(Ordering::Relaxed))
            && matches!(out.result, ProveResult::Unknown { .. });
        if cancelled {
            return Err(RpcError::new(REQUEST_CANCELLED, "prove cancelled"));
        }
        if let (Some(key), Some(cert)) = (proof_key, &out.certificate) {
            self.session.store_proof(key, Arc::new(cert.clone()));
        }
        let engine = match out.winner {
            Some(Prover::Symbolic) => "symbolic",
            Some(Prover::Pdr) => "pdr",
            Some(Prover::ExplicitState) => "explicit",
            None => "none",
        };
        let stats = match out.winner {
            Some(Prover::Pdr) => out.pdr_stats,
            _ => out.symbolic_stats,
        };
        Ok(prove_response(
            uri,
            version,
            signal,
            &out.result,
            engine,
            None,
            Some(&stats),
            module,
            &assertion,
        ))
    }

    fn cache_stats_json(&self) -> Json {
        let stats = self.session.cache_stats();
        Json::obj([
            ("check", stage_json(stats.check)),
            ("optIr", stage_json(stats.opt_ir)),
            ("lower", stage_json(stats.lower)),
            ("emit", stage_json(stats.emit)),
            ("aig", stage_json(stats.aig)),
            ("proof", stage_json(stats.proof)),
            ("poisoned", Json::int(stats.poisoned as i64)),
            (
                "totals",
                Json::obj([
                    ("hits", Json::int(stats.hits() as i64)),
                    ("misses", Json::int(stats.misses() as i64)),
                    ("evictions", Json::int(stats.evictions() as i64)),
                ]),
            ),
            ("openFiles", Json::int(self.open_files() as i64)),
        ])
    }

    fn cancel(&self, params: &Json) -> Result<Json, RpcError> {
        let id = params
            .get("id")
            .filter(|id| matches!(id, Json::Str(_) | Json::Num(_)))
            .ok_or_else(|| RpcError::invalid_params("cancel needs a string or number `id`"))?;
        let mut inflight = self.lock_inflight();
        let inflight_now = inflight.contains_key(&id.to_string());
        // Raise the flag; for an id not yet seen, pre-raise it so the
        // request observes cancellation the moment it arrives.
        inflight
            .entry(id.to_string())
            .or_default()
            .store(true, Ordering::Relaxed);
        Ok(Json::obj([
            ("id", id.clone()),
            ("inflight", Json::Bool(inflight_now)),
        ]))
    }

    /// Serves one connection: newline-delimited JSON-RPC frames from
    /// `reader`, responses and notifications to `writer`.
    ///
    /// Registry and control methods (`open`, `update`, `close`,
    /// `cancel`, `cacheStats`, `ping`, `shutdown`) are handled inline on
    /// the read loop — they are cheap and their order matters. Long
    /// requests (`compile`, `diagnostics`, `prove`) run on scoped worker
    /// threads so the loop keeps reading — that is what lets a `cancel`
    /// frame reach an in-flight compile. Responses may therefore arrive
    /// out of order; clients match on `id`.
    ///
    /// Returns when the peer disconnects or after a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates read errors from the transport; write failures are
    /// swallowed (a vanished client is not a server error).
    pub fn serve<R, W>(&self, reader: R, writer: W) -> std::io::Result<()>
    where
        R: BufRead,
        W: Write + Send,
    {
        let out = Mutex::new(writer);
        let send = |frame: &Json| {
            let mut w = out.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writeln!(w, "{frame}");
            let _ = w.flush();
        };
        std::thread::scope(|scope| -> std::io::Result<()> {
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let msg = match parse_incoming(&line) {
                    Ok(msg) => msg,
                    Err(e) => {
                        send(&error_response(None, &e));
                        continue;
                    }
                };
                if matches!(msg.method.as_str(), "compile" | "diagnostics" | "prove") {
                    // Register the stop flag *before* the worker starts,
                    // so a cancel read next never misses the request.
                    if let Some(id) = &msg.id {
                        self.register(id);
                    }
                    let send = &send;
                    scope.spawn(move || {
                        if let Some(frame) = self.handle(msg, &mut |n| send(&n)) {
                            send(&frame);
                        }
                    });
                } else {
                    if let Some(frame) = self.handle(msg, &mut |n| send(&n)) {
                        send(&frame);
                    }
                    if self.is_shut_down() {
                        break;
                    }
                }
            }
            Ok(())
        })
    }
}

/// `FILE_NOT_OPEN` for a uri.
fn not_open(uri: &str) -> RpcError {
    RpcError::new(
        FILE_NOT_OPEN,
        format!("`{uri}` is not open; send `open` first"),
    )
    .with_data(Json::obj([("uri", Json::str(uri))]))
}

/// Required string param.
fn str_param<'p>(params: &'p Json, key: &str) -> Result<&'p str, RpcError> {
    params
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| RpcError::invalid_params(format!("missing string param `{key}`")))
}

/// Optional integer param (error if present but not an integer).
fn int_param(params: &Json, key: &str) -> Result<Option<i64>, RpcError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| RpcError::invalid_params(format!("param `{key}` must be an integer"))),
    }
}

/// Builds the `anvil/prove` response object. `engine` names who settled
/// the property (`symbolic` / `pdr` / `explicit` / `cache` / `none`);
/// `cached_engine` names the certificate's original producer on cache
/// hits. `stats` is absent on cache hits — revalidation does not rerun
/// the optimization pipeline, so node counts would be stale guesses.
#[allow(clippy::too_many_arguments)]
fn prove_response(
    uri: &str,
    version: i64,
    signal: &str,
    result: &ProveResult,
    engine: &str,
    cached_engine: Option<&str>,
    stats: Option<&ProveStats>,
    module: &Module,
    assertion: &Expr,
) -> Json {
    let mut fields = vec![
        ("uri", Json::str(uri)),
        ("version", Json::int(version)),
        ("signal", Json::str(signal)),
        ("engine", Json::str(engine)),
    ];
    if let Some(src) = cached_engine {
        fields.push(("cachedEngine", Json::str(src)));
    }
    if let Some(s) = stats {
        fields.push(("aigNodes", Json::int(s.aig_nodes as i64)));
        fields.push(("aigNodesAfterRewrite", Json::int(s.aig_nodes_after as i64)));
        fields.push(("latches", Json::int(s.latches as i64)));
        fields.push(("conflicts", Json::int(s.conflicts as i64)));
        fields.push(("clauses", Json::int(s.clauses as i64)));
    }
    match result {
        ProveResult::Proved { k } => {
            fields.push(("verdict", Json::str("proved")));
            fields.push(("k", Json::int(*k as i64)));
        }
        ProveResult::Falsified { depth, trace } => {
            fields.push(("verdict", Json::str("falsified")));
            fields.push(("depth", Json::int(*depth as i64)));
            match render_trace(module, assertion, trace) {
                Ok(rendered) => fields.push(("trace", Json::str(rendered))),
                Err(e) => fields.push(("traceError", Json::str(e.to_string()))),
            }
        }
        ProveResult::Unknown { depth } => {
            fields.push(("verdict", Json::str("unknown")));
            fields.push(("depth", Json::int(*depth as i64)));
        }
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn stage_json(c: StageCounters) -> Json {
    Json::obj([
        ("hits", Json::int(c.hits as i64)),
        ("misses", Json::int(c.misses as i64)),
        ("evictions", Json::int(c.evictions as i64)),
    ])
}

fn cache_delta_json(delta: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::int(delta.hits() as i64)),
        ("misses", Json::int(delta.misses() as i64)),
        ("evictions", Json::int(delta.evictions() as i64)),
        ("poisoned", Json::int(delta.poisoned as i64)),
    ])
}

/// One wire diagnostic as a JSON value (same field names and shape as
/// [`WireDiagnostic::to_json`]).
fn diagnostic_json(d: &WireDiagnostic) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert("severity".to_string(), Json::str(d.severity.as_str()));
    map.insert("message".to_string(), Json::str(&d.message));
    if let Some(span) = d.span {
        map.insert("start".to_string(), Json::int(span.start as i64));
        map.insert("end".to_string(), Json::int(span.end as i64));
        map.insert("line".to_string(), Json::int(d.line as i64));
        map.insert("col".to_string(), Json::int(d.col as i64));
    }
    Json::Obj(map)
}

/// The `diagnostics` notification frame for a file version (an empty
/// list clears previously streamed diagnostics).
fn diagnostics_notification(uri: &str, version: i64, diags: &[WireDiagnostic]) -> Json {
    notification(
        "diagnostics",
        Json::obj([
            ("uri", Json::str(uri)),
            ("version", Json::int(version)),
            (
                "diagnostics",
                Json::Arr(diags.iter().map(diagnostic_json).collect()),
            ),
        ]),
    )
}

/// Converts a compile failure into the wire error, streaming the
/// diagnostics notification as a side effect (cancellation produces
/// [`REQUEST_CANCELLED`] and no diagnostics).
fn compile_failure(
    e: &CompileError,
    text: &str,
    uri: &str,
    version: i64,
    notify: &mut dyn FnMut(Json),
) -> RpcError {
    if matches!(e, CompileError::Cancelled) {
        return RpcError::new(REQUEST_CANCELLED, "request cancelled");
    }
    let diags = e.wire_diagnostics(text);
    notify(diagnostics_notification(uri, version, &diags));
    RpcError::new(
        COMPILE_FAILED,
        format!("compile failed: {} diagnostic(s)", diags.len()),
    )
    .with_data(Json::obj([
        ("rendered", Json::str(e.render(text))),
        (
            "diagnostics",
            Json::Arr(diags.iter().map(diagnostic_json).collect()),
        ),
    ]))
}

/// Renders a caught panic payload.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
