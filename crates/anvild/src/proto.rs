//! JSON-RPC 2.0 framing over newline-delimited JSON.
//!
//! anvild speaks JSON-RPC 2.0 with one compact JSON document per line
//! (both directions; `\n` terminated, no Content-Length headers — the
//! framing a shell, a CI script, or an editor plugin can speak with
//! nothing but a socket). This module parses incoming frames into
//! [`Incoming`] and builds outgoing response/notification frames; the
//! method dispatch itself lives in [`crate::CompileService`].
//!
//! Error codes follow the JSON-RPC spec for the reserved range and LSP
//! precedent for cancellation ([`REQUEST_CANCELLED`] = `-32800`);
//! compile/prove failures use the server-defined `-32000` range with
//! structured diagnostics in `error.data`.

use std::fmt;

use crate::json::Json;

/// Invalid JSON was received (spec-reserved code).
pub const PARSE_ERROR: i64 = -32700;
/// The frame is not a valid JSON-RPC request object.
pub const INVALID_REQUEST: i64 = -32600;
/// The requested method does not exist.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// The params are malformed for the method.
pub const INVALID_PARAMS: i64 = -32602;
/// The server panicked or hit an unexpected failure while handling the
/// request (the request dies; the daemon does not).
pub const INTERNAL_ERROR: i64 = -32603;
/// Compilation failed; `error.data.diagnostics` carries the wire
/// diagnostics and `error.data.rendered` the CLI-style rendering.
pub const COMPILE_FAILED: i64 = -32000;
/// Proving failed (engine error, unknown signal resolution happens
/// earlier as [`INVALID_PARAMS`]).
pub const PROVE_FAILED: i64 = -32001;
/// The uri is not in the file registry; send `open` first.
pub const FILE_NOT_OPEN: i64 = -32002;
/// The request's deadline (`deadlineMs` param, or the server default)
/// expired before the work finished; `error.data` carries partial
/// progress (for prove: `depthReached`, `engine`, `conflicts`).
pub const DEADLINE_EXCEEDED: i64 = -32003;
/// The server's work queue is full and the request was shed without
/// being started; `error.data.retryAfterMs` hints when to retry.
pub const OVERLOADED: i64 = -32004;
/// The request was cancelled via the `cancel` method (LSP's code).
pub const REQUEST_CANCELLED: i64 = -32800;

/// A JSON-RPC error: code, message, and optional structured data.
#[derive(Clone, Debug)]
pub struct RpcError {
    /// One of the `*_ERROR` / server-defined codes above.
    pub code: i64,
    /// Short human-readable summary.
    pub message: String,
    /// Structured payload (diagnostics, candidate lists, ...).
    pub data: Option<Json>,
}

impl RpcError {
    /// An error with no structured data.
    pub fn new(code: i64, message: impl Into<String>) -> RpcError {
        RpcError {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// Attaches structured data.
    pub fn with_data(mut self, data: Json) -> RpcError {
        self.data = Some(data);
        self
    }

    /// Shorthand for [`INVALID_PARAMS`].
    pub fn invalid_params(message: impl Into<String>) -> RpcError {
        RpcError::new(INVALID_PARAMS, message)
    }

    /// The `error` member of a response frame.
    fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("code", Json::int(self.code)),
            ("message", Json::str(&self.message)),
        ]);
        if let (Json::Obj(map), Some(data)) = (&mut obj, &self.data) {
            map.insert("data".to_string(), data.clone());
        }
        obj
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for RpcError {}

/// One parsed incoming frame: a request (`id` present) or a
/// notification (`id` absent — no response will be sent).
#[derive(Clone, Debug)]
pub struct Incoming {
    /// The request id (string or number), `None` for notifications.
    pub id: Option<Json>,
    /// The method name.
    pub method: String,
    /// The `params` member (`Json::Null` when omitted).
    pub params: Json,
}

impl Incoming {
    /// A request frame with a numeric id (client-side construction;
    /// also used by the tests).
    pub fn request(id: i64, method: &str, params: Json) -> Incoming {
        Incoming {
            id: Some(Json::int(id)),
            method: method.to_string(),
            params,
        }
    }

    /// Serializes back into a request frame (client side of the wire).
    pub fn to_frame(&self) -> Json {
        let mut map = std::collections::BTreeMap::new();
        map.insert("jsonrpc".to_string(), Json::str("2.0"));
        if let Some(id) = &self.id {
            map.insert("id".to_string(), id.clone());
        }
        map.insert("method".to_string(), Json::str(&self.method));
        if self.params != Json::Null {
            map.insert("params".to_string(), self.params.clone());
        }
        Json::Obj(map)
    }
}

/// Parses one line into an [`Incoming`] frame.
///
/// # Errors
///
/// [`PARSE_ERROR`] on malformed JSON, [`INVALID_REQUEST`] on a frame
/// that is not a JSON-RPC 2.0 request/notification object (wrong
/// `jsonrpc` version, missing or non-string `method`, non-scalar `id`).
pub fn parse_incoming(line: &str) -> Result<Incoming, RpcError> {
    let frame = Json::parse(line).map_err(|e| RpcError::new(PARSE_ERROR, e.to_string()))?;
    if let Some(version) = frame.get("jsonrpc") {
        if version.as_str() != Some("2.0") {
            return Err(RpcError::new(
                INVALID_REQUEST,
                "jsonrpc member must be \"2.0\"",
            ));
        }
    }
    let method = frame
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| RpcError::new(INVALID_REQUEST, "missing string `method`"))?
        .to_string();
    let id = match frame.get("id") {
        None | Some(Json::Null) => None,
        Some(id @ (Json::Str(_) | Json::Num(_))) => Some(id.clone()),
        Some(_) => {
            return Err(RpcError::new(
                INVALID_REQUEST,
                "`id` must be a string or number",
            ))
        }
    };
    let params = frame.get("params").cloned().unwrap_or(Json::Null);
    Ok(Incoming { id, method, params })
}

/// A success response frame.
pub fn response(id: &Json, result: Json) -> Json {
    Json::obj([
        ("jsonrpc", Json::str("2.0")),
        ("id", id.clone()),
        ("result", result),
    ])
}

/// An error response frame (`id` is `null` when the request id could
/// not even be parsed).
pub fn error_response(id: Option<&Json>, err: &RpcError) -> Json {
    Json::obj([
        ("jsonrpc", Json::str("2.0")),
        ("id", id.cloned().unwrap_or(Json::Null)),
        ("error", err.to_json()),
    ])
}

/// A server→client notification frame.
pub fn notification(method: &str, params: Json) -> Json {
    Json::obj([
        ("jsonrpc", Json::str("2.0")),
        ("method", Json::str(method)),
        ("params", params),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_notifications_parse() {
        let req =
            parse_incoming(r#"{"jsonrpc":"2.0","id":1,"method":"ping","params":{"a":2}}"#).unwrap();
        assert_eq!(req.id, Some(Json::Num(1.0)));
        assert_eq!(req.method, "ping");
        assert_eq!(req.params.get("a").and_then(Json::as_i64), Some(2));

        let note = parse_incoming(r#"{"method":"open"}"#).unwrap();
        assert!(note.id.is_none());
        assert_eq!(note.params, Json::Null);
    }

    #[test]
    fn invalid_frames_are_rejected_with_spec_codes() {
        assert_eq!(parse_incoming("{nope").unwrap_err().code, PARSE_ERROR);
        assert_eq!(
            parse_incoming(r#"{"jsonrpc":"1.0","method":"m"}"#)
                .unwrap_err()
                .code,
            INVALID_REQUEST
        );
        assert_eq!(
            parse_incoming(r#"{"jsonrpc":"2.0","id":1}"#)
                .unwrap_err()
                .code,
            INVALID_REQUEST
        );
        assert_eq!(
            parse_incoming(r#"{"method":"m","id":[1]}"#)
                .unwrap_err()
                .code,
            INVALID_REQUEST
        );
    }

    #[test]
    fn frames_serialize_in_jsonrpc_shape() {
        let ok = response(&Json::int(7), Json::obj([("ok", Json::Bool(true))]));
        assert_eq!(
            ok.to_string(),
            r#"{"id":7,"jsonrpc":"2.0","result":{"ok":true}}"#
        );
        let err = error_response(None, &RpcError::new(METHOD_NOT_FOUND, "no such method"));
        assert_eq!(
            err.to_string(),
            r#"{"error":{"code":-32601,"message":"no such method"},"id":null,"jsonrpc":"2.0"}"#
        );
        let note = notification("diagnostics", Json::obj([("uri", Json::str("u"))]));
        assert!(note.to_string().contains(r#""method":"diagnostics""#));
        // Round-trip: a client request frame parses back.
        let round = Incoming::request(3, "compile", Json::obj([("uri", Json::str("u"))]));
        let parsed = parse_incoming(&round.to_frame().to_string()).unwrap();
        assert_eq!(parsed.method, "compile");
        assert_eq!(parsed.id, Some(Json::Num(3.0)));
    }
}
