//! `anvild` — a persistent compile server for Anvil.
//!
//! The batch CLI pays the full parse→check→optimize→lower→emit cost on
//! every invocation because the process — and with it the session's
//! fingerprint-keyed query cache — dies at exit. This crate keeps one
//! [`Session`](anvil_core::Session) alive behind a tiny wire protocol,
//! so an editor, a test harness, or a CI loop gets warm-cache compiles
//! for the price of a socket write.
//!
//! The protocol is JSON-RPC 2.0, one compact JSON document per line, in
//! both directions (see [`proto`]). The server speaks it on stdio or a
//! Unix socket (`examples/anvild.rs`); [`CompileService::handle`] is
//! the transport-independent core, so tests can drive the full method
//! surface without any I/O at all:
//!
//! ```
//! use anvild::{CompileService, Incoming, Json};
//!
//! let service = CompileService::new();
//! let mut notes = Vec::new();
//! let open = Incoming::request(
//!     1,
//!     "open",
//!     Json::obj([
//!         ("uri", Json::str("mem:demo.anvil")),
//!         ("text", Json::str("proc p() { reg r : logic[8]; loop { set r := *r + 1 >> cycle 1 } }")),
//!     ]),
//! );
//! service.handle(open, &mut |n| notes.push(n)).unwrap();
//! let compile = Incoming::request(
//!     2,
//!     "compile",
//!     Json::obj([("uri", Json::str("mem:demo.anvil"))]),
//! );
//! let resp = service.handle(compile, &mut |n| notes.push(n)).unwrap();
//! let sv = resp.get("result").and_then(|r| r.get("systemverilog"));
//! assert!(sv.and_then(Json::as_str).unwrap().contains("module"));
//! ```
//!
//! # Methods
//!
//! | method        | kind      | purpose                                        |
//! |---------------|-----------|------------------------------------------------|
//! | `ping`        | request   | liveness + protocol version                    |
//! | `open`        | request   | register a versioned file buffer               |
//! | `update`      | request   | replace a buffer (version must increase)       |
//! | `close`       | request   | drop a buffer                                  |
//! | `compile`     | request   | full pipeline; streams `diagnostics` notes     |
//! | `diagnostics` | request   | check-only; streams `diagnostics` notes        |
//! | `prove`       | request   | k-induction proof of a 1-bit signal            |
//! | `cacheStats`  | request   | shared-cache counters (incl. poisoned shards)  |
//! | `health`      | request   | uptime, gate gauges, robustness counters       |
//! | `cancel`      | request   | raise the stop flag for an in-flight id        |
//! | `shutdown`    | request   | stop serving (`mode`: `drain` or `abort`)      |
//!
//! Every request additionally accepts an optional `deadlineMs` param: a
//! monotonic deadline armed at registration (queue wait counts) and
//! polled by the compile pipeline and every prover engine; expiry
//! answers `DEADLINE_EXCEEDED` (`-32003`) with partial progress in
//! `error.data`. Heavy methods (`compile`, `diagnostics`, `prove`) pass
//! a bounded admission gate when served over a socket — beyond the
//! configured concurrency and queue limits they are shed immediately
//! with `OVERLOADED` (`-32004`) plus a `retryAfterMs` hint.
//!
//! A request that panics inside the compiler answers with an
//! `internal error` (`-32603`) and the daemon keeps serving — the
//! session cache recovers any shard the panic poisoned on the next
//! access. See the README's "Compile server" and "Operational
//! robustness" sections for the wire-level walkthrough.

#![warn(missing_docs)]

mod gate;
mod json;
pub mod proto;
mod server;

pub use gate::{ServiceConfig, ServiceStats};
pub use json::{Json, JsonError};
pub use proto::{
    error_response, notification, parse_incoming, response, Incoming, RpcError, COMPILE_FAILED,
    DEADLINE_EXCEEDED, FILE_NOT_OPEN, INTERNAL_ERROR, INVALID_PARAMS, INVALID_REQUEST,
    METHOD_NOT_FOUND, OVERLOADED, PARSE_ERROR, PROVE_FAILED, REQUEST_CANCELLED,
};
pub use server::{CompileService, PROTOCOL_VERSION};
