//! `ANVIL_SIM_LANES` handling: unrecognized values are a structured
//! error naming the offender and every monomorphized width, never a
//! silent fall-back to the default stride.
//!
//! This lives in its own integration-test binary (= its own process) so
//! mutating the environment cannot race other tests that compile tape
//! programs.

use anvil_rtl::{Expr, Module};
use anvil_sim::{SimError, TapeOptions, TapeProgram, LANE_STRIDE};

fn toggler() -> Module {
    let mut m = Module::new("t");
    let q = m.reg("q", 1);
    let o = m.output("o", 1);
    m.set_next(q, Expr::Signal(q).not());
    m.assign(o, Expr::Signal(q));
    m
}

#[test]
fn unrecognized_lane_width_is_an_error() {
    // SAFETY-by-isolation: this test binary holds exactly one test, so no
    // concurrent test observes the mutated environment.
    std::env::set_var("ANVIL_SIM_LANES", "12");

    let err = match TapeProgram::compile(&toggler()) {
        Err(e) => e,
        Ok(_) => panic!("expected UnknownLaneWidth"),
    };
    let SimError::UnknownLaneWidth(v) = &err else {
        panic!("expected UnknownLaneWidth, got {err:?}");
    };
    assert_eq!(v, "12");
    // The message names the offender and every monomorphized width.
    let msg = err.to_string();
    for needle in ["12", "4", "8", "16", "32", "ANVIL_SIM_LANES"] {
        assert!(msg.contains(needle), "{msg}");
    }

    // Non-numeric values are the same structured error, not a parse panic.
    std::env::set_var("ANVIL_SIM_LANES", "wide");
    assert!(matches!(
        TapeProgram::compile(&toggler()),
        Err(SimError::UnknownLaneWidth(v)) if v == "wide"
    ));

    // Every valid width selects that stride.
    for w in [4usize, 8, 16, 32] {
        std::env::set_var("ANVIL_SIM_LANES", w.to_string());
        let p = TapeProgram::compile(&toggler()).unwrap();
        assert_eq!(p.stride(), w, "ANVIL_SIM_LANES={w}");
    }

    // An explicit `TapeOptions::stride` wins over the environment, and an
    // invalid one is the same structured error.
    std::env::set_var("ANVIL_SIM_LANES", "32");
    let opts = TapeOptions {
        stride: Some(8),
        ..TapeOptions::default()
    };
    assert_eq!(
        TapeProgram::compile_with(&toggler(), opts)
            .unwrap()
            .stride(),
        8
    );
    let bad = TapeOptions {
        stride: Some(5),
        ..TapeOptions::default()
    };
    assert!(matches!(
        TapeProgram::compile_with(&toggler(), bad),
        Err(SimError::UnknownLaneWidth(v)) if v == "5"
    ));

    // Unset (and empty) fall back to the default stride.
    std::env::set_var("ANVIL_SIM_LANES", "");
    assert_eq!(
        TapeProgram::compile(&toggler()).unwrap().stride(),
        LANE_STRIDE
    );
    std::env::remove_var("ANVIL_SIM_LANES");
    assert_eq!(
        TapeProgram::compile(&toggler()).unwrap().stride(),
        LANE_STRIDE
    );
}
