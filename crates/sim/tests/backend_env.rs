//! `ANVIL_SIM_BACKEND` handling: unrecognized values are a hard error
//! naming the valid choices, never a silent fall-back to the default.
//!
//! This lives in its own integration-test binary (= its own process) so
//! mutating the environment cannot race other tests that prepare
//! simulations with [`Sim::new`].

use anvil_rtl::{Expr, Module};
use anvil_sim::{Backend, Sim, SimError};

fn toggler() -> Module {
    let mut m = Module::new("t");
    let q = m.reg("q", 1);
    let o = m.output("o", 1);
    m.set_next(q, Expr::Signal(q).not());
    m.assign(o, Expr::Signal(q));
    m
}

#[test]
fn unrecognized_backend_value_is_an_error() {
    // SAFETY-by-isolation: this test binary holds exactly one test, so no
    // concurrent test observes the mutated environment.
    std::env::set_var("ANVIL_SIM_BACKEND", "treee");

    let err = Backend::from_env().unwrap_err();
    let SimError::UnknownBackend(v) = &err else {
        panic!("expected UnknownBackend, got {err:?}");
    };
    assert_eq!(v, "treee");
    // The message names the offender and every valid value.
    let msg = err.to_string();
    for needle in ["treee", "tree", "interp", "compiled", "tape"] {
        assert!(msg.contains(needle), "{msg}");
    }

    // `Sim::new` surfaces the same error instead of silently running the
    // compiled engine.
    assert!(matches!(
        Sim::new(&toggler()),
        Err(SimError::UnknownBackend(_))
    ));

    // Valid values and the unset default still work.
    for (value, backend) in [
        ("tree", Backend::Tree),
        ("interp", Backend::Tree),
        ("compiled", Backend::Compiled),
        ("tape", Backend::Compiled),
    ] {
        std::env::set_var("ANVIL_SIM_BACKEND", value);
        assert_eq!(Backend::from_env().unwrap(), backend, "{value}");
    }
    std::env::remove_var("ANVIL_SIM_BACKEND");
    assert_eq!(Backend::from_env().unwrap(), Backend::Compiled);

    // `from_name` is the env-free parsing surface.
    assert!(matches!(
        Backend::from_name("verilator"),
        Err(SimError::UnknownBackend(_))
    ));
}
