//! Differential matrix over the tape optimization layer: the paper's
//! ten-design evaluation suite runs under **every** (lane width ×
//! fusion on/off × dirty-region skipping on/off) configuration, against
//! per-lane scalar [`Sim`]s consuming bit-identical stimulus. Outputs,
//! state fingerprints, debug prints, and toggle counts must match
//! bit-for-bit — the optimizations are pure speedups, never observable.

use anvil_designs::tb::{input_ports, xorshift64};
use anvil_rtl::{Bits, SignalKind};
use anvil_sim::{Backend, Sim, TapeOptions, TapeProgram};

const CYCLES: u64 = 32;
/// Not a multiple of any monomorphized width: every configuration
/// exercises a tail group (and stride 4 also stacks a full group).
const LANES: usize = 6;

/// Decorrelated nonzero xorshift seed for one (design, lane) stream.
fn stream_seed(design: usize, lane: usize) -> u64 {
    let s = 0xA11C_E5ED_5EED_0001u64
        ^ (design as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (lane as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    if s == 0 {
        0xDEAD_BEEF
    } else {
        s
    }
}

/// Everything observable about one lane's run.
#[derive(Debug, PartialEq)]
struct Observed {
    outputs: Vec<(String, Bits)>,
    fingerprint: u64,
    log: Vec<(u64, String)>,
    toggles: Vec<u64>,
}

#[test]
fn every_optimization_config_matches_scalar_sims() {
    let mut configs = Vec::new();
    for stride in [4usize, 8, 16, 32] {
        for fuse in [false, true] {
            for dirty_regions in [false, true] {
                configs.push(TapeOptions {
                    fuse,
                    dirty_regions,
                    stride: Some(stride),
                });
            }
        }
    }

    for (d, design) in anvil_designs::registry().into_iter().enumerate() {
        let m = (design.anvil)();
        let inputs = input_ports(&m);
        let outputs: Vec<String> = m
            .iter_signals()
            .filter(|(_, s)| s.kind == SignalKind::Output)
            .map(|(_, s)| s.name.clone())
            .collect();

        // Scalar reference: one compiled-tape `Sim` per lane (itself
        // differentially tested against the tree engine).
        let reference: Vec<Observed> = (0..LANES)
            .map(|l| {
                let mut sim = Sim::with_backend(&m, Backend::Compiled).expect("suite simulates");
                let mut rng = stream_seed(d, l);
                for _ in 0..CYCLES {
                    for (name, width) in &inputs {
                        sim.poke(name, Bits::from_u64(xorshift64(&mut rng), *width))
                            .expect("poking input");
                    }
                    sim.step().expect("stepping");
                }
                Observed {
                    outputs: outputs
                        .iter()
                        .map(|o| (o.clone(), sim.peek(o).expect("peeking output")))
                        .collect(),
                    fingerprint: sim.state_fingerprint(),
                    log: sim.log.clone(),
                    toggles: sim.toggle_counts().to_vec(),
                }
            })
            .collect();

        for opts in &configs {
            let program =
                TapeProgram::compile_with(&m, *opts).expect("suite lowers under every config");
            let mut batch = program.batch(LANES);
            let ids: Vec<_> = inputs
                .iter()
                .map(|(name, _)| batch.input_id(name).expect("input id"))
                .collect();
            let mut rngs: Vec<u64> = (0..LANES).map(|l| stream_seed(d, l)).collect();
            let mut vals = vec![0u64; LANES];
            for _ in 0..CYCLES {
                for id in &ids {
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        vals[l] = xorshift64(rng);
                    }
                    batch.poke_u64s(*id, &vals);
                }
                batch.step();
            }
            for (l, expect) in reference.iter().enumerate() {
                let got = Observed {
                    outputs: outputs
                        .iter()
                        .map(|o| (o.clone(), batch.peek(l, o).expect("peeking output")))
                        .collect(),
                    fingerprint: batch.state_fingerprint(l),
                    log: batch.log(l).to_vec(),
                    toggles: batch.toggle_counts(l),
                };
                assert_eq!(
                    &got, expect,
                    "design `{}` lane {l} diverged under {opts:?}",
                    design.name
                );
            }
        }
    }
}

/// A non-multiple lane count gets a tail group of the smallest
/// monomorphized width that covers the remainder — the arena footprint
/// must shrink versus padding the tail to a full stride.
#[test]
fn tail_groups_use_the_smallest_covering_width() {
    let design = &anvil_designs::registry()[0];
    let m = (design.anvil)();
    let opts = TapeOptions {
        stride: Some(16),
        ..TapeOptions::default()
    };
    let program = TapeProgram::compile_with(&m, opts).expect("design lowers");

    // 17 lanes = one full 16-wide group + one lane of tail → a 4-wide
    // tail group, not a second full 16-wide group.
    let seventeen = program.batch(17);
    assert_eq!(seventeen.group_strides(), vec![16, 4]);
    let full = program.batch(16);
    let padded = 2 * full.arena_words();
    assert!(
        seventeen.arena_words() < padded,
        "tail footprint {} should shrink below padded {}",
        seventeen.arena_words(),
        padded
    );

    // 22 lanes → remainder 6 → an 8-wide tail; 29 lanes → remainder 13
    // → a 16-wide tail (smallest covering width each time).
    assert_eq!(program.batch(22).group_strides(), vec![16, 8]);
    assert_eq!(program.batch(29).group_strides(), vec![16, 16]);

    // Tail lanes behave identically to full-group lanes.
    let mut batch = program.batch(17);
    let inputs = input_ports(&m);
    let mut rngs: Vec<u64> = (0..17).map(|l| stream_seed(0, l % 6)).collect();
    let mut vals = vec![0u64; 17];
    let ids: Vec<_> = inputs
        .iter()
        .map(|(name, _)| batch.input_id(name).expect("input id"))
        .collect();
    for _ in 0..8 {
        for id in &ids {
            for (l, rng) in rngs.iter_mut().enumerate() {
                vals[l] = xorshift64(rng);
            }
            batch.poke_u64s(*id, &vals);
        }
        batch.step();
    }
    // Lane 16 (tail) consumed the same stream as lane 4 of group 0
    // (16 % 6 == 4 in the seed map above): identical observables.
    assert_eq!(batch.state_fingerprint(16), batch.state_fingerprint(4));
    assert_eq!(batch.toggle_counts(16), batch.toggle_counts(4));
}
