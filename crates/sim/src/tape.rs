//! The compiled simulation backend: a one-time lowering of a flattened
//! [`Module`] into a linear instruction tape.
//!
//! [`Tape::compile`] topologically schedules every combinational driver
//! (via [`Module::comb_schedule`]), width-checks it, and flattens its
//! recursive [`Expr`] tree into word-level ops over a flat `u64` arena:
//! every signal, register next-value, debug-print operand, array-write
//! operand, constant, and intermediate gets a pre-resolved *slot* (word
//! offset + width). [`TapeEngine`] then executes one settle as a single
//! non-recursive pass over the op list — no name lookups, no `HashMap`
//! probes, no per-node heap allocation — which is what makes brute-forcing
//! many stimulus schedules (BMC, differential fuzzing, the scenario sweeps
//! the ROADMAP asks for) practical.
//!
//! Lowering re-derives every expression width while allocating slots, so
//! it enforces the same driver width discipline as the facade's shared
//! pre-check ([`SimError::DriverWidth`] / [`SimError::MalformedExpr`]) —
//! a malformed module can never reach the executor.
//!
//! # Superinstructions
//!
//! After lowering, [`TapeOptions::fuse`] runs a peephole fusion pass over
//! the op list. Single-use temporaries produced by one op and consumed by
//! exactly the next tier of the dataflow collapse into *superinstructions*
//! that decode once and keep their intermediate in registers instead of
//! round-tripping through the arena:
//!
//! | superinstruction | replaces | pattern |
//! |---|---|---|
//! | `slice`/`resize` folds | 2 ops | `slice∘slice`, `slice∘resize`, `resize∘slice`, `resize∘resize` |
//! | `add3` | 2 ops | `(a + b) + c` add ladders |
//! | `logic3` | 2 ops | `(a ⊕ b) ⊕ c` for `⊕ ∈ {&, \|, ^}`, all widths equal |
//! | `mux_chain` | n ops | nested 2-way mux trees (priority selects) |
//! | `gather` | n+1 ops | `concat` of single-use `slice`/`resize` parts — one bit-field shuffle |
//! | `copy_range` | n ops | adjacent-slot copies coalesced after partitioning |
//!
//! Fusion is exact: every rule requires the producer to be an unprotected
//! single-def/single-use temp, so observable slots (signals, register
//! next-values, print/array operands) are never rewritten, and
//! out-of-range `slice` reads keep their zero-extension semantics.
//!
//! # Settle regions
//!
//! [`TapeOptions::dirty_regions`] partitions the scheduled op list into
//! *input-cone regions* — the weakly connected components of the
//! slot-dataflow graph, each contiguous in topological order. Invariants
//! the partition maintains (and the engines rely on):
//!
//! - ops in different regions share **no** slots, so regions settle
//!   independently and in any order;
//! - every input signal, register, and array maps to the set of regions
//!   that read it; a poke that changes a value, a register commit that
//!   lands a new value, or an array write marks exactly those regions
//!   dirty;
//! - a clean region's slots already hold their settled values, so the
//!   settle loop skips it entirely — the basis of settle-skipping for
//!   designs with quiet subgraphs.

use std::sync::Arc;

use anvil_rtl::{ArrayId, BinaryOp, Bits, Expr, Module, SignalId, SignalKind, UnaryOp};

use crate::engine::{eval_expr, Backend, SimBackend, SimError, StateHasher, ValueSource};

/// A pre-resolved storage location in the arena: `words` little-endian
/// `u64`s starting at word offset `off`, holding a `width`-bit value with
/// the unused high bits of the top word kept zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Slot {
    off: u32,
    words: u32,
    width: u32,
}

impl Slot {
    fn off(self) -> usize {
        self.off as usize
    }

    fn words(self) -> usize {
        self.words as usize
    }

    fn width(self) -> usize {
        self.width as usize
    }

    fn range(self) -> std::ops::Range<usize> {
        self.off()..self.off() + self.words()
    }

    /// Mask keeping only the valid bits of the top word.
    fn top_mask(self) -> u64 {
        let r = self.width % 64;
        if r == 0 {
            u64::MAX
        } else {
            (1u64 << r) - 1
        }
    }
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

/// Comparison selector for [`Op::Cmp`].
#[derive(Clone, Copy, Debug)]
enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Bitwise operator selector for [`Op::Logic3`].
#[derive(Clone, Copy, Debug)]
enum BwKind {
    And,
    Or,
    Xor,
}

#[inline(always)]
fn bw(x: u64, y: u64, k: BwKind) -> u64 {
    match k {
        BwKind::And => x & y,
        BwKind::Or => x | y,
        BwKind::Xor => x ^ y,
    }
}

/// Reduction selector for [`Op::Red`].
#[derive(Clone, Copy, Debug)]
enum RedKind {
    And,
    Or,
    Xor,
    LogicNot,
}

/// One word-level instruction. All operands are pre-resolved slots; the
/// executor is a single flat `match` loop with no recursion.
#[derive(Clone, Debug)]
enum Op {
    /// `dst = src` (equal widths).
    Copy { dst: Slot, src: Slot },
    /// `dst = ~a`.
    Not { dst: Slot, a: Slot },
    /// `dst = -a` (two's complement, wrapping).
    Neg { dst: Slot, a: Slot },
    /// `dst = a + b` (wrapping).
    Add { dst: Slot, a: Slot, b: Slot },
    /// `dst = a - b` (wrapping).
    Sub { dst: Slot, a: Slot, b: Slot },
    /// `dst = a * b` (wrapping; uses the engine scratch buffer).
    Mul { dst: Slot, a: Slot, b: Slot },
    /// `dst = a & b`.
    And { dst: Slot, a: Slot, b: Slot },
    /// `dst = a | b`.
    Or { dst: Slot, a: Slot, b: Slot },
    /// `dst = a ^ b`.
    Xor { dst: Slot, a: Slot, b: Slot },
    /// 1-bit comparison result.
    Cmp {
        dst: Slot,
        a: Slot,
        b: Slot,
        kind: CmpKind,
    },
    /// 1-bit reduction result.
    Red { dst: Slot, a: Slot, kind: RedKind },
    /// `dst = a << amt` / `a >> amt`; amount read from a slot at run time.
    Shift {
        dst: Slot,
        a: Slot,
        amt: Slot,
        left: bool,
    },
    /// `dst = cond ? t : e` (truthy = any bit set).
    Mux {
        dst: Slot,
        cond: Slot,
        t: Slot,
        e: Slot,
    },
    /// `dst = src[lo +: dst.width]`, zero-extending past the top of `src`.
    Slice { dst: Slot, src: Slot, lo: u32 },
    /// Concatenation: each part is OR-ed into `dst` at its bit offset
    /// (parts tile `dst` exactly; `dst` is zeroed first).
    Concat {
        dst: Slot,
        parts: Box<[(Slot, u32)]>,
    },
    /// Zero-extension or truncation.
    Resize { dst: Slot, src: Slot },
    /// Superinstruction: a bit-field gather. Each part ORs `width` bits
    /// of `src` starting at `src_lo` into `dst` at `dst_lo` (bits past
    /// the top of `src` read as zero; parts tile `dst`, which is zeroed
    /// first). Fused from single-use [`Op::Slice`]/[`Op::Resize`] temps
    /// feeding one [`Op::Concat`] — the byte-shuffle pattern (cipher
    /// state permutations, bus packing) — so each shuffled field moves
    /// source→destination in one pass instead of materializing a temp.
    Gather { dst: Slot, parts: Box<[GatherPart]> },
    /// Asynchronous memory read; out-of-range indices yield zero.
    ArrayRead { dst: Slot, array: u32, index: Slot },
    /// Superinstruction: `dst = a + b + c` (wrapping; all widths equal).
    /// Fused from an add-with-carry ladder — one decode, one carry chain,
    /// and the intermediate sum's slot is never materialized.
    Add3 {
        dst: Slot,
        a: Slot,
        b: Slot,
        c: Slot,
    },
    /// Superinstruction: `dst = (a <first> b) <second> c` for bitwise
    /// operators (all five widths equal). Fused from bitwise reduction
    /// trees — XOR ladders in ciphers and CRCs, AND/OR enable chains —
    /// so one decode covers two ops and the intermediate result is never
    /// materialized. Exact because bitwise ops are word-local and the
    /// equal widths make the intermediate mask a no-op.
    Logic3 {
        dst: Slot,
        a: Slot,
        b: Slot,
        c: Slot,
        first: BwKind,
        second: BwKind,
    },
    /// Superinstruction: a priority mux tree. The first case whose
    /// condition is truthy selects its value; otherwise `default`. Fused
    /// from an else-chained run of [`Op::Mux`]es — one decode and one
    /// copy replace `cases.len()` mux blends through eliminated temps.
    MuxChain {
        dst: Slot,
        /// `(cond, value)` pairs, highest priority first.
        cases: Box<[(Slot, Slot)]>,
        default: Slot,
    },
    /// Superinstruction: one contiguous block copy covering what was a
    /// run of adjacent [`Op::Copy`]s (raw word offsets, not slots).
    CopyRange {
        dst_off: u32,
        src_off: u32,
        words: u32,
    },
}

impl Op {
    /// Short stable name of the variant (op-mix histograms).
    fn mnemonic(&self) -> &'static str {
        match self {
            Op::Copy { .. } => "copy",
            Op::Not { .. } => "not",
            Op::Neg { .. } => "neg",
            Op::Add { .. } => "add",
            Op::Sub { .. } => "sub",
            Op::Mul { .. } => "mul",
            Op::And { .. } => "and",
            Op::Or { .. } => "or",
            Op::Xor { .. } => "xor",
            Op::Cmp { .. } => "cmp",
            Op::Red { .. } => "red",
            Op::Shift { .. } => "shift",
            Op::Mux { .. } => "mux",
            Op::Slice { .. } => "slice",
            Op::Concat { .. } => "concat",
            Op::Resize { .. } => "resize",
            Op::Gather { .. } => "gather",
            Op::ArrayRead { .. } => "array_read",
            Op::Add3 { .. } => "add3",
            Op::Logic3 { .. } => "logic3",
            Op::MuxChain { .. } => "mux_chain",
            Op::CopyRange { .. } => "copy_range",
        }
    }

    /// All slots this op touches (destination first). `CopyRange` is
    /// created only after region partitioning, so it never appears here.
    fn slots(&self, out: &mut Vec<Slot>) {
        out.clear();
        match self {
            Op::Copy { dst, src } => out.extend([*dst, *src]),
            Op::Not { dst, a } | Op::Neg { dst, a } | Op::Red { dst, a, .. } => {
                out.extend([*dst, *a])
            }
            Op::Add { dst, a, b }
            | Op::Sub { dst, a, b }
            | Op::Mul { dst, a, b }
            | Op::And { dst, a, b }
            | Op::Or { dst, a, b }
            | Op::Xor { dst, a, b }
            | Op::Cmp { dst, a, b, .. } => out.extend([*dst, *a, *b]),
            Op::Shift { dst, a, amt, .. } => out.extend([*dst, *a, *amt]),
            Op::Mux { dst, cond, t, e } => out.extend([*dst, *cond, *t, *e]),
            Op::Slice { dst, src, .. } | Op::Resize { dst, src } => out.extend([*dst, *src]),
            Op::Concat { dst, parts } => {
                out.push(*dst);
                out.extend(parts.iter().map(|(s, _)| *s));
            }
            Op::Gather { dst, parts } => {
                out.push(*dst);
                out.extend(parts.iter().map(|p| p.src));
            }
            Op::ArrayRead { dst, index, .. } => out.extend([*dst, *index]),
            Op::Add3 { dst, a, b, c } | Op::Logic3 { dst, a, b, c, .. } => {
                out.extend([*dst, *a, *b, *c])
            }
            Op::MuxChain {
                dst,
                cases,
                default,
            } => {
                out.extend([*dst, *default]);
                for (c, v) in cases.iter() {
                    out.extend([*c, *v]);
                }
            }
            Op::CopyRange { .. } => unreachable!("CopyRange exists only post-partitioning"),
        }
    }

    fn dst_off(&self) -> Option<u32> {
        match self {
            Op::Copy { dst, .. }
            | Op::Not { dst, .. }
            | Op::Neg { dst, .. }
            | Op::Add { dst, .. }
            | Op::Sub { dst, .. }
            | Op::Mul { dst, .. }
            | Op::And { dst, .. }
            | Op::Or { dst, .. }
            | Op::Xor { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Red { dst, .. }
            | Op::Shift { dst, .. }
            | Op::Mux { dst, .. }
            | Op::Slice { dst, .. }
            | Op::Concat { dst, .. }
            | Op::Resize { dst, .. }
            | Op::Gather { dst, .. }
            | Op::ArrayRead { dst, .. }
            | Op::Add3 { dst, .. }
            | Op::Logic3 { dst, .. }
            | Op::MuxChain { dst, .. } => Some(dst.off),
            Op::CopyRange { .. } => None,
        }
    }
}

/// One part of an [`Op::Gather`]: `width` bits of `src` starting at bit
/// `src_lo`, placed into the destination at bit `dst_lo`.
#[derive(Clone, Copy, Debug)]
struct GatherPart {
    src: Slot,
    dst_lo: u32,
    src_lo: u32,
    width: u32,
}

/// A lowered synchronous array write port.
#[derive(Clone, Debug)]
struct TapeWrite {
    array: u32,
    enable: Slot,
    index: Slot,
    data: Slot,
}

/// A lowered debug print.
#[derive(Clone, Debug)]
struct TapePrint {
    enable: Slot,
    label: String,
    value: Option<Slot>,
}

/// Word-packed memory metadata: element `e` lives at
/// `data[e * wpe .. (e + 1) * wpe]`.
#[derive(Clone, Debug)]
struct TapeArray {
    width: u32,
    depth: u32,
    wpe: u32,
    init: Vec<u64>,
}

/// Compile-time knobs for the tape optimization layer. The defaults
/// (everything on, auto stride) are what
/// [`TapeProgram::compile`](crate::TapeProgram::compile) and `Sim` use;
/// the differential test matrix exercises every combination against the
/// scalar engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TapeOptions {
    /// Run the superinstruction fusion pass (slice/resize folds,
    /// add-ladder fusion, mux-chain fusion, copy coalescing).
    pub fuse: bool,
    /// Partition the tape into input-cone regions and let the lane
    /// engines skip settling regions whose inputs did not change.
    pub dirty_regions: bool,
    /// Lane-engine stride override. `None` consults `ANVIL_SIM_LANES`
    /// and falls back to the default stride; `Some(w)` must be one of
    /// the monomorphized widths {4, 8, 16, 32}.
    pub stride: Option<usize>,
}

impl Default for TapeOptions {
    fn default() -> Self {
        TapeOptions {
            fuse: true,
            dirty_regions: true,
            stride: None,
        }
    }
}

/// The monomorphized lane-engine widths.
pub(crate) const LANE_WIDTHS: [usize; 4] = [4, 8, 16, 32];

/// Validates a lane stride against the monomorphized widths.
pub(crate) fn check_lane_width(w: usize) -> Result<usize, SimError> {
    if LANE_WIDTHS.contains(&w) {
        Ok(w)
    } else {
        Err(SimError::UnknownLaneWidth(w.to_string()))
    }
}

/// Stride requested through `ANVIL_SIM_LANES`, if any. Mirrors
/// [`Backend::from_env`]: an unset variable means "no preference", and
/// anything unparseable or outside {4, 8, 16, 32} is a structured error
/// rather than a silently-applied default.
pub(crate) fn lane_width_from_env() -> Result<Option<usize>, SimError> {
    use std::env::VarError;
    match std::env::var("ANVIL_SIM_LANES") {
        Err(VarError::NotPresent) => Ok(None),
        Err(VarError::NotUnicode(raw)) => Err(SimError::UnknownLaneWidth(
            raw.to_string_lossy().into_owned(),
        )),
        Ok(v) if v.is_empty() => Ok(None),
        Ok(v) => match v.parse::<usize>() {
            Ok(n) => check_lane_width(n).map(Some),
            Err(_) => Err(SimError::UnknownLaneWidth(v)),
        },
    }
}

/// The immutable compiled program: share one `Arc<Tape>` across as many
/// [`TapeEngine`] instances (and threads) as needed — e.g. the bounded
/// model checker lowers once and replays thousands of traces.
pub(crate) struct Tape {
    /// The settle program: region-contiguous, and topologically ordered
    /// within each region (fused superinstructions included).
    ops: Vec<Op>,
    /// Op-index ranges of the settle regions (see the module docs):
    /// `ops[r.0 as usize .. r.1 as usize]` is one region; regions share
    /// no dynamic slots, so a lane engine may skip any clean region.
    regions: Vec<(u32, u32)>,
    /// Region reading each signal's slot, indexed by [`SignalId`]
    /// (`u32::MAX` when no op reads it — poking it dirties nothing).
    sig_region: Vec<u32>,
    /// Region reading each committed register's current-value slot,
    /// parallel to `reg_commits` (`u32::MAX` when unread).
    commit_region: Vec<u32>,
    /// Regions containing an [`Op::ArrayRead`] of each array: a write to
    /// the array (committed port or test poke) dirties all of them.
    array_regions: Vec<Vec<u32>>,
    /// Current-value slot of every signal, indexed by [`SignalId`].
    sig_slots: Vec<Slot>,
    /// `(current, next)` slot pairs for registers with next-value drivers.
    reg_commits: Vec<(Slot, Slot)>,
    /// Current-value slots of all registers in id order (fingerprints).
    reg_fp: Vec<Slot>,
    writes: Vec<TapeWrite>,
    prints: Vec<TapePrint>,
    arrays: Vec<TapeArray>,
    /// Power-on arena image: zeros, register inits, and materialized
    /// constants.
    init_arena: Vec<u64>,
}

/// Bump-allocating tape builder.
struct Builder {
    arena: Vec<u64>,
    ops: Vec<Op>,
    sig_slots: Vec<Slot>,
}

impl Builder {
    fn alloc(&mut self, width: usize) -> Slot {
        let words = words_for(width);
        let off = self.arena.len();
        self.arena.resize(off + words, 0);
        Slot {
            off: off as u32,
            words: words as u32,
            width: width as u32,
        }
    }

    /// Materializes a constant into the arena image (no op emitted; the
    /// slot is never written at run time).
    fn alloc_const(&mut self, value: &Bits) -> Slot {
        let slot = self.alloc(value.width());
        self.write_const(slot, value);
        slot
    }

    fn write_const(&mut self, slot: Slot, value: &Bits) {
        let words = value.as_words();
        self.arena[slot.range()].copy_from_slice(&words[..slot.words()]);
    }

    /// Lowers `e`, returning the slot holding its value. When `want` is
    /// given and matches the expression's width, the result is computed
    /// directly into it (leaf expressions ignore `want`; the caller copies).
    fn expr(&mut self, m: &Module, e: &Expr, want: Option<Slot>) -> Result<Slot, SimError> {
        let dst_for = |b: &mut Builder, w: usize| match want {
            Some(d) if d.width() == w => d,
            _ => b.alloc(w),
        };
        match e {
            Expr::Const(b) => Ok(self.alloc_const(b)),
            Expr::Signal(s) => self
                .sig_slots
                .get(s.0)
                .copied()
                .ok_or_else(|| SimError::MalformedExpr(format!("unknown signal {s:?}"))),
            Expr::Unary(op, a) => {
                let sa = self.expr(m, a, None)?;
                match op {
                    UnaryOp::Not => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Not { dst, a: sa });
                        Ok(dst)
                    }
                    UnaryOp::Neg => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Neg { dst, a: sa });
                        Ok(dst)
                    }
                    UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor | UnaryOp::LogicNot => {
                        let dst = dst_for(self, 1);
                        let kind = match op {
                            UnaryOp::RedAnd => RedKind::And,
                            UnaryOp::RedOr => RedKind::Or,
                            UnaryOp::RedXor => RedKind::Xor,
                            _ => RedKind::LogicNot,
                        };
                        self.ops.push(Op::Red { dst, a: sa, kind });
                        Ok(dst)
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let sa = self.expr(m, a, None)?;
                let sb = self.expr(m, b, None)?;
                match op {
                    BinaryOp::Shl | BinaryOp::Shr => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Shift {
                            dst,
                            a: sa,
                            amt: sb,
                            left: matches!(op, BinaryOp::Shl),
                        });
                        Ok(dst)
                    }
                    _ => {
                        if sa.width != sb.width {
                            return Err(SimError::MalformedExpr(format!(
                                "operand width mismatch {} vs {} in {op:?}",
                                sa.width, sb.width
                            )));
                        }
                        if op.is_comparison() {
                            let dst = dst_for(self, 1);
                            let kind = match op {
                                BinaryOp::Eq => CmpKind::Eq,
                                BinaryOp::Ne => CmpKind::Ne,
                                BinaryOp::Lt => CmpKind::Lt,
                                BinaryOp::Le => CmpKind::Le,
                                BinaryOp::Gt => CmpKind::Gt,
                                _ => CmpKind::Ge,
                            };
                            self.ops.push(Op::Cmp {
                                dst,
                                a: sa,
                                b: sb,
                                kind,
                            });
                            Ok(dst)
                        } else {
                            let dst = dst_for(self, sa.width());
                            self.ops.push(match op {
                                BinaryOp::Add => Op::Add { dst, a: sa, b: sb },
                                BinaryOp::Sub => Op::Sub { dst, a: sa, b: sb },
                                BinaryOp::Mul => Op::Mul { dst, a: sa, b: sb },
                                BinaryOp::And => Op::And { dst, a: sa, b: sb },
                                BinaryOp::Or => Op::Or { dst, a: sa, b: sb },
                                _ => Op::Xor { dst, a: sa, b: sb },
                            });
                            Ok(dst)
                        }
                    }
                }
            }
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => {
                let sc = self.expr(m, cond, None)?;
                let st = self.expr(m, then_e, None)?;
                let se = self.expr(m, else_e, None)?;
                if st.width != se.width {
                    return Err(SimError::MalformedExpr(format!(
                        "mux branch width mismatch {} vs {}",
                        st.width, se.width
                    )));
                }
                let dst = dst_for(self, st.width());
                self.ops.push(Op::Mux {
                    dst,
                    cond: sc,
                    t: st,
                    e: se,
                });
                Ok(dst)
            }
            Expr::Concat(parts) => {
                if parts.is_empty() {
                    return Err(SimError::MalformedExpr("empty concat".into()));
                }
                let slots = parts
                    .iter()
                    .map(|p| self.expr(m, p, None))
                    .collect::<Result<Vec<_>, _>>()?;
                let width: usize = slots.iter().map(|s| s.width()).sum();
                // Parts are given most-significant first; compute each
                // part's bit offset in the result.
                let mut placed = Vec::with_capacity(slots.len());
                let mut lo = width;
                for s in &slots {
                    lo -= s.width();
                    placed.push((*s, lo as u32));
                }
                let dst = dst_for(self, width);
                self.ops.push(Op::Concat {
                    dst,
                    parts: placed.into_boxed_slice(),
                });
                Ok(dst)
            }
            Expr::Slice { base, lo, width } => {
                if *width == 0 {
                    return Err(SimError::MalformedExpr("zero-width slice".into()));
                }
                let src = self.expr(m, base, None)?;
                let dst = dst_for(self, *width);
                self.ops.push(Op::Slice {
                    dst,
                    src,
                    lo: *lo as u32,
                });
                Ok(dst)
            }
            Expr::ArrayRead { array, index } => {
                let decl = m
                    .arrays
                    .get(array.0)
                    .ok_or_else(|| SimError::MalformedExpr(format!("unknown array {array:?}")))?;
                let index = self.expr(m, index, None)?;
                let dst = dst_for(self, decl.width);
                self.ops.push(Op::ArrayRead {
                    dst,
                    array: array.0 as u32,
                    index,
                });
                Ok(dst)
            }
            Expr::Resize { base, width } => {
                if *width == 0 {
                    return Err(SimError::MalformedExpr("zero-width resize".into()));
                }
                let src = self.expr(m, base, None)?;
                let dst = dst_for(self, *width);
                self.ops.push(Op::Resize { dst, src });
                Ok(dst)
            }
        }
    }

    /// Lowers a driver expression into `target`, enforcing the declared
    /// width (`name` labels the error).
    ///
    /// Constant drivers still lower to a `Copy` from a materialized const
    /// slot rather than being baked into the arena image: the signal slot
    /// must start at zero so first-cycle toggle counts match the tree
    /// engine exactly.
    fn drive(&mut self, m: &Module, e: &Expr, target: Slot, name: &str) -> Result<(), SimError> {
        let s = self.expr(m, e, Some(target))?;
        if s.width != target.width {
            return Err(SimError::DriverWidth {
                signal: name.to_string(),
                expected: target.width(),
                found: s.width(),
            });
        }
        if s != target {
            self.ops.push(Op::Copy {
                dst: target,
                src: s,
            });
        }
        Ok(())
    }
}

impl Tape {
    /// Lowers a flattened module into an instruction tape.
    ///
    /// # Errors
    ///
    /// [`SimError::NotFlat`] if instances remain,
    /// [`SimError::CombinationalLoop`] on a cyclic combinational graph,
    /// [`SimError::DriverWidth`] / [`SimError::MalformedExpr`] when a
    /// driver fails the width check.
    pub(crate) fn compile(module: Arc<Module>) -> Result<Tape, SimError> {
        Tape::compile_with(module, TapeOptions::default())
    }

    /// [`Tape::compile`] with explicit optimization options (the
    /// differential test matrix runs every combination).
    pub(crate) fn compile_with(module: Arc<Module>, opts: TapeOptions) -> Result<Tape, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::NotFlat(module.name.clone()));
        }
        let order = module
            .comb_schedule()
            .map_err(|sid| SimError::CombinationalLoop(module.signal(sid).name.clone()))?;

        let mut b = Builder {
            arena: Vec::new(),
            ops: Vec::new(),
            sig_slots: Vec::new(),
        };

        // 1. A current-value slot per signal; register inits materialized.
        for s in &module.signals {
            let slot = b.alloc(s.width);
            if let (SignalKind::Reg, Some(init)) = (&s.kind, &s.init) {
                b.write_const(slot, init);
            }
            b.sig_slots.push(slot);
        }

        // 2. Combinational drivers in topological order.
        for id in &order {
            let target = b.sig_slots[id.0];
            let name = module.signal(*id).name.clone();
            b.drive(&module, &module.assigns[id], target, &name)?;
        }

        // 3. Debug-print operands (read the settled state).
        let mut prints = Vec::with_capacity(module.prints.len());
        for p in &module.prints {
            let enable = b.expr(&module, &p.enable, None)?;
            let value = match &p.value {
                Some(v) => Some(b.expr(&module, v, None)?),
                None => None,
            };
            prints.push(TapePrint {
                enable,
                label: p.label.clone(),
                value,
            });
        }

        // 4. Register next-values into dedicated `next` slots, in id order.
        let mut reg_ids: Vec<SignalId> = module.reg_next.keys().copied().collect();
        reg_ids.sort();
        let mut reg_commits = Vec::with_capacity(reg_ids.len());
        for id in reg_ids {
            let sig = module.signal(id);
            let next = b.alloc(sig.width);
            b.drive(&module, &module.reg_next[&id], next, &sig.name)?;
            reg_commits.push((b.sig_slots[id.0], next));
        }

        // 5. Array-write operands.
        let mut writes = Vec::with_capacity(module.array_writes.len());
        for w in &module.array_writes {
            let decl = &module.arrays[w.array.0];
            let enable = b.expr(&module, &w.enable, None)?;
            let index = b.expr(&module, &w.index, None)?;
            let data = b.expr(&module, &w.data, None)?;
            if data.width() != decl.width {
                return Err(SimError::DriverWidth {
                    signal: decl.name.clone(),
                    expected: decl.width,
                    found: data.width(),
                });
            }
            writes.push(TapeWrite {
                array: w.array.0 as u32,
                enable,
                index,
                data,
            });
        }

        // 6. Word-packed memory images.
        let arrays = module
            .arrays
            .iter()
            .map(|a| {
                let wpe = words_for(a.width);
                let mut init = vec![0u64; wpe * a.depth];
                for (i, v) in a.init.iter().enumerate() {
                    let words = v.as_words();
                    init[i * wpe..i * wpe + words.len().min(wpe)]
                        .copy_from_slice(&words[..words.len().min(wpe)]);
                }
                TapeArray {
                    width: a.width as u32,
                    depth: a.depth as u32,
                    wpe: wpe as u32,
                    init,
                }
            })
            .collect();

        let reg_fp = module
            .iter_signals()
            .filter(|(_, s)| s.kind == SignalKind::Reg)
            .map(|(id, _)| b.sig_slots[id.0])
            .collect();

        let mut tape = Tape {
            ops: b.ops,
            regions: Vec::new(),
            sig_region: Vec::new(),
            commit_region: Vec::new(),
            array_regions: Vec::new(),
            sig_slots: b.sig_slots,
            reg_commits,
            reg_fp,
            writes,
            prints,
            arrays,
            init_arena: b.arena,
        };
        if opts.fuse {
            let protected = protected_offs(&tape);
            tape.ops = fuse_ops(std::mem::take(&mut tape.ops), &protected);
        }
        partition_regions(&mut tape, opts.dirty_regions, opts.fuse);
        Ok(tape)
    }

    /// Histogram of op mnemonics over the settle program (data for
    /// choosing future fusion candidates; `bench_sim --op-mix`).
    pub(crate) fn op_mix(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for op in &self.ops {
            *counts.entry(op.mnemonic()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of settle regions (1 when dirty-region partitioning is off
    /// or the whole design is one connected input cone).
    pub(crate) fn region_count(&self) -> usize {
        self.regions.len()
    }
}

// ---- tape optimization: superinstruction fusion + region partition ------

/// Slot offsets that must keep their lowered values: signal slots,
/// register next-value slots, and every commit-time operand (print
/// enables/values, array-write enables/indices/data). Everything else is
/// a lowering temp, eligible for elimination when written and read
/// exactly once.
fn protected_offs(t: &Tape) -> std::collections::HashSet<u32> {
    let mut p: std::collections::HashSet<u32> = t.sig_slots.iter().map(|s| s.off).collect();
    for (cur, next) in &t.reg_commits {
        p.insert(cur.off);
        p.insert(next.off);
    }
    for pr in &t.prints {
        p.insert(pr.enable.off);
        if let Some(v) = pr.value {
            p.insert(v.off);
        }
    }
    for w in &t.writes {
        p.insert(w.enable.off);
        p.insert(w.index.off);
        p.insert(w.data.off);
    }
    p
}

/// The superinstruction fusion pass: repeated peephole rewrites over the
/// op list until a fixpoint (bounded). Each rewrite eliminates a
/// single-def single-use unprotected temp, so values in every observable
/// slot — and therefore outputs, prints, toggle counts, and fingerprints
/// — are bit-identical to the unfused tape.
fn fuse_ops(mut ops: Vec<Op>, protected: &std::collections::HashSet<u32>) -> Vec<Op> {
    for _ in 0..4 {
        let before = ops.len();
        ops = fuse_pass(ops, protected);
        if ops.len() == before {
            break;
        }
    }
    ops
}

/// Views an op as a two-input bitwise op, for the `Logic3` fusion rule.
fn as_bw(op: &Op) -> Option<(Slot, Slot, Slot, BwKind)> {
    match op {
        Op::And { dst, a, b } => Some((*dst, *a, *b, BwKind::And)),
        Op::Or { dst, a, b } => Some((*dst, *a, *b, BwKind::Or)),
        Op::Xor { dst, a, b } => Some((*dst, *a, *b, BwKind::Xor)),
        _ => None,
    }
}

fn fuse_pass(ops: Vec<Op>, protected: &std::collections::HashSet<u32>) -> Vec<Op> {
    use std::collections::HashMap;
    let mut defs: HashMap<u32, u32> = HashMap::new();
    let mut uses: HashMap<u32, u32> = HashMap::new();
    let mut slots = Vec::new();
    for op in &ops {
        if let Some(d) = op.dst_off() {
            *defs.entry(d).or_insert(0) += 1;
        }
        op.slots(&mut slots);
        for s in &slots[1..] {
            *uses.entry(s.off).or_insert(0) += 1;
        }
    }
    let temp = |off: u32| -> bool {
        !protected.contains(&off)
            && defs.get(&off).copied().unwrap_or(0) == 1
            && uses.get(&off).copied().unwrap_or(0) == 1
    };

    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        if i + 1 < ops.len() {
            let fused = match (&ops[i], &ops[i + 1]) {
                // slice → resize: keep only the kept bits of the slice.
                (Op::Slice { dst: t, src, lo }, Op::Resize { dst, src: s2 })
                    if s2.off == t.off && temp(t.off) && dst.width <= t.width =>
                {
                    Some(Op::Slice {
                        dst: *dst,
                        src: *src,
                        lo: *lo,
                    })
                }
                // slice of slice: offsets add while the inner window covers
                // the outer read.
                (
                    Op::Slice {
                        dst: t,
                        src,
                        lo: lo1,
                    },
                    Op::Slice {
                        dst,
                        src: s2,
                        lo: lo2,
                    },
                ) if s2.off == t.off && temp(t.off) && lo2 + dst.width <= t.width => {
                    Some(Op::Slice {
                        dst: *dst,
                        src: *src,
                        lo: lo1 + lo2,
                    })
                }
                // resize of resize: the middle hop is redundant when it
                // either keeps all final bits or all source bits.
                (Op::Resize { dst: t, src }, Op::Resize { dst, src: s2 })
                    if s2.off == t.off
                        && temp(t.off)
                        && (dst.width <= t.width || t.width >= src.width) =>
                {
                    Some(Op::Resize {
                        dst: *dst,
                        src: *src,
                    })
                }
                // resize → slice: read straight from the source when the
                // slice window lies inside the resize (or the resize was a
                // pure zero-extension).
                (Op::Resize { dst: t, src }, Op::Slice { dst, src: s2, lo })
                    if s2.off == t.off
                        && temp(t.off)
                        && (lo + dst.width <= t.width || t.width >= src.width) =>
                {
                    Some(Op::Slice {
                        dst: *dst,
                        src: *src,
                        lo: *lo,
                    })
                }
                // add ladder: (a + b) + c with the intermediate sum
                // unobservable. Exact because all widths are equal, so the
                // intermediate mod-2^w reduction commutes with the outer add.
                (Op::Add { dst: t, a, b }, Op::Add { dst, a: x, b: y })
                    if temp(t.off) && (x.off == t.off) != (y.off == t.off) =>
                {
                    let c = if x.off == t.off { *y } else { *x };
                    Some(Op::Add3 {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        c,
                    })
                }
                _ => None,
            };
            // Bitwise chain: (a <op> b) <op> c with the intermediate
            // unobservable, any mix of and/or/xor. Requires all five
            // widths equal: bitwise ops are word-local, so with equal
            // widths the intermediate mask is a no-op and the fused
            // result is bit-identical.
            let fused = fused.or_else(|| {
                let (t, a, b, first) = as_bw(&ops[i])?;
                let (dst, x, y, second) = as_bw(&ops[i + 1])?;
                if !temp(t.off) || (x.off == t.off) == (y.off == t.off) {
                    return None;
                }
                let c = if x.off == t.off { y } else { x };
                if [t.width, a.width, b.width, c.width]
                    .iter()
                    .any(|w| *w != dst.width)
                {
                    return None;
                }
                Some(Op::Logic3 {
                    dst,
                    a,
                    b,
                    c,
                    first,
                    second,
                })
            });
            if let Some(op) = fused {
                out.push(op);
                i += 2;
                continue;
            }
        }
        // concat of slice/resize temps → one bit-field gather. Each
        // foldable part's defining op is removed from the already-emitted
        // prefix (safe: ops are side-effect-free and single-assignment,
        // the temp has no other reader, and the part source's def
        // precedes the removed op, hence also the gather). Non-foldable
        // parts become whole-source fields (src_lo 0), exactly the
        // original concat semantics.
        if let Op::Concat { dst, parts } = &ops[i] {
            let mut gparts = Vec::with_capacity(parts.len());
            let mut remove = Vec::new();
            for (part, lo) in parts.iter() {
                let def = if temp(part.off) {
                    out.iter()
                        .enumerate()
                        .rev()
                        .find(|(_, o)| o.dst_off() == Some(part.off))
                        .and_then(|(j, o)| match o {
                            Op::Slice { src, lo: slo, .. } => Some((j, *src, *slo)),
                            Op::Resize { src, .. } => Some((j, *src, 0)),
                            _ => None,
                        })
                } else {
                    None
                };
                match def {
                    Some((j, src, src_lo)) => {
                        remove.push(j);
                        gparts.push(GatherPart {
                            src,
                            dst_lo: *lo,
                            src_lo,
                            width: part.width,
                        });
                    }
                    None => gparts.push(GatherPart {
                        src: *part,
                        dst_lo: *lo,
                        src_lo: 0,
                        width: part.width,
                    }),
                }
            }
            if !remove.is_empty() {
                remove.sort_unstable();
                for j in remove.into_iter().rev() {
                    out.remove(j);
                }
                out.push(Op::Gather {
                    dst: *dst,
                    parts: gparts.into_boxed_slice(),
                });
                i += 1;
                continue;
            }
        }
        // else-chained mux run → one priority-select superinstruction.
        if let Op::Mux { dst, cond, t, e } = &ops[i] {
            let mut cases = vec![(*cond, *t)];
            let mut cur = *dst;
            let default = *e;
            let mut j = i + 1;
            while j < ops.len() {
                if let Op::Mux {
                    dst: d2,
                    cond: c2,
                    t: t2,
                    e: e2,
                } = &ops[j]
                {
                    if e2.off == cur.off && temp(cur.off) {
                        cases.push((*c2, *t2));
                        cur = *d2;
                        j += 1;
                        continue;
                    }
                }
                break;
            }
            if cases.len() >= 2 {
                // The outermost (last-lowered) mux has highest priority.
                cases.reverse();
                out.push(Op::MuxChain {
                    dst: cur,
                    cases: cases.into_boxed_slice(),
                    default,
                });
                i = j;
                continue;
            }
        }
        out.push(ops[i].clone());
        i += 1;
    }
    out
}

/// Partitions the op list into settle regions — the weakly connected
/// components of the op graph under "shares a dynamic slot" — then
/// reorders it region-contiguous (stably, preserving each region's
/// topological order) and coalesces adjacent copies within regions.
///
/// Dynamic slots are those whose value can change between settles:
/// anything an op writes, plus every signal slot (inputs change via
/// pokes, register currents via commits). Materialized constants are
/// excluded, so sharing a constant does not merge unrelated cones.
/// Because components are maximal, ops in different regions share *no*
/// dynamic slot — a clean region's outputs are already settled, and
/// skipping it can never be observed by another region.
fn partition_regions(tape: &mut Tape, enabled: bool, coalesce: bool) {
    use std::collections::HashMap;
    let nops = tape.ops.len();

    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }
    fn union(uf: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(uf, a), find(uf, b));
        if ra != rb {
            uf[ra] = rb;
        }
    }

    let mut uf: Vec<usize> = (0..nops).collect();
    let mut slots = Vec::new();
    if enabled {
        let mut dynamic: std::collections::HashSet<u32> =
            tape.sig_slots.iter().map(|s| s.off).collect();
        for op in &tape.ops {
            if let Some(d) = op.dst_off() {
                dynamic.insert(d);
            }
        }
        let mut owner: HashMap<u32, usize> = HashMap::new();
        for (i, op) in tape.ops.iter().enumerate() {
            op.slots(&mut slots);
            for s in &slots {
                if !dynamic.contains(&s.off) {
                    continue;
                }
                match owner.entry(s.off) {
                    std::collections::hash_map::Entry::Occupied(o) => union(&mut uf, *o.get(), i),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(i);
                    }
                }
            }
        }
    } else if nops > 0 {
        for i in 1..nops {
            union(&mut uf, 0, i);
        }
    }

    // Region ids in order of first appearance; ops bucketed stably.
    let mut region_of_root: HashMap<usize, u32> = HashMap::new();
    let mut op_region: Vec<u32> = Vec::with_capacity(nops);
    let mut buckets: Vec<Vec<Op>> = Vec::new();
    for (i, op) in tape.ops.iter().enumerate() {
        let root = find(&mut uf, i);
        let next_id = region_of_root.len() as u32;
        let rid = *region_of_root.entry(root).or_insert(next_id);
        if rid as usize == buckets.len() {
            buckets.push(Vec::new());
        }
        op_region.push(rid);
        buckets[rid as usize].push(op.clone());
    }

    // Slot offset → region (before coalescing erases Copy slots).
    let mut slot_region: HashMap<u32, u32> = HashMap::new();
    for (i, op) in tape.ops.iter().enumerate() {
        op.slots(&mut slots);
        for s in &slots {
            slot_region.entry(s.off).or_insert(op_region[i]);
        }
    }

    // Within-region copy coalescing: adjacent Copy ops over contiguous
    // word ranges become one block copy (safe: same region, same order).
    if coalesce {
        for ops in &mut buckets {
            let mut merged: Vec<Op> = Vec::with_capacity(ops.len());
            for op in ops.drain(..) {
                if let Op::Copy { dst, src } = op {
                    match merged.last_mut() {
                        Some(Op::Copy { dst: d1, src: s1 })
                            if dst.off == d1.off + d1.words && src.off == s1.off + s1.words =>
                        {
                            let repl = Op::CopyRange {
                                dst_off: d1.off,
                                src_off: s1.off,
                                words: d1.words + dst.words,
                            };
                            *merged.last_mut().unwrap() = repl;
                            continue;
                        }
                        Some(Op::CopyRange {
                            dst_off,
                            src_off,
                            words,
                        }) if dst.off == *dst_off + *words && src.off == *src_off + *words => {
                            *words += dst.words;
                            continue;
                        }
                        _ => {}
                    }
                    merged.push(Op::Copy { dst, src });
                } else {
                    merged.push(op);
                }
            }
            *ops = merged;
        }
    }

    let mut ops = Vec::with_capacity(nops);
    let mut regions = Vec::with_capacity(buckets.len());
    for bucket in buckets {
        let start = ops.len() as u32;
        ops.extend(bucket);
        regions.push((start, ops.len() as u32));
    }
    tape.ops = ops;
    tape.regions = regions;

    tape.sig_region = tape
        .sig_slots
        .iter()
        .map(|s| slot_region.get(&s.off).copied().unwrap_or(u32::MAX))
        .collect();
    tape.commit_region = tape
        .reg_commits
        .iter()
        .map(|(cur, _)| slot_region.get(&cur.off).copied().unwrap_or(u32::MAX))
        .collect();
    let mut array_regions: Vec<Vec<u32>> = vec![Vec::new(); tape.arrays.len()];
    for (i, op) in tape.ops.iter().enumerate() {
        if let Op::ArrayRead { array, .. } = op {
            // Recompute the region from the final (reordered) index.
            let rid = tape
                .regions
                .iter()
                .position(|(s, e)| (*s as usize..*e as usize).contains(&i))
                .expect("op inside some region") as u32;
            let regs = &mut array_regions[*array as usize];
            if !regs.contains(&rid) {
                regs.push(rid);
            }
        }
    }
    tape.array_regions = array_regions;
}

// ---- word-level helpers -------------------------------------------------

fn any_set(arena: &[u64], s: Slot) -> bool {
    arena[s.range()].iter().any(|w| *w != 0)
}

fn zero_slot(arena: &mut [u64], s: Slot) {
    arena[s.range()].fill(0);
}

fn copy_slot(arena: &mut [u64], dst: Slot, src: Slot) {
    let (d, s) = (dst.off(), src.off());
    for k in 0..dst.words() {
        arena[d + k] = arena[s + k];
    }
}

/// Reads `n` (≤ 64) bits of `s` starting at bit `lo`; bits past the slot's
/// storage are zero (slot values keep their high bits masked).
fn read_chunk(arena: &[u64], s: Slot, lo: usize, n: usize) -> u64 {
    let total = s.words() * 64;
    if lo >= total {
        return 0;
    }
    let wi = lo / 64;
    let sh = lo % 64;
    let mut v = arena[s.off() + wi] >> sh;
    if sh != 0 && wi + 1 < s.words() {
        v |= arena[s.off() + wi + 1] << (64 - sh);
    }
    if n < 64 {
        v &= (1u64 << n) - 1;
    }
    v
}

/// ORs `n` (≤ 64) bits into `s` starting at bit `lo`. The target bits must
/// currently be zero (callers zero the destination first).
fn or_chunk(arena: &mut [u64], s: Slot, lo: usize, n: usize, val: u64) {
    let wi = lo / 64;
    let sh = lo % 64;
    let v = if n < 64 { val & ((1u64 << n) - 1) } else { val };
    arena[s.off() + wi] |= v << sh;
    if sh != 0 && sh + n > 64 {
        arena[s.off() + wi + 1] |= v >> (64 - sh);
    }
}

/// ORs `n` bits of `src` (starting at `src_lo`) into `dst` at `dst_lo`.
fn or_bits(arena: &mut [u64], dst: Slot, dst_lo: usize, src: Slot, src_lo: usize, n: usize) {
    let mut k = 0;
    while k < n {
        let step = (n - k).min(64);
        let v = read_chunk(arena, src, src_lo + k, step);
        or_chunk(arena, dst, dst_lo + k, step, v);
        k += step;
    }
}

fn unsigned_lt(arena: &[u64], a: Slot, b: Slot) -> bool {
    for k in (0..a.words()).rev() {
        let (x, y) = (arena[a.off() + k], arena[b.off() + k]);
        if x != y {
            return x < y;
        }
    }
    false
}

fn words_eq(arena: &[u64], a: Slot, b: Slot) -> bool {
    (0..a.words()).all(|k| arena[a.off() + k] == arena[b.off() + k])
}

/// The executor: one arena of current values, one snapshot for toggle
/// counting, word-packed memories, and a scratch buffer for
/// multiplications. All per-cycle work is allocation-free.
pub(crate) struct TapeEngine {
    tape: Arc<Tape>,
    arena: Vec<u64>,
    /// Previous settled arena (toggle counting).
    prev_arena: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    toggles: Vec<u64>,
    scratch: Vec<u64>,
    dirty: bool,
}

impl TapeEngine {
    pub(crate) fn new(tape: Arc<Tape>) -> Self {
        let arena = tape.init_arena.clone();
        let arrays = tape.arrays.iter().map(|a| a.init.clone()).collect();
        let n = tape.sig_slots.len();
        let max_words = tape
            .sig_slots
            .iter()
            .map(|s| s.words())
            .max()
            .unwrap_or(1)
            .max(
                tape.ops
                    .iter()
                    .map(|op| match op {
                        Op::Mul { dst, .. } => dst.words(),
                        _ => 1,
                    })
                    .max()
                    .unwrap_or(1),
            );
        TapeEngine {
            prev_arena: arena.clone(),
            arena,
            arrays,
            toggles: vec![0; n],
            scratch: vec![0; max_words],
            tape: Arc::clone(&tape),
            dirty: true,
        }
    }

    fn slot_bits(&self, s: Slot) -> Bits {
        Bits::from_words(s.width(), &self.arena[s.range()])
    }
}

/// Executes one op. `arrays` is read-only here: memories are only written
/// at the clock edge, never during a settle pass.
fn exec_op(
    op: &Op,
    arena: &mut [u64],
    scratch: &mut [u64],
    arrays: &[Vec<u64>],
    metas: &[TapeArray],
) {
    match op {
        Op::Copy { dst, src } => copy_slot(arena, *dst, *src),
        Op::Not { dst, a } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = !arena[a.off() + k];
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Neg { dst, a } => {
            let mut borrow = 0u64;
            for k in 0..dst.words() {
                let y = arena[a.off() + k];
                let (d1, b1) = 0u64.overflowing_sub(y);
                let (d2, b2) = d1.overflowing_sub(borrow);
                arena[dst.off() + k] = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Add { dst, a, b } => {
            let mut carry = 0u64;
            for k in 0..dst.words() {
                let (s1, c1) = arena[a.off() + k].overflowing_add(arena[b.off() + k]);
                let (s2, c2) = s1.overflowing_add(carry);
                arena[dst.off() + k] = s2;
                carry = u64::from(c1) | u64::from(c2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Sub { dst, a, b } => {
            let mut borrow = 0u64;
            for k in 0..dst.words() {
                let (d1, b1) = arena[a.off() + k].overflowing_sub(arena[b.off() + k]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                arena[dst.off() + k] = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Mul { dst, a, b } => {
            let w = dst.words();
            let scratch = &mut scratch[..w];
            scratch.fill(0);
            for i in 0..w {
                let ai = arena[a.off() + i];
                if ai == 0 {
                    continue;
                }
                let mut carry: u128 = 0;
                for j in 0..w - i {
                    let cur = scratch[i + j] as u128
                        + (ai as u128) * (arena[b.off() + j] as u128)
                        + carry;
                    scratch[i + j] = cur as u64;
                    carry = cur >> 64;
                }
            }
            arena[dst.range()].copy_from_slice(scratch);
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::And { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] & arena[b.off() + k];
            }
        }
        Op::Or { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] | arena[b.off() + k];
            }
        }
        Op::Xor { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] ^ arena[b.off() + k];
            }
        }
        Op::Cmp { dst, a, b, kind } => {
            let r = match kind {
                CmpKind::Eq => words_eq(arena, *a, *b),
                CmpKind::Ne => !words_eq(arena, *a, *b),
                CmpKind::Lt => unsigned_lt(arena, *a, *b),
                CmpKind::Le => !unsigned_lt(arena, *b, *a),
                CmpKind::Gt => unsigned_lt(arena, *b, *a),
                CmpKind::Ge => !unsigned_lt(arena, *a, *b),
            };
            arena[dst.off()] = u64::from(r);
        }
        Op::Red { dst, a, kind } => {
            let r = match kind {
                RedKind::And => {
                    (0..a.words() - 1).all(|k| arena[a.off() + k] == u64::MAX)
                        && arena[a.off() + a.words() - 1] == a.top_mask()
                }
                RedKind::Or => any_set(arena, *a),
                RedKind::Xor => {
                    arena[a.range()]
                        .iter()
                        .fold(0u32, |acc, w| acc ^ w.count_ones())
                        % 2
                        == 1
                }
                RedKind::LogicNot => !any_set(arena, *a),
            };
            arena[dst.off()] = u64::from(r);
        }
        Op::Shift { dst, a, amt, left } => {
            let n = arena[amt.off()].min(u64::from(u32::MAX)) as usize;
            let width = dst.width();
            zero_slot(arena, *dst);
            if n < width {
                if *left {
                    or_bits(arena, *dst, n, *a, 0, width - n);
                } else {
                    or_bits(arena, *dst, 0, *a, n, width - n);
                }
            }
        }
        Op::Mux { dst, cond, t, e } => {
            let src = if any_set(arena, *cond) { *t } else { *e };
            copy_slot(arena, *dst, src);
        }
        Op::Slice { dst, src, lo } => {
            zero_slot(arena, *dst);
            or_bits(arena, *dst, 0, *src, *lo as usize, dst.width());
        }
        Op::Concat { dst, parts } => {
            zero_slot(arena, *dst);
            for (part, lo) in parts.iter() {
                or_bits(arena, *dst, *lo as usize, *part, 0, part.width());
            }
        }
        Op::Resize { dst, src } => {
            zero_slot(arena, *dst);
            let n = dst.width().min(src.width());
            or_bits(arena, *dst, 0, *src, 0, n);
        }
        Op::Gather { dst, parts } => {
            zero_slot(arena, *dst);
            for p in parts.iter() {
                or_bits(
                    arena,
                    *dst,
                    p.dst_lo as usize,
                    p.src,
                    p.src_lo as usize,
                    p.width as usize,
                );
            }
        }
        Op::ArrayRead { dst, array, index } => {
            let meta = &metas[*array as usize];
            let idx = arena[index.off()] as usize;
            if idx < meta.depth as usize {
                let wpe = meta.wpe as usize;
                let elem = &arrays[*array as usize][idx * wpe..(idx + 1) * wpe];
                arena[dst.range()].copy_from_slice(elem);
            } else {
                zero_slot(arena, *dst);
            }
        }
        Op::Add3 { dst, a, b, c } => {
            let mut carry: u128 = 0;
            for k in 0..dst.words() {
                let cur = arena[a.off() + k] as u128
                    + arena[b.off() + k] as u128
                    + arena[c.off() + k] as u128
                    + carry;
                arena[dst.off() + k] = cur as u64;
                carry = cur >> 64;
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Logic3 {
            dst,
            a,
            b,
            c,
            first,
            second,
        } => {
            for k in 0..dst.words() {
                let t = bw(arena[a.off() + k], arena[b.off() + k], *first);
                arena[dst.off() + k] = bw(t, arena[c.off() + k], *second);
            }
        }
        Op::MuxChain {
            dst,
            cases,
            default,
        } => {
            let mut src = *default;
            for (c, v) in cases.iter() {
                if any_set(arena, *c) {
                    src = *v;
                    break;
                }
            }
            copy_slot(arena, *dst, src);
        }
        Op::CopyRange {
            dst_off,
            src_off,
            words,
        } => {
            let (d, s, w) = (*dst_off as usize, *src_off as usize, *words as usize);
            arena.copy_within(s..s + w, d);
        }
    }
}

impl ValueSource for TapeEngine {
    fn signal(&self, id: SignalId) -> Bits {
        self.slot_bits(self.tape.sig_slots[id.0])
    }

    fn array_read(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        if index < meta.depth as usize {
            let wpe = meta.wpe as usize;
            Bits::from_words(
                meta.width as usize,
                &self.arrays[array.0][index * wpe..(index + 1) * wpe],
            )
        } else {
            Bits::zero(meta.width as usize)
        }
    }
}

impl SimBackend for TapeEngine {
    fn kind(&self) -> Backend {
        Backend::Compiled
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        // Opened only when there is work: the settle-skip early return
        // above stays untraced and pays nothing.
        let _sp = anvil_trace::span("sim", "settle");
        let tape = Arc::clone(&self.tape);
        for op in &tape.ops {
            exec_op(
                op,
                &mut self.arena,
                &mut self.scratch,
                &self.arrays,
                &tape.arrays,
            );
        }
        self.dirty = false;
    }

    fn commit(&mut self, cycle: u64, log: &mut Vec<(u64, String)>) {
        self.settle();
        let tape = Arc::clone(&self.tape);

        for p in &tape.prints {
            if any_set(&self.arena, p.enable) {
                let msg = match p.value {
                    Some(v) => format!("{}: {:x}", p.label, self.slot_bits(v)),
                    None => p.label.clone(),
                };
                log.push((cycle, msg));
            }
        }

        for (i, s) in tape.sig_slots.iter().enumerate() {
            let mut t = 0u32;
            for k in s.range() {
                t += (self.arena[k] ^ self.prev_arena[k]).count_ones();
            }
            self.toggles[i] += u64::from(t);
        }
        self.prev_arena.copy_from_slice(&self.arena);

        // Array writes read the pre-edge arena (their operand slots may
        // alias register current-value slots), so they commit first; the
        // written memories are only read back at the next settle.
        for w in &tape.writes {
            if any_set(&self.arena, w.enable) {
                let meta = &tape.arrays[w.array as usize];
                let idx = self.arena[w.index.off()] as usize;
                if idx < meta.depth as usize {
                    let wpe = meta.wpe as usize;
                    self.arrays[w.array as usize][idx * wpe..(idx + 1) * wpe]
                        .copy_from_slice(&self.arena[w.data.range()]);
                }
            }
        }
        for (cur, next) in &tape.reg_commits {
            copy_slot(&mut self.arena, *cur, *next);
        }
        self.dirty = true;
    }

    fn peek_id(&self, id: SignalId) -> Bits {
        self.slot_bits(self.tape.sig_slots[id.0])
    }

    fn poke_id(&mut self, id: SignalId, value: Bits) {
        let s = self.tape.sig_slots[id.0];
        // Skip the dirty flag (and thus the eager re-settle) when the
        // poked value is already the current one — testbenches re-drive
        // constant handshake lines every cycle.
        if self.arena[s.range()] == *value.as_words() {
            return;
        }
        self.arena[s.range()].copy_from_slice(value.as_words());
        self.dirty = true;
    }

    fn peek_array(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        Bits::from_words(
            meta.width as usize,
            &self.arrays[array.0][index * wpe..(index + 1) * wpe],
        )
    }

    fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits) {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        self.arrays[array.0][index * wpe..(index + 1) * wpe].copy_from_slice(value.as_words());
        self.dirty = true;
    }

    fn eval(&self, e: &Expr) -> Bits {
        eval_expr(e, self)
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = StateHasher::new();
        for s in &self.tape.reg_fp {
            h.add(s.width(), &self.arena[s.range()]);
        }
        for (i, meta) in self.tape.arrays.iter().enumerate() {
            let wpe = meta.wpe as usize;
            for e in 0..meta.depth as usize {
                h.add(meta.width as usize, &self.arrays[i][e * wpe..(e + 1) * wpe]);
            }
        }
        h.finish()
    }

    fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    fn reset(&mut self) {
        self.arena.copy_from_slice(&self.tape.init_arena);
        self.prev_arena.copy_from_slice(&self.arena);
        for (store, meta) in self.arrays.iter_mut().zip(&self.tape.arrays) {
            store.copy_from_slice(&meta.init);
        }
        self.toggles.fill(0);
        self.dirty = true;
    }
}

// ---- multi-lane execution ----------------------------------------------
//
// The same tape, executed across `L` independent stimulus lanes at once.
// The state arena becomes a structure-of-arrays at word granularity:
// logical arena word `w` of lane `l` lives at `arena[w * L + l]`, so a
// slot's storage is the contiguous range `s.off()*L .. (s.off() +
// s.words())*L`. Every op decodes once and its inner loop runs across
// all lanes over contiguous memory — the dispatch cost is amortized
// `L`-fold and the lane loops auto-vectorize.
//
// `L` is a const generic, monomorphized for every width in
// [`LANE_WIDTHS`] (4 · u64 = one AVX2 register, 8 = one AVX-512
// register, 16/32 = unrolled multiples that amortize the decode
// further). The [`LaneGroup`] trait object erases the width so
// `SimBatch` can mix strides — full-width groups plus a narrower tail.
//
// Lane-divergent behaviour (mux selects, shift amounts, memory indices,
// print enables, toggle counts, fingerprints) is handled per lane; the
// result is bit-identical to running `L` scalar [`TapeEngine`]s.
//
// Settle-skipping: the tape's regions (see [`Tape::regions`]) each carry
// a dirty bit. A poke that changes an input dirties the region reading
// it; a commit dirties the regions reading each register that actually
// changed and each memory actually written; settle executes only dirty
// regions. Clean regions' slots already hold settled values, and no
// region reads another's slots, so the skip is unobservable.

#[inline]
fn lane_base<const L: usize>(s: Slot, k: usize) -> usize {
    (s.off() + k) * L
}

/// Loads one laned word row as a fixed-size array (two AVX-512 loads at
/// `L = 16`). The copy decouples source reads from destination writes:
/// the per-op lane loops then carry no aliasing or bounds checks and
/// compile to straight vector code.
#[inline(always)]
fn row<const L: usize>(arena: &[u64], base: usize) -> [u64; L] {
    arena[base..base + L].try_into().unwrap()
}

/// Mutable view of one laned word row with compile-time length.
#[inline(always)]
fn row_mut<const L: usize>(arena: &mut [u64], base: usize) -> &mut [u64; L] {
    (&mut arena[base..base + L]).try_into().unwrap()
}

fn zero_slot_lane<const L: usize>(arena: &mut [u64], s: Slot, l: usize) {
    for k in 0..s.words() {
        arena[lane_base::<L>(s, k) + l] = 0;
    }
}

fn any_set_lane<const L: usize>(arena: &[u64], s: Slot, l: usize) -> bool {
    (0..s.words()).any(|k| arena[lane_base::<L>(s, k) + l] != 0)
}

/// Lane-indexed [`read_chunk`]: `n` (≤ 64) bits of lane `l` of `s`
/// starting at bit `lo`.
fn read_chunk_lane<const L: usize>(arena: &[u64], s: Slot, lo: usize, n: usize, l: usize) -> u64 {
    let total = s.words() * 64;
    if lo >= total {
        return 0;
    }
    let wi = lo / 64;
    let sh = lo % 64;
    let mut v = arena[lane_base::<L>(s, wi) + l] >> sh;
    if sh != 0 && wi + 1 < s.words() {
        v |= arena[lane_base::<L>(s, wi + 1) + l] << (64 - sh);
    }
    if n < 64 {
        v &= (1u64 << n) - 1;
    }
    v
}

/// Lane-indexed [`or_chunk`]; target bits must currently be zero.
fn or_chunk_lane<const L: usize>(
    arena: &mut [u64],
    s: Slot,
    lo: usize,
    n: usize,
    val: u64,
    l: usize,
) {
    let wi = lo / 64;
    let sh = lo % 64;
    let v = if n < 64 { val & ((1u64 << n) - 1) } else { val };
    arena[lane_base::<L>(s, wi) + l] |= v << sh;
    if sh != 0 && sh + n > 64 {
        arena[lane_base::<L>(s, wi + 1) + l] |= v >> (64 - sh);
    }
}

/// Per-lane [`or_bits`] (used where the bit offset differs per lane, i.e.
/// run-time shifts).
fn or_bits_lane<const L: usize>(
    arena: &mut [u64],
    dst: Slot,
    dst_lo: usize,
    src: Slot,
    src_lo: usize,
    n: usize,
    l: usize,
) {
    let mut k = 0;
    while k < n {
        let step = (n - k).min(64);
        let v = read_chunk_lane::<L>(arena, src, src_lo + k, step, l);
        or_chunk_lane::<L>(arena, dst, dst_lo + k, step, v, l);
        k += step;
    }
}

/// All-lane funnel-shift extract for [`Op::Slice`]: each destination word
/// is `(src[wi+k] >> sh) | (src[wi+k+1] << (64-sh))`, so the shift
/// arithmetic is decided once per word and the lane loops are straight
/// (branch-free, auto-vectorizable) passes over contiguous words.
fn slice_lanes<const L: usize>(arena: &mut [u64], dst: Slot, src: Slot, lo: usize) {
    let (wi, sh) = (lo / 64, lo % 64);
    let sw = src.words();
    for k in 0..dst.words() {
        let db = lane_base::<L>(dst, k);
        if wi + k >= sw {
            *row_mut::<L>(arena, db) = [0u64; L];
            continue;
        }
        let lo_r = row::<L>(arena, lane_base::<L>(src, wi + k));
        if sh == 0 {
            *row_mut::<L>(arena, db) = lo_r;
        } else {
            let hi_r = if wi + k + 1 < sw {
                row::<L>(arena, lane_base::<L>(src, wi + k + 1))
            } else {
                [0u64; L]
            };
            let out = row_mut::<L>(arena, db);
            for l in 0..L {
                out[l] = (lo_r[l] >> sh) | (hi_r[l] << (64 - sh));
            }
        }
    }
    mask_top_lanes::<L>(arena, dst);
}

/// All-lane bit deposit for [`Op::Concat`]/[`Op::Resize`]: ORs the low
/// `n` bits of `src` into `dst` starting at bit `dst_lo` (target bits
/// must be zero). One shift decision per source word, branch-free lane
/// loops.
fn deposit_lanes<const L: usize>(arena: &mut [u64], dst: Slot, dst_lo: usize, src: Slot, n: usize) {
    let mut k = 0;
    while k * 64 < n {
        let bits = (n - k * 64).min(64);
        let m = if bits < 64 {
            (1u64 << bits) - 1
        } else {
            u64::MAX
        };
        let lo = dst_lo + k * 64;
        let (wi, sh) = (lo / 64, lo % 64);
        let s_r = row::<L>(arena, lane_base::<L>(src, k));
        let d = row_mut::<L>(arena, lane_base::<L>(dst, wi));
        if sh == 0 {
            for l in 0..L {
                d[l] |= s_r[l] & m;
            }
        } else {
            for l in 0..L {
                d[l] |= (s_r[l] & m) << sh;
            }
            if sh + bits > 64 {
                let d2 = row_mut::<L>(arena, lane_base::<L>(dst, wi + 1));
                for l in 0..L {
                    d2[l] |= (s_r[l] & m) >> (64 - sh);
                }
            }
        }
        k += 1;
    }
}

/// All-lane bit-field move for one [`Op::Gather`] part: ORs `n` bits of
/// `src` starting at `src_lo` into `dst` at `dst_lo` (bits past the top
/// of `src` read as zero; target bits must be zero). A funnel-shift read
/// feeds a shifted deposit, 64 bits per chunk — shift decisions happen
/// once per chunk, the lane loops are branch-free.
fn gather_lanes<const L: usize>(
    arena: &mut [u64],
    dst: Slot,
    dst_lo: usize,
    src: Slot,
    src_lo: usize,
    n: usize,
) {
    let sw = src.words();
    let mut k = 0;
    while k < n {
        let bits = (n - k).min(64);
        let m = if bits < 64 {
            (1u64 << bits) - 1
        } else {
            u64::MAX
        };
        let (swi, ssh) = ((src_lo + k) / 64, (src_lo + k) % 64);
        let mut v = [0u64; L];
        if swi < sw {
            let lo_r = row::<L>(arena, lane_base::<L>(src, swi));
            if ssh == 0 {
                v = lo_r;
            } else if ssh + bits <= 64 || swi + 1 >= sw {
                // The masked chunk lives entirely in the lo word (the
                // common case for byte-granular shuffles) — skip the hi
                // row read, the mask below kills those bits anyway.
                for l in 0..L {
                    v[l] = lo_r[l] >> ssh;
                }
            } else {
                let hi_r = row::<L>(arena, lane_base::<L>(src, swi + 1));
                for l in 0..L {
                    v[l] = (lo_r[l] >> ssh) | (hi_r[l] << (64 - ssh));
                }
            }
        }
        let (dwi, dsh) = ((dst_lo + k) / 64, (dst_lo + k) % 64);
        let d = row_mut::<L>(arena, lane_base::<L>(dst, dwi));
        if dsh == 0 {
            for l in 0..L {
                d[l] |= v[l] & m;
            }
        } else {
            for l in 0..L {
                d[l] |= (v[l] & m) << dsh;
            }
            if dsh + bits > 64 {
                let d2 = row_mut::<L>(arena, lane_base::<L>(dst, dwi + 1));
                for l in 0..L {
                    d2[l] |= (v[l] & m) >> (64 - dsh);
                }
            }
        }
        k += bits;
    }
}

fn unsigned_lt_lane<const L: usize>(arena: &[u64], a: Slot, b: Slot, l: usize) -> bool {
    for k in (0..a.words()).rev() {
        let (x, y) = (
            arena[lane_base::<L>(a, k) + l],
            arena[lane_base::<L>(b, k) + l],
        );
        if x != y {
            return x < y;
        }
    }
    false
}

/// Masks the top word of every lane of `s` down to its valid bits.
fn mask_top_lanes<const L: usize>(arena: &mut [u64], s: Slot) {
    let m = s.top_mask();
    if m == u64::MAX {
        return;
    }
    let top = row_mut::<L>(arena, lane_base::<L>(s, s.words() - 1));
    for v in top.iter_mut() {
        *v &= m;
    }
}

/// Zeroes every lane of `s` (fixed-size rows: plain vector stores, no
/// `memset` call for the typical one/two-word slot).
fn zero_slot_lanes<const L: usize>(arena: &mut [u64], s: Slot) {
    for k in 0..s.words() {
        *row_mut::<L>(arena, lane_base::<L>(s, k)) = [0u64; L];
    }
}

/// Executes one op across all lanes. `scratch` holds `L` lane-major
/// segments for multi-word multiplication.
fn exec_op_lanes<const L: usize>(
    op: &Op,
    arena: &mut [u64],
    scratch: &mut [u64],
    arrays: &[Vec<u64>],
    metas: &[TapeArray],
) {
    match op {
        Op::Copy { dst, src } => {
            for k in 0..src.words() {
                let r = row::<L>(arena, lane_base::<L>(*src, k));
                *row_mut::<L>(arena, lane_base::<L>(*dst, k)) = r;
            }
        }
        Op::Not { dst, a } => {
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    d[l] = !a_r[l];
                }
            }
            mask_top_lanes::<L>(arena, *dst);
        }
        Op::Neg { dst, a } => {
            let mut borrow = [0u64; L];
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    let (d1, b1) = 0u64.overflowing_sub(a_r[l]);
                    let (d2, b2) = d1.overflowing_sub(borrow[l]);
                    d[l] = d2;
                    borrow[l] = u64::from(b1) | u64::from(b2);
                }
            }
            mask_top_lanes::<L>(arena, *dst);
        }
        Op::Add { dst, a, b } => {
            let mut carry = [0u64; L];
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    let (s1, c1) = a_r[l].overflowing_add(b_r[l]);
                    let (s2, c2) = s1.overflowing_add(carry[l]);
                    d[l] = s2;
                    carry[l] = u64::from(c1) | u64::from(c2);
                }
            }
            mask_top_lanes::<L>(arena, *dst);
        }
        Op::Sub { dst, a, b } => {
            let mut borrow = [0u64; L];
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    let (d1, b1) = a_r[l].overflowing_sub(b_r[l]);
                    let (d2, b2) = d1.overflowing_sub(borrow[l]);
                    d[l] = d2;
                    borrow[l] = u64::from(b1) | u64::from(b2);
                }
            }
            mask_top_lanes::<L>(arena, *dst);
        }
        Op::Mul { dst, a, b } => {
            let w = dst.words();
            for l in 0..L {
                let acc = l * w;
                scratch[acc..acc + w].fill(0);
                for i in 0..w {
                    let ai = arena[lane_base::<L>(*a, i) + l];
                    if ai == 0 {
                        continue;
                    }
                    let mut carry: u128 = 0;
                    for j in 0..w - i {
                        let cur = scratch[acc + i + j] as u128
                            + (ai as u128) * (arena[lane_base::<L>(*b, j) + l] as u128)
                            + carry;
                        scratch[acc + i + j] = cur as u64;
                        carry = cur >> 64;
                    }
                }
                for k in 0..w {
                    arena[lane_base::<L>(*dst, k) + l] = scratch[acc + k];
                }
            }
            mask_top_lanes::<L>(arena, *dst);
        }
        Op::And { dst, a, b } => {
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    d[l] = a_r[l] & b_r[l];
                }
            }
        }
        Op::Or { dst, a, b } => {
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    d[l] = a_r[l] | b_r[l];
                }
            }
        }
        Op::Xor { dst, a, b } => {
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    d[l] = a_r[l] ^ b_r[l];
                }
            }
        }
        Op::Cmp { dst, a, b, kind } => {
            match kind {
                CmpKind::Eq | CmpKind::Ne => {
                    let mut diff = [0u64; L];
                    for k in 0..a.words() {
                        let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                        let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                        for l in 0..L {
                            diff[l] |= a_r[l] ^ b_r[l];
                        }
                    }
                    let want_eq = matches!(kind, CmpKind::Eq);
                    let d = row_mut::<L>(arena, dst.off() * L);
                    for l in 0..L {
                        d[l] = u64::from((diff[l] == 0) == want_eq);
                    }
                }
                // Ordered compares: branch-free single-word fast path
                // (the common case), word-scan per lane otherwise.
                _ if a.words() == 1 => {
                    let a_r = row::<L>(arena, a.off() * L);
                    let b_r = row::<L>(arena, b.off() * L);
                    let d = row_mut::<L>(arena, dst.off() * L);
                    for l in 0..L {
                        d[l] = u64::from(match kind {
                            CmpKind::Lt => a_r[l] < b_r[l],
                            CmpKind::Le => a_r[l] <= b_r[l],
                            CmpKind::Gt => a_r[l] > b_r[l],
                            _ => a_r[l] >= b_r[l],
                        });
                    }
                }
                CmpKind::Lt => {
                    for l in 0..L {
                        arena[dst.off() * L + l] =
                            u64::from(unsigned_lt_lane::<L>(arena, *a, *b, l));
                    }
                }
                CmpKind::Le => {
                    for l in 0..L {
                        arena[dst.off() * L + l] =
                            u64::from(!unsigned_lt_lane::<L>(arena, *b, *a, l));
                    }
                }
                CmpKind::Gt => {
                    for l in 0..L {
                        arena[dst.off() * L + l] =
                            u64::from(unsigned_lt_lane::<L>(arena, *b, *a, l));
                    }
                }
                CmpKind::Ge => {
                    for l in 0..L {
                        arena[dst.off() * L + l] =
                            u64::from(!unsigned_lt_lane::<L>(arena, *a, *b, l));
                    }
                }
            }
        }
        Op::Red { dst, a, kind } => match kind {
            RedKind::Or | RedKind::LogicNot => {
                let mut acc = [0u64; L];
                for k in 0..a.words() {
                    let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                    for l in 0..L {
                        acc[l] |= a_r[l];
                    }
                }
                let want_any = matches!(kind, RedKind::Or);
                let d = row_mut::<L>(arena, dst.off() * L);
                for l in 0..L {
                    d[l] = u64::from((acc[l] != 0) == want_any);
                }
            }
            RedKind::Xor => {
                let mut acc = [0u64; L];
                for k in 0..a.words() {
                    let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                    for l in 0..L {
                        acc[l] ^= a_r[l];
                    }
                }
                let d = row_mut::<L>(arena, dst.off() * L);
                for l in 0..L {
                    d[l] = u64::from(acc[l].count_ones() % 2 == 1);
                }
            }
            RedKind::And => {
                let mut all = [true; L];
                for k in 0..a.words() {
                    let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                    let expect = if k + 1 == a.words() {
                        a.top_mask()
                    } else {
                        u64::MAX
                    };
                    for l in 0..L {
                        all[l] &= a_r[l] == expect;
                    }
                }
                let d = row_mut::<L>(arena, dst.off() * L);
                for l in 0..L {
                    d[l] = u64::from(all[l]);
                }
            }
        },
        Op::Shift { dst, a, amt, left } => {
            let width = dst.width();
            // Shift amounts are frequently lane-uniform (constant
            // rotations, shared control): detect it and run the all-lane
            // funnel-shift path instead of the per-lane bit walk.
            let amt_r = row::<L>(arena, amt.off() * L);
            if amt.words() == 1 && amt_r.iter().all(|&v| v == amt_r[0]) {
                let n = amt_r[0].min(u64::from(u32::MAX)) as usize;
                if n >= width {
                    zero_slot_lanes::<L>(arena, *dst);
                } else if *left {
                    zero_slot_lanes::<L>(arena, *dst);
                    deposit_lanes::<L>(arena, *dst, n, *a, width - n);
                } else {
                    slice_lanes::<L>(arena, *dst, *a, n);
                }
                return;
            }
            for l in 0..L {
                let n = arena[amt.off() * L + l].min(u64::from(u32::MAX)) as usize;
                zero_slot_lane::<L>(arena, *dst, l);
                if n < width {
                    if *left {
                        or_bits_lane::<L>(arena, *dst, n, *a, 0, width - n, l);
                    } else {
                        or_bits_lane::<L>(arena, *dst, 0, *a, n, width - n, l);
                    }
                }
            }
        }
        Op::Mux { dst, cond, t, e } => {
            let mut mask = [0u64; L];
            for k in 0..cond.words() {
                let c_r = row::<L>(arena, lane_base::<L>(*cond, k));
                for l in 0..L {
                    mask[l] |= c_r[l];
                }
            }
            for m in &mut mask {
                *m = if *m != 0 { u64::MAX } else { 0 };
            }
            for k in 0..dst.words() {
                let t_r = row::<L>(arena, lane_base::<L>(*t, k));
                let e_r = row::<L>(arena, lane_base::<L>(*e, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    d[l] = (t_r[l] & mask[l]) | (e_r[l] & !mask[l]);
                }
            }
        }
        Op::Slice { dst, src, lo } => {
            slice_lanes::<L>(arena, *dst, *src, *lo as usize);
        }
        Op::Concat { dst, parts } => {
            zero_slot_lanes::<L>(arena, *dst);
            for (part, lo) in parts.iter() {
                deposit_lanes::<L>(arena, *dst, *lo as usize, *part, part.width());
            }
        }
        Op::Resize { dst, src } => {
            zero_slot_lanes::<L>(arena, *dst);
            let n = dst.width().min(src.width());
            deposit_lanes::<L>(arena, *dst, 0, *src, n);
        }
        Op::Gather { dst, parts } => {
            if dst.words() == 1 {
                // Single-word destination (the byte-shuffle common case):
                // every part is a single ≤64-bit chunk, so the whole
                // gather accumulates in one local row and the destination
                // is written exactly once — no zero pass, no per-part
                // read-modify-write of the destination row.
                let mut acc = [0u64; L];
                for p in parts.iter() {
                    let (bits, ssh) = (p.width as usize, p.src_lo as usize % 64);
                    let swi = p.src_lo as usize / 64;
                    let sw = p.src.words();
                    let m = if bits < 64 {
                        (1u64 << bits) - 1
                    } else {
                        u64::MAX
                    };
                    if swi >= sw {
                        continue;
                    }
                    let lo_r = row::<L>(arena, lane_base::<L>(p.src, swi));
                    let dsh = p.dst_lo as usize;
                    if ssh == 0 {
                        for l in 0..L {
                            acc[l] |= (lo_r[l] & m) << dsh;
                        }
                    } else if ssh + bits <= 64 || swi + 1 >= sw {
                        for l in 0..L {
                            acc[l] |= ((lo_r[l] >> ssh) & m) << dsh;
                        }
                    } else {
                        let hi_r = row::<L>(arena, lane_base::<L>(p.src, swi + 1));
                        for l in 0..L {
                            acc[l] |= (((lo_r[l] >> ssh) | (hi_r[l] << (64 - ssh))) & m) << dsh;
                        }
                    }
                }
                *row_mut::<L>(arena, dst.off() * L) = acc;
            } else {
                zero_slot_lanes::<L>(arena, *dst);
                for p in parts.iter() {
                    gather_lanes::<L>(
                        arena,
                        *dst,
                        p.dst_lo as usize,
                        p.src,
                        p.src_lo as usize,
                        p.width as usize,
                    );
                }
            }
        }
        Op::ArrayRead { dst, array, index } => {
            let meta = &metas[*array as usize];
            let wpe = meta.wpe as usize;
            let store = &arrays[*array as usize];
            for l in 0..L {
                let idx = arena[index.off() * L + l] as usize;
                if idx < meta.depth as usize {
                    for k in 0..wpe {
                        arena[lane_base::<L>(*dst, k) + l] = store[(idx * wpe + k) * L + l];
                    }
                } else {
                    zero_slot_lane::<L>(arena, *dst, l);
                }
            }
        }
        Op::Add3 { dst, a, b, c } => {
            let mut carry = [0u64; L];
            for k in 0..dst.words() {
                let (ab, bb, cb, db) = (
                    lane_base::<L>(*a, k),
                    lane_base::<L>(*b, k),
                    lane_base::<L>(*c, k),
                    lane_base::<L>(*dst, k),
                );
                for l in 0..L {
                    let cur = arena[ab + l] as u128
                        + arena[bb + l] as u128
                        + arena[cb + l] as u128
                        + carry[l] as u128;
                    arena[db + l] = cur as u64;
                    carry[l] = (cur >> 64) as u64;
                }
            }
            mask_top_lanes::<L>(arena, *dst);
        }
        Op::Logic3 {
            dst,
            a,
            b,
            c,
            first,
            second,
        } => {
            for k in 0..dst.words() {
                let a_r = row::<L>(arena, lane_base::<L>(*a, k));
                let b_r = row::<L>(arena, lane_base::<L>(*b, k));
                let c_r = row::<L>(arena, lane_base::<L>(*c, k));
                let d = row_mut::<L>(arena, lane_base::<L>(*dst, k));
                for l in 0..L {
                    d[l] = bw(bw(a_r[l], b_r[l], *first), c_r[l], *second);
                }
            }
        }
        Op::MuxChain {
            dst,
            cases,
            default,
        } => {
            // Branch-free priority scan: sel[l] = first case whose
            // condition is set (cases.len() = default), then one gather
            // per destination word.
            let mut sel = [usize::MAX; L];
            let mut unresolved = L;
            for (ci, (c, _)) in cases.iter().enumerate() {
                let mut any = [0u64; L];
                for k in 0..c.words() {
                    let c_r = row::<L>(arena, lane_base::<L>(*c, k));
                    for l in 0..L {
                        any[l] |= c_r[l];
                    }
                }
                for l in 0..L {
                    if sel[l] == usize::MAX && any[l] != 0 {
                        sel[l] = ci;
                        unresolved -= 1;
                    }
                }
                // Once every lane picked a case the rest of the chain is
                // dead — skip its condition reads entirely.
                if unresolved == 0 {
                    break;
                }
            }
            for k in 0..dst.words() {
                let mut out = [0u64; L];
                for (l, out_l) in out.iter_mut().enumerate() {
                    let src = if sel[l] == usize::MAX {
                        *default
                    } else {
                        cases[sel[l]].1
                    };
                    *out_l = arena[lane_base::<L>(src, k) + l];
                }
                *row_mut::<L>(arena, lane_base::<L>(*dst, k)) = out;
            }
        }
        Op::CopyRange {
            dst_off,
            src_off,
            words,
        } => {
            let (d, s) = (*dst_off as usize * L, *src_off as usize * L);
            arena.copy_within(s..s + *words as usize * L, d);
        }
    }
}

/// The multi-lane executor: one laned arena holding [`L`] independent
/// copies of the design's state, all advanced by a single pass over the
/// op list per settle. Bit-identical to `L` scalar [`TapeEngine`]s
/// (differentially property-tested over the whole evaluation suite).
pub(crate) struct LaneEngine<const L: usize> {
    tape: Arc<Tape>,
    /// Laned arena: logical word `w`, lane `l` ↦ `arena[w * L + l]`.
    arena: Vec<u64>,
    /// Previous settled arena (per-lane toggle counting).
    prev_arena: Vec<u64>,
    /// Laned memories: element `e`, word `k`, lane `l` ↦
    /// `arrays[a][(e * wpe + k) * L + l]`.
    arrays: Vec<Vec<u64>>,
    /// Per-signal, per-lane toggle counters (`sig * L + lane`).
    toggles: Vec<u64>,
    /// Lane-major multiplication scratch (`L` segments).
    scratch: Vec<u64>,
    /// Pre-sized gather buffer reused by every fingerprint call.
    fp_scratch: Vec<u64>,
    /// Per-region dirty bits (settle-skipping): a region executes on the
    /// next settle only if one of its inputs changed since the last one.
    region_dirty: Vec<bool>,
    /// Fast path: true iff any region is dirty.
    any_dirty: bool,
}

impl<const L: usize> LaneEngine<L> {
    pub(crate) fn new(tape: Arc<Tape>) -> Self {
        let arena = Bits::broadcast_slab(&tape.init_arena, L);
        let arrays: Vec<Vec<u64>> = tape
            .arrays
            .iter()
            .map(|a| Bits::broadcast_slab(&a.init, L))
            .collect();
        let n = tape.sig_slots.len();
        let mul_words = tape
            .ops
            .iter()
            .map(|op| match op {
                Op::Mul { dst, .. } => dst.words(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
            .max(1);
        let fp_words = tape
            .reg_fp
            .iter()
            .map(|s| s.words())
            .chain(tape.arrays.iter().map(|a| a.wpe as usize))
            .max()
            .unwrap_or(1);
        LaneEngine {
            prev_arena: arena.clone(),
            arena,
            arrays,
            toggles: vec![0; n * L],
            scratch: vec![0; mul_words * L],
            fp_scratch: vec![0; fp_words],
            region_dirty: vec![true; tape.regions.len()],
            tape,
            any_dirty: true,
        }
    }

    #[inline]
    fn mark_region(&mut self, r: u32) {
        if r != u32::MAX {
            self.region_dirty[r as usize] = true;
            self.any_dirty = true;
        }
    }

    /// Settles all lanes: one pass over the dirty regions' op ranges,
    /// every op's inner loop covering all `L` lanes. Clean regions are
    /// skipped entirely — their slots already hold settled values.
    pub(crate) fn settle(&mut self) {
        if !self.any_dirty {
            return;
        }
        // Opened only when there is work — the settle-skip early return
        // stays untraced — and the per-region children gate on one
        // enabled() check for the whole pass.
        let _sp = anvil_trace::span("sim", "settle");
        let traced = anvil_trace::enabled();
        let tape = Arc::clone(&self.tape);
        for (ri, (s, e)) in tape.regions.iter().enumerate() {
            if !self.region_dirty[ri] {
                continue;
            }
            let _sp_region = if traced {
                Some(anvil_trace::span("sim", "region").detail_with(|| format!("r{ri}")))
            } else {
                None
            };
            for op in &tape.ops[*s as usize..*e as usize] {
                exec_op_lanes::<L>(
                    op,
                    &mut self.arena,
                    &mut self.scratch,
                    &self.arrays,
                    &tape.arrays,
                );
            }
            self.region_dirty[ri] = false;
        }
        self.any_dirty = false;
    }

    /// One clock edge for every lane: per-lane debug prints (delivered to
    /// `sink` as `(lane, message)`), per-lane toggle counting, per-lane
    /// array writes, and the register commit.
    pub(crate) fn commit(&mut self, sink: &mut dyn FnMut(usize, String)) {
        self.settle();
        let tape = Arc::clone(&self.tape);

        for p in &tape.prints {
            for l in 0..L {
                if any_set_lane::<L>(&self.arena, p.enable, l) {
                    let msg = match p.value {
                        Some(v) => format!("{}: {:x}", p.label, self.slot_bits_lane(v, l)),
                        None => p.label.clone(),
                    };
                    sink(l, msg);
                }
            }
        }

        // One fused pass: count toggles against the previous edge and
        // refresh the per-signal snapshot in place. Only signal slots are
        // touched — temp slots never enter the toggle observables, so the
        // full-arena copy the scalar engine does is unnecessary here.
        for (i, s) in tape.sig_slots.iter().enumerate() {
            let tg = row_mut::<L>(&mut self.toggles, i * L);
            for k in 0..s.words() {
                let base = lane_base::<L>(*s, k);
                let cur = row::<L>(&self.arena, base);
                let prev = row_mut::<L>(&mut self.prev_arena, base);
                for l in 0..L {
                    tg[l] += u64::from((cur[l] ^ prev[l]).count_ones());
                }
                *prev = cur;
            }
        }

        // As in the scalar engine: array writes read the pre-edge arena,
        // so they commit before the register next-values land. A write
        // that actually lands dirties every region reading the array.
        for w in &tape.writes {
            let meta = &tape.arrays[w.array as usize];
            let wpe = meta.wpe as usize;
            let mut wrote = false;
            for l in 0..L {
                if any_set_lane::<L>(&self.arena, w.enable, l) {
                    let idx = self.arena[w.index.off() * L + l] as usize;
                    if idx < meta.depth as usize {
                        for k in 0..wpe {
                            self.arrays[w.array as usize][(idx * wpe + k) * L + l] =
                                self.arena[lane_base::<L>(w.data, k) + l];
                        }
                        wrote = true;
                    }
                }
            }
            if wrote {
                for ri in 0..tape.array_regions[w.array as usize].len() {
                    self.mark_region(tape.array_regions[w.array as usize][ri]);
                }
            }
        }
        // Register commit with settle-skipping: only registers whose next
        // value differs from the current one (on any lane) are copied, and
        // only their reader regions are re-settled next cycle.
        for (i, (cur, next)) in tape.reg_commits.iter().enumerate() {
            let (d, s) = (cur.off() * L, next.off() * L);
            let n = next.words() * L;
            if self.arena[d..d + n] != self.arena[s..s + n] {
                self.arena.copy_within(s..s + n, d);
                self.mark_region(tape.commit_region[i]);
            }
        }
    }

    fn slot_bits_lane(&self, s: Slot, lane: usize) -> Bits {
        let base = s.off() * L;
        Bits::from_lane_slab(s.width(), &self.arena[base..base + s.words() * L], L, lane)
    }

    /// Reads one lane of a signal. The caller is responsible for settling
    /// first (the `SimBatch` facade does).
    pub(crate) fn peek_lane(&self, id: SignalId, lane: usize) -> Bits {
        self.slot_bits_lane(self.tape.sig_slots[id.0], lane)
    }

    /// Writes one lane of an input signal (width pre-checked by the
    /// facade). Skips the dirty marking when the lane already holds
    /// `value`; otherwise only the region reading this input re-settles.
    pub(crate) fn poke_lane(&mut self, id: SignalId, value: &Bits, lane: usize) {
        let s = self.tape.sig_slots[id.0];
        let base = s.off() * L;
        let words = value.as_words();
        if (0..s.words()).all(|k| self.arena[base + k * L + lane] == words[k]) {
            return;
        }
        value.write_lane_slab(&mut self.arena[base..base + s.words() * L], L, lane);
        let r = self.tape.sig_region[id.0];
        self.mark_region(r);
    }

    /// Writes one `u64`-sourced value per sublane of an input signal in a
    /// single call (the sweep drivers' hot path): the slot, mask, and
    /// dirty-region lookup are resolved once for the whole row instead of
    /// per lane. Values are truncated to the signal width and
    /// zero-extended across higher words — exactly
    /// [`Bits::from_u64`] + [`LaneEngine::poke_lane`] per lane. `vals`
    /// may be shorter than `L` (tail groups); missing sublanes keep their
    /// value.
    pub(crate) fn poke_rows_u64(&mut self, id: SignalId, vals: &[u64]) {
        let s = self.tape.sig_slots[id.0];
        let base = s.off() * L;
        let mask = if s.width() >= 64 {
            u64::MAX
        } else {
            (1u64 << s.width()) - 1
        };
        let mut changed = false;
        for (l, &raw) in vals.iter().enumerate() {
            let v = raw & mask;
            if self.arena[base + l] != v {
                self.arena[base + l] = v;
                changed = true;
            }
        }
        for k in 1..s.words() {
            for l in 0..vals.len() {
                let w = &mut self.arena[base + k * L + l];
                if *w != 0 {
                    *w = 0;
                    changed = true;
                }
            }
        }
        if changed {
            let r = self.tape.sig_region[id.0];
            self.mark_region(r);
        }
    }

    /// Reads one lane of one memory element.
    pub(crate) fn peek_array_lane(&self, array: ArrayId, index: usize, lane: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        Bits::from_lane_slab(
            meta.width as usize,
            &self.arrays[array.0][index * wpe * L..(index + 1) * wpe * L],
            L,
            lane,
        )
    }

    /// Writes one lane of one memory element (width pre-matched by the
    /// facade).
    pub(crate) fn poke_array_lane(
        &mut self,
        array: ArrayId,
        index: usize,
        value: &Bits,
        lane: usize,
    ) {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        value.write_lane_slab(
            &mut self.arrays[array.0][index * wpe * L..(index + 1) * wpe * L],
            L,
            lane,
        );
        let tape = Arc::clone(&self.tape);
        for r in &tape.array_regions[array.0] {
            self.mark_region(*r);
        }
    }

    /// Evaluates an expression against one settled lane.
    pub(crate) fn eval_lane(&self, e: &Expr, lane: usize) -> Bits {
        eval_expr(e, &LaneView { engine: self, lane })
    }

    /// Canonical architectural-state hash of one lane — equal to the
    /// scalar backends' [`SimBackend::state_fingerprint`] for equal
    /// states. Reuses the engine's pre-sized gather scratch, so the call
    /// is allocation-free.
    pub(crate) fn state_fingerprint_lane(&mut self, lane: usize) -> u64 {
        let tape = Arc::clone(&self.tape);
        let mut h = StateHasher::new();
        for s in &tape.reg_fp {
            let n = s.words();
            for k in 0..n {
                self.fp_scratch[k] = self.arena[lane_base::<L>(*s, k) + lane];
            }
            h.add(s.width(), &self.fp_scratch[..n]);
        }
        for (i, meta) in tape.arrays.iter().enumerate() {
            let wpe = meta.wpe as usize;
            for e in 0..meta.depth as usize {
                for k in 0..wpe {
                    self.fp_scratch[k] = self.arrays[i][(e * wpe + k) * L + lane];
                }
                h.add(meta.width as usize, &self.fp_scratch[..wpe]);
            }
        }
        h.finish()
    }

    /// Total observed bit toggles per signal on one lane, in signal-id
    /// order (matches [`SimBackend::toggle_counts`]).
    pub(crate) fn toggle_counts_lane(&self, lane: usize) -> Vec<u64> {
        (0..self.tape.sig_slots.len())
            .map(|i| self.toggles[i * L + lane])
            .collect()
    }

    /// Restores every lane to power-on state.
    pub(crate) fn reset(&mut self) {
        let tape = Arc::clone(&self.tape);
        for (k, w) in tape.init_arena.iter().enumerate() {
            self.arena[k * L..(k + 1) * L].fill(*w);
        }
        self.prev_arena.copy_from_slice(&self.arena);
        for (store, meta) in self.arrays.iter_mut().zip(&tape.arrays) {
            for (k, w) in meta.init.iter().enumerate() {
                store[k * L..(k + 1) * L].fill(*w);
            }
        }
        self.toggles.fill(0);
        self.region_dirty.fill(true);
        self.any_dirty = true;
    }
}

/// Width-erasing interface over [`LaneEngine`]: one monomorphized
/// executor per width in [`LANE_WIDTHS`], boxed so `SimBatch` can stack
/// heterogeneous strides (full-width groups plus a smaller tail group).
pub(crate) trait LaneGroup: Send + Sync {
    /// Number of lanes this group executes in lockstep.
    fn stride(&self) -> usize;
    /// Words of laned arena storage this group owns (tail-group sizing
    /// tests assert the footprint shrinks with the stride).
    fn arena_words(&self) -> usize;
    fn settle(&mut self);
    fn commit(&mut self, sink: &mut dyn FnMut(usize, String));
    fn peek_lane(&self, id: SignalId, lane: usize) -> Bits;
    fn poke_lane(&mut self, id: SignalId, value: &Bits, lane: usize);
    fn poke_rows_u64(&mut self, id: SignalId, vals: &[u64]);
    fn peek_array_lane(&self, array: ArrayId, index: usize, lane: usize) -> Bits;
    fn poke_array_lane(&mut self, array: ArrayId, index: usize, value: &Bits, lane: usize);
    fn eval_lane(&self, e: &Expr, lane: usize) -> Bits;
    fn state_fingerprint_lane(&mut self, lane: usize) -> u64;
    fn toggle_counts_lane(&self, lane: usize) -> Vec<u64>;
    fn reset(&mut self);
}

impl<const L: usize> LaneGroup for LaneEngine<L> {
    fn stride(&self) -> usize {
        L
    }

    fn arena_words(&self) -> usize {
        self.arena.len()
    }

    fn settle(&mut self) {
        LaneEngine::settle(self)
    }

    fn commit(&mut self, sink: &mut dyn FnMut(usize, String)) {
        LaneEngine::commit(self, sink)
    }

    fn peek_lane(&self, id: SignalId, lane: usize) -> Bits {
        LaneEngine::peek_lane(self, id, lane)
    }

    fn poke_lane(&mut self, id: SignalId, value: &Bits, lane: usize) {
        LaneEngine::poke_lane(self, id, value, lane)
    }

    fn poke_rows_u64(&mut self, id: SignalId, vals: &[u64]) {
        LaneEngine::poke_rows_u64(self, id, vals)
    }

    fn peek_array_lane(&self, array: ArrayId, index: usize, lane: usize) -> Bits {
        LaneEngine::peek_array_lane(self, array, index, lane)
    }

    fn poke_array_lane(&mut self, array: ArrayId, index: usize, value: &Bits, lane: usize) {
        LaneEngine::poke_array_lane(self, array, index, value, lane)
    }

    fn eval_lane(&self, e: &Expr, lane: usize) -> Bits {
        LaneEngine::eval_lane(self, e, lane)
    }

    fn state_fingerprint_lane(&mut self, lane: usize) -> u64 {
        LaneEngine::state_fingerprint_lane(self, lane)
    }

    fn toggle_counts_lane(&self, lane: usize) -> Vec<u64> {
        LaneEngine::toggle_counts_lane(self, lane)
    }

    fn reset(&mut self) {
        LaneEngine::reset(self)
    }
}

/// Instantiates the monomorphized lane engine for a validated width.
pub(crate) fn new_lane_group(tape: Arc<Tape>, width: usize) -> Box<dyn LaneGroup> {
    match width {
        4 => Box::new(LaneEngine::<4>::new(tape)),
        8 => Box::new(LaneEngine::<8>::new(tape)),
        16 => Box::new(LaneEngine::<16>::new(tape)),
        32 => Box::new(LaneEngine::<32>::new(tape)),
        other => unreachable!("unvalidated lane width {other}"),
    }
}

/// Smallest monomorphized width that covers `lanes` (tail groups), or
/// the widest when even that is too small.
pub(crate) fn tail_width(lanes: usize) -> usize {
    for w in LANE_WIDTHS {
        if w >= lanes {
            return w;
        }
    }
    LANE_WIDTHS[LANE_WIDTHS.len() - 1]
}

/// Read view of one lane, backing [`LaneEngine::eval_lane`] through the
/// shared expression evaluator.
struct LaneView<'a, const L: usize> {
    engine: &'a LaneEngine<L>,
    lane: usize,
}

impl<const L: usize> ValueSource for LaneView<'_, L> {
    fn signal(&self, id: SignalId) -> Bits {
        self.engine
            .slot_bits_lane(self.engine.tape.sig_slots[id.0], self.lane)
    }

    fn array_read(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.engine.tape.arrays[array.0];
        if index < meta.depth as usize {
            let wpe = meta.wpe as usize;
            Bits::from_lane_slab(
                meta.width as usize,
                &self.engine.arrays[array.0][index * wpe * L..(index + 1) * wpe * L],
                L,
                self.lane,
            )
        } else {
            Bits::zero(meta.width as usize)
        }
    }
}

// The tape and its engines cross thread boundaries (batch simulation,
// BMC sweep workers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tape>();
    assert_send_sync::<TapeEngine>();
    assert_send_sync::<LaneEngine<8>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// 128-bit datapath: multi-word add, mul, slice, concat, shift.
    #[test]
    fn wide_ops_match_tree() {
        use crate::engine::Sim;
        let mut m = Module::new("wide");
        let a = m.input("a", 128);
        let b = m.input("b", 128);
        let sum = m.output("sum", 128);
        let prod = m.output("prod", 128);
        let hi = m.output("hi", 64);
        let cat = m.output("cat", 192);
        let shl = m.output("shl", 128);
        let shr = m.output("shr", 128);
        let red = m.output("red", 1);
        m.assign(sum, Expr::Signal(a).add(Expr::Signal(b)));
        m.assign(
            prod,
            Expr::bin(BinaryOp::Mul, Expr::Signal(a), Expr::Signal(b)),
        );
        m.assign(
            hi,
            Expr::Slice {
                base: Box::new(Expr::Signal(a)),
                lo: 64,
                width: 64,
            },
        );
        m.assign(
            cat,
            Expr::Concat(vec![Expr::Signal(b).slice(0, 64), Expr::Signal(a)]),
        );
        m.assign(
            shl,
            Expr::bin(BinaryOp::Shl, Expr::Signal(a), Expr::lit(65, 8)),
        );
        m.assign(
            shr,
            Expr::bin(BinaryOp::Shr, Expr::Signal(a), Expr::lit(3, 8)),
        );
        m.assign(red, Expr::Unary(UnaryOp::RedXor, Box::new(Expr::Signal(a))));

        let mut tree = Sim::with_backend(&m, Backend::Tree).unwrap();
        let mut tape = Sim::with_backend(&m, Backend::Compiled).unwrap();
        let va = Bits::from_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_FEDC_BA98, 128);
        let vb = Bits::from_u128(0x1111_2222_3333_4444_5555_6666_7777_8888, 128);
        for s in [&mut tree, &mut tape] {
            s.poke("a", va.clone()).unwrap();
            s.poke("b", vb.clone()).unwrap();
        }
        for out in ["sum", "prod", "hi", "cat", "shl", "shr", "red"] {
            assert_eq!(
                tree.peek(out).unwrap(),
                tape.peek(out).unwrap(),
                "output `{out}` diverged"
            );
        }
    }

    /// `(a ^ b) & c` with an unobservable intermediate fuses into one
    /// [`Op::Logic3`], and the fused tape matches the tree engine.
    #[test]
    fn bitwise_chains_fuse_to_logic3() {
        use crate::batch::TapeProgram;
        use crate::engine::Sim;
        let mut m = Module::new("bwchain");
        let a = m.input("a", 32);
        let b = m.input("b", 32);
        let c = m.input("c", 32);
        let o = m.output("o", 32);
        m.assign(
            o,
            Expr::bin(
                BinaryOp::And,
                Expr::bin(BinaryOp::Xor, Expr::Signal(a), Expr::Signal(b)),
                Expr::Signal(c),
            ),
        );

        let mix = TapeProgram::compile(&m).unwrap().op_mix();
        assert!(mix.contains(&("logic3", 1)), "{mix:?}");
        assert!(
            !mix.iter().any(|(k, _)| *k == "xor" || *k == "and"),
            "{mix:?}"
        );

        let mut tree = Sim::with_backend(&m, Backend::Tree).unwrap();
        let mut tape = Sim::with_backend(&m, Backend::Compiled).unwrap();
        for s in [&mut tree, &mut tape] {
            s.poke("a", Bits::from_u64(0xDEAD_BEEF, 32)).unwrap();
            s.poke("b", Bits::from_u64(0x0123_4567, 32)).unwrap();
            s.poke("c", Bits::from_u64(0xF0F0_F0F0, 32)).unwrap();
        }
        assert_eq!(tree.peek("o").unwrap(), tape.peek("o").unwrap());
        assert_eq!(
            tape.peek("o").unwrap().to_u64(),
            (0xDEAD_BEEFu64 ^ 0x0123_4567) & 0xF0F0_F0F0
        );
    }

    /// A concat of slice temps (the byte-shuffle pattern) fuses into one
    /// [`Op::Gather`] — no slices or concats remain — and the fused tape
    /// matches the tree engine, including zero-extension past the top of
    /// a sliced source.
    #[test]
    fn slice_concat_shuffles_fuse_to_gather() {
        use crate::batch::TapeProgram;
        use crate::engine::Sim;
        let mut m = Module::new("shuffle");
        let a = m.input("a", 64);
        let o = m.output("o", 40);
        // Three fields gathered out of `a`, one reading past its top bit
        // (slice zero-extends).
        m.assign(
            o,
            Expr::Concat(vec![
                Expr::Signal(a).slice(56, 16),
                Expr::Signal(a).slice(8, 16),
                Expr::Signal(a).slice(32, 8),
            ]),
        );

        let mix = TapeProgram::compile(&m).unwrap().op_mix();
        assert!(mix.contains(&("gather", 1)), "{mix:?}");
        assert!(
            !mix.iter().any(|(k, _)| *k == "slice" || *k == "concat"),
            "{mix:?}"
        );

        let mut tree = Sim::with_backend(&m, Backend::Tree).unwrap();
        let mut tape = Sim::with_backend(&m, Backend::Compiled).unwrap();
        let v = Bits::from_u64(0xFEDC_BA98_7654_3210, 64);
        for s in [&mut tree, &mut tape] {
            s.poke("a", v.clone()).unwrap();
        }
        assert_eq!(tree.peek("o").unwrap(), tape.peek("o").unwrap());
    }

    #[test]
    fn width_mismatched_driver_rejected() {
        use crate::engine::Sim;
        let mut m = Module::new("bad");
        let o = m.output("o", 4);
        m.assign(o, Expr::lit(0, 5));
        let err = match Sim::with_backend(&m, Backend::Compiled) {
            Err(e) => e,
            Ok(_) => panic!("expected a width error"),
        };
        assert_eq!(
            err,
            SimError::DriverWidth {
                signal: "o".into(),
                expected: 4,
                found: 5
            }
        );
    }
}
