//! The compiled simulation backend: a one-time lowering of a flattened
//! [`Module`] into a linear instruction tape.
//!
//! [`Tape::compile`] topologically schedules every combinational driver
//! (via [`Module::comb_schedule`]), width-checks it, and flattens its
//! recursive [`Expr`] tree into word-level ops over a flat `u64` arena:
//! every signal, register next-value, debug-print operand, array-write
//! operand, constant, and intermediate gets a pre-resolved *slot* (word
//! offset + width). [`TapeEngine`] then executes one settle as a single
//! non-recursive pass over the op list — no name lookups, no `HashMap`
//! probes, no per-node heap allocation — which is what makes brute-forcing
//! many stimulus schedules (BMC, differential fuzzing, the scenario sweeps
//! the ROADMAP asks for) practical.
//!
//! Lowering re-derives every expression width while allocating slots, so
//! it enforces the same driver width discipline as the facade's shared
//! pre-check ([`SimError::DriverWidth`] / [`SimError::MalformedExpr`]) —
//! a malformed module can never reach the executor.

use std::sync::Arc;

use anvil_rtl::{ArrayId, BinaryOp, Bits, Expr, Module, SignalId, SignalKind, UnaryOp};

use crate::engine::{eval_expr, Backend, SimBackend, SimError, StateHasher, ValueSource};

/// A pre-resolved storage location in the arena: `words` little-endian
/// `u64`s starting at word offset `off`, holding a `width`-bit value with
/// the unused high bits of the top word kept zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Slot {
    off: u32,
    words: u32,
    width: u32,
}

impl Slot {
    fn off(self) -> usize {
        self.off as usize
    }

    fn words(self) -> usize {
        self.words as usize
    }

    fn width(self) -> usize {
        self.width as usize
    }

    fn range(self) -> std::ops::Range<usize> {
        self.off()..self.off() + self.words()
    }

    /// Mask keeping only the valid bits of the top word.
    fn top_mask(self) -> u64 {
        let r = self.width % 64;
        if r == 0 {
            u64::MAX
        } else {
            (1u64 << r) - 1
        }
    }
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

/// Comparison selector for [`Op::Cmp`].
#[derive(Clone, Copy, Debug)]
enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Reduction selector for [`Op::Red`].
#[derive(Clone, Copy, Debug)]
enum RedKind {
    And,
    Or,
    Xor,
    LogicNot,
}

/// One word-level instruction. All operands are pre-resolved slots; the
/// executor is a single flat `match` loop with no recursion.
#[derive(Clone, Debug)]
enum Op {
    /// `dst = src` (equal widths).
    Copy { dst: Slot, src: Slot },
    /// `dst = ~a`.
    Not { dst: Slot, a: Slot },
    /// `dst = -a` (two's complement, wrapping).
    Neg { dst: Slot, a: Slot },
    /// `dst = a + b` (wrapping).
    Add { dst: Slot, a: Slot, b: Slot },
    /// `dst = a - b` (wrapping).
    Sub { dst: Slot, a: Slot, b: Slot },
    /// `dst = a * b` (wrapping; uses the engine scratch buffer).
    Mul { dst: Slot, a: Slot, b: Slot },
    /// `dst = a & b`.
    And { dst: Slot, a: Slot, b: Slot },
    /// `dst = a | b`.
    Or { dst: Slot, a: Slot, b: Slot },
    /// `dst = a ^ b`.
    Xor { dst: Slot, a: Slot, b: Slot },
    /// 1-bit comparison result.
    Cmp {
        dst: Slot,
        a: Slot,
        b: Slot,
        kind: CmpKind,
    },
    /// 1-bit reduction result.
    Red { dst: Slot, a: Slot, kind: RedKind },
    /// `dst = a << amt` / `a >> amt`; amount read from a slot at run time.
    Shift {
        dst: Slot,
        a: Slot,
        amt: Slot,
        left: bool,
    },
    /// `dst = cond ? t : e` (truthy = any bit set).
    Mux {
        dst: Slot,
        cond: Slot,
        t: Slot,
        e: Slot,
    },
    /// `dst = src[lo +: dst.width]`, zero-extending past the top of `src`.
    Slice { dst: Slot, src: Slot, lo: u32 },
    /// Concatenation: each part is OR-ed into `dst` at its bit offset
    /// (parts tile `dst` exactly; `dst` is zeroed first).
    Concat {
        dst: Slot,
        parts: Box<[(Slot, u32)]>,
    },
    /// Zero-extension or truncation.
    Resize { dst: Slot, src: Slot },
    /// Asynchronous memory read; out-of-range indices yield zero.
    ArrayRead { dst: Slot, array: u32, index: Slot },
}

/// A lowered synchronous array write port.
#[derive(Clone, Debug)]
struct TapeWrite {
    array: u32,
    enable: Slot,
    index: Slot,
    data: Slot,
}

/// A lowered debug print.
#[derive(Clone, Debug)]
struct TapePrint {
    enable: Slot,
    label: String,
    value: Option<Slot>,
}

/// Word-packed memory metadata: element `e` lives at
/// `data[e * wpe .. (e + 1) * wpe]`.
#[derive(Clone, Debug)]
struct TapeArray {
    width: u32,
    depth: u32,
    wpe: u32,
    init: Vec<u64>,
}

/// The immutable compiled program: share one `Arc<Tape>` across as many
/// [`TapeEngine`] instances (and threads) as needed — e.g. the bounded
/// model checker lowers once and replays thousands of traces.
pub(crate) struct Tape {
    /// The settle program: comb drivers in topological order, then print
    /// operands, then register next-values, then array-write operands.
    ops: Vec<Op>,
    /// Current-value slot of every signal, indexed by [`SignalId`].
    sig_slots: Vec<Slot>,
    /// `(current, next)` slot pairs for registers with next-value drivers.
    reg_commits: Vec<(Slot, Slot)>,
    /// Current-value slots of all registers in id order (fingerprints).
    reg_fp: Vec<Slot>,
    writes: Vec<TapeWrite>,
    prints: Vec<TapePrint>,
    arrays: Vec<TapeArray>,
    /// Power-on arena image: zeros, register inits, and materialized
    /// constants.
    init_arena: Vec<u64>,
}

/// Bump-allocating tape builder.
struct Builder {
    arena: Vec<u64>,
    ops: Vec<Op>,
    sig_slots: Vec<Slot>,
}

impl Builder {
    fn alloc(&mut self, width: usize) -> Slot {
        let words = words_for(width);
        let off = self.arena.len();
        self.arena.resize(off + words, 0);
        Slot {
            off: off as u32,
            words: words as u32,
            width: width as u32,
        }
    }

    /// Materializes a constant into the arena image (no op emitted; the
    /// slot is never written at run time).
    fn alloc_const(&mut self, value: &Bits) -> Slot {
        let slot = self.alloc(value.width());
        self.write_const(slot, value);
        slot
    }

    fn write_const(&mut self, slot: Slot, value: &Bits) {
        let words = value.as_words();
        self.arena[slot.range()].copy_from_slice(&words[..slot.words()]);
    }

    /// Lowers `e`, returning the slot holding its value. When `want` is
    /// given and matches the expression's width, the result is computed
    /// directly into it (leaf expressions ignore `want`; the caller copies).
    fn expr(&mut self, m: &Module, e: &Expr, want: Option<Slot>) -> Result<Slot, SimError> {
        let dst_for = |b: &mut Builder, w: usize| match want {
            Some(d) if d.width() == w => d,
            _ => b.alloc(w),
        };
        match e {
            Expr::Const(b) => Ok(self.alloc_const(b)),
            Expr::Signal(s) => self
                .sig_slots
                .get(s.0)
                .copied()
                .ok_or_else(|| SimError::MalformedExpr(format!("unknown signal {s:?}"))),
            Expr::Unary(op, a) => {
                let sa = self.expr(m, a, None)?;
                match op {
                    UnaryOp::Not => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Not { dst, a: sa });
                        Ok(dst)
                    }
                    UnaryOp::Neg => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Neg { dst, a: sa });
                        Ok(dst)
                    }
                    UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor | UnaryOp::LogicNot => {
                        let dst = dst_for(self, 1);
                        let kind = match op {
                            UnaryOp::RedAnd => RedKind::And,
                            UnaryOp::RedOr => RedKind::Or,
                            UnaryOp::RedXor => RedKind::Xor,
                            _ => RedKind::LogicNot,
                        };
                        self.ops.push(Op::Red { dst, a: sa, kind });
                        Ok(dst)
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let sa = self.expr(m, a, None)?;
                let sb = self.expr(m, b, None)?;
                match op {
                    BinaryOp::Shl | BinaryOp::Shr => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Shift {
                            dst,
                            a: sa,
                            amt: sb,
                            left: matches!(op, BinaryOp::Shl),
                        });
                        Ok(dst)
                    }
                    _ => {
                        if sa.width != sb.width {
                            return Err(SimError::MalformedExpr(format!(
                                "operand width mismatch {} vs {} in {op:?}",
                                sa.width, sb.width
                            )));
                        }
                        if op.is_comparison() {
                            let dst = dst_for(self, 1);
                            let kind = match op {
                                BinaryOp::Eq => CmpKind::Eq,
                                BinaryOp::Ne => CmpKind::Ne,
                                BinaryOp::Lt => CmpKind::Lt,
                                BinaryOp::Le => CmpKind::Le,
                                BinaryOp::Gt => CmpKind::Gt,
                                _ => CmpKind::Ge,
                            };
                            self.ops.push(Op::Cmp {
                                dst,
                                a: sa,
                                b: sb,
                                kind,
                            });
                            Ok(dst)
                        } else {
                            let dst = dst_for(self, sa.width());
                            self.ops.push(match op {
                                BinaryOp::Add => Op::Add { dst, a: sa, b: sb },
                                BinaryOp::Sub => Op::Sub { dst, a: sa, b: sb },
                                BinaryOp::Mul => Op::Mul { dst, a: sa, b: sb },
                                BinaryOp::And => Op::And { dst, a: sa, b: sb },
                                BinaryOp::Or => Op::Or { dst, a: sa, b: sb },
                                _ => Op::Xor { dst, a: sa, b: sb },
                            });
                            Ok(dst)
                        }
                    }
                }
            }
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => {
                let sc = self.expr(m, cond, None)?;
                let st = self.expr(m, then_e, None)?;
                let se = self.expr(m, else_e, None)?;
                if st.width != se.width {
                    return Err(SimError::MalformedExpr(format!(
                        "mux branch width mismatch {} vs {}",
                        st.width, se.width
                    )));
                }
                let dst = dst_for(self, st.width());
                self.ops.push(Op::Mux {
                    dst,
                    cond: sc,
                    t: st,
                    e: se,
                });
                Ok(dst)
            }
            Expr::Concat(parts) => {
                if parts.is_empty() {
                    return Err(SimError::MalformedExpr("empty concat".into()));
                }
                let slots = parts
                    .iter()
                    .map(|p| self.expr(m, p, None))
                    .collect::<Result<Vec<_>, _>>()?;
                let width: usize = slots.iter().map(|s| s.width()).sum();
                // Parts are given most-significant first; compute each
                // part's bit offset in the result.
                let mut placed = Vec::with_capacity(slots.len());
                let mut lo = width;
                for s in &slots {
                    lo -= s.width();
                    placed.push((*s, lo as u32));
                }
                let dst = dst_for(self, width);
                self.ops.push(Op::Concat {
                    dst,
                    parts: placed.into_boxed_slice(),
                });
                Ok(dst)
            }
            Expr::Slice { base, lo, width } => {
                if *width == 0 {
                    return Err(SimError::MalformedExpr("zero-width slice".into()));
                }
                let src = self.expr(m, base, None)?;
                let dst = dst_for(self, *width);
                self.ops.push(Op::Slice {
                    dst,
                    src,
                    lo: *lo as u32,
                });
                Ok(dst)
            }
            Expr::ArrayRead { array, index } => {
                let decl = m
                    .arrays
                    .get(array.0)
                    .ok_or_else(|| SimError::MalformedExpr(format!("unknown array {array:?}")))?;
                let index = self.expr(m, index, None)?;
                let dst = dst_for(self, decl.width);
                self.ops.push(Op::ArrayRead {
                    dst,
                    array: array.0 as u32,
                    index,
                });
                Ok(dst)
            }
            Expr::Resize { base, width } => {
                if *width == 0 {
                    return Err(SimError::MalformedExpr("zero-width resize".into()));
                }
                let src = self.expr(m, base, None)?;
                let dst = dst_for(self, *width);
                self.ops.push(Op::Resize { dst, src });
                Ok(dst)
            }
        }
    }

    /// Lowers a driver expression into `target`, enforcing the declared
    /// width (`name` labels the error).
    ///
    /// Constant drivers still lower to a `Copy` from a materialized const
    /// slot rather than being baked into the arena image: the signal slot
    /// must start at zero so first-cycle toggle counts match the tree
    /// engine exactly.
    fn drive(&mut self, m: &Module, e: &Expr, target: Slot, name: &str) -> Result<(), SimError> {
        let s = self.expr(m, e, Some(target))?;
        if s.width != target.width {
            return Err(SimError::DriverWidth {
                signal: name.to_string(),
                expected: target.width(),
                found: s.width(),
            });
        }
        if s != target {
            self.ops.push(Op::Copy {
                dst: target,
                src: s,
            });
        }
        Ok(())
    }
}

impl Tape {
    /// Lowers a flattened module into an instruction tape.
    ///
    /// # Errors
    ///
    /// [`SimError::NotFlat`] if instances remain,
    /// [`SimError::CombinationalLoop`] on a cyclic combinational graph,
    /// [`SimError::DriverWidth`] / [`SimError::MalformedExpr`] when a
    /// driver fails the width check.
    pub(crate) fn compile(module: Arc<Module>) -> Result<Tape, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::NotFlat(module.name.clone()));
        }
        let order = module
            .comb_schedule()
            .map_err(|sid| SimError::CombinationalLoop(module.signal(sid).name.clone()))?;

        let mut b = Builder {
            arena: Vec::new(),
            ops: Vec::new(),
            sig_slots: Vec::new(),
        };

        // 1. A current-value slot per signal; register inits materialized.
        for s in &module.signals {
            let slot = b.alloc(s.width);
            if let (SignalKind::Reg, Some(init)) = (&s.kind, &s.init) {
                b.write_const(slot, init);
            }
            b.sig_slots.push(slot);
        }

        // 2. Combinational drivers in topological order.
        for id in &order {
            let target = b.sig_slots[id.0];
            let name = module.signal(*id).name.clone();
            b.drive(&module, &module.assigns[id], target, &name)?;
        }

        // 3. Debug-print operands (read the settled state).
        let mut prints = Vec::with_capacity(module.prints.len());
        for p in &module.prints {
            let enable = b.expr(&module, &p.enable, None)?;
            let value = match &p.value {
                Some(v) => Some(b.expr(&module, v, None)?),
                None => None,
            };
            prints.push(TapePrint {
                enable,
                label: p.label.clone(),
                value,
            });
        }

        // 4. Register next-values into dedicated `next` slots, in id order.
        let mut reg_ids: Vec<SignalId> = module.reg_next.keys().copied().collect();
        reg_ids.sort();
        let mut reg_commits = Vec::with_capacity(reg_ids.len());
        for id in reg_ids {
            let sig = module.signal(id);
            let next = b.alloc(sig.width);
            b.drive(&module, &module.reg_next[&id], next, &sig.name)?;
            reg_commits.push((b.sig_slots[id.0], next));
        }

        // 5. Array-write operands.
        let mut writes = Vec::with_capacity(module.array_writes.len());
        for w in &module.array_writes {
            let decl = &module.arrays[w.array.0];
            let enable = b.expr(&module, &w.enable, None)?;
            let index = b.expr(&module, &w.index, None)?;
            let data = b.expr(&module, &w.data, None)?;
            if data.width() != decl.width {
                return Err(SimError::DriverWidth {
                    signal: decl.name.clone(),
                    expected: decl.width,
                    found: data.width(),
                });
            }
            writes.push(TapeWrite {
                array: w.array.0 as u32,
                enable,
                index,
                data,
            });
        }

        // 6. Word-packed memory images.
        let arrays = module
            .arrays
            .iter()
            .map(|a| {
                let wpe = words_for(a.width);
                let mut init = vec![0u64; wpe * a.depth];
                for (i, v) in a.init.iter().enumerate() {
                    let words = v.as_words();
                    init[i * wpe..i * wpe + words.len().min(wpe)]
                        .copy_from_slice(&words[..words.len().min(wpe)]);
                }
                TapeArray {
                    width: a.width as u32,
                    depth: a.depth as u32,
                    wpe: wpe as u32,
                    init,
                }
            })
            .collect();

        let reg_fp = module
            .iter_signals()
            .filter(|(_, s)| s.kind == SignalKind::Reg)
            .map(|(id, _)| b.sig_slots[id.0])
            .collect();

        Ok(Tape {
            ops: b.ops,
            sig_slots: b.sig_slots,
            reg_commits,
            reg_fp,
            writes,
            prints,
            arrays,
            init_arena: b.arena,
        })
    }
}

// ---- word-level helpers -------------------------------------------------

fn any_set(arena: &[u64], s: Slot) -> bool {
    arena[s.range()].iter().any(|w| *w != 0)
}

fn zero_slot(arena: &mut [u64], s: Slot) {
    arena[s.range()].fill(0);
}

fn copy_slot(arena: &mut [u64], dst: Slot, src: Slot) {
    let (d, s) = (dst.off(), src.off());
    for k in 0..dst.words() {
        arena[d + k] = arena[s + k];
    }
}

/// Reads `n` (≤ 64) bits of `s` starting at bit `lo`; bits past the slot's
/// storage are zero (slot values keep their high bits masked).
fn read_chunk(arena: &[u64], s: Slot, lo: usize, n: usize) -> u64 {
    let total = s.words() * 64;
    if lo >= total {
        return 0;
    }
    let wi = lo / 64;
    let sh = lo % 64;
    let mut v = arena[s.off() + wi] >> sh;
    if sh != 0 && wi + 1 < s.words() {
        v |= arena[s.off() + wi + 1] << (64 - sh);
    }
    if n < 64 {
        v &= (1u64 << n) - 1;
    }
    v
}

/// ORs `n` (≤ 64) bits into `s` starting at bit `lo`. The target bits must
/// currently be zero (callers zero the destination first).
fn or_chunk(arena: &mut [u64], s: Slot, lo: usize, n: usize, val: u64) {
    let wi = lo / 64;
    let sh = lo % 64;
    let v = if n < 64 { val & ((1u64 << n) - 1) } else { val };
    arena[s.off() + wi] |= v << sh;
    if sh != 0 && sh + n > 64 {
        arena[s.off() + wi + 1] |= v >> (64 - sh);
    }
}

/// ORs `n` bits of `src` (starting at `src_lo`) into `dst` at `dst_lo`.
fn or_bits(arena: &mut [u64], dst: Slot, dst_lo: usize, src: Slot, src_lo: usize, n: usize) {
    let mut k = 0;
    while k < n {
        let step = (n - k).min(64);
        let v = read_chunk(arena, src, src_lo + k, step);
        or_chunk(arena, dst, dst_lo + k, step, v);
        k += step;
    }
}

fn unsigned_lt(arena: &[u64], a: Slot, b: Slot) -> bool {
    for k in (0..a.words()).rev() {
        let (x, y) = (arena[a.off() + k], arena[b.off() + k]);
        if x != y {
            return x < y;
        }
    }
    false
}

fn words_eq(arena: &[u64], a: Slot, b: Slot) -> bool {
    (0..a.words()).all(|k| arena[a.off() + k] == arena[b.off() + k])
}

/// The executor: one arena of current values, one snapshot for toggle
/// counting, word-packed memories, and a scratch buffer for
/// multiplications. All per-cycle work is allocation-free.
pub(crate) struct TapeEngine {
    tape: Arc<Tape>,
    arena: Vec<u64>,
    /// Previous settled arena (toggle counting).
    prev_arena: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    toggles: Vec<u64>,
    scratch: Vec<u64>,
    dirty: bool,
}

impl TapeEngine {
    pub(crate) fn new(tape: Arc<Tape>) -> Self {
        let arena = tape.init_arena.clone();
        let arrays = tape.arrays.iter().map(|a| a.init.clone()).collect();
        let n = tape.sig_slots.len();
        let max_words = tape
            .sig_slots
            .iter()
            .map(|s| s.words())
            .max()
            .unwrap_or(1)
            .max(
                tape.ops
                    .iter()
                    .map(|op| match op {
                        Op::Mul { dst, .. } => dst.words(),
                        _ => 1,
                    })
                    .max()
                    .unwrap_or(1),
            );
        TapeEngine {
            prev_arena: arena.clone(),
            arena,
            arrays,
            toggles: vec![0; n],
            scratch: vec![0; max_words],
            tape: Arc::clone(&tape),
            dirty: true,
        }
    }

    fn slot_bits(&self, s: Slot) -> Bits {
        Bits::from_words(s.width(), &self.arena[s.range()])
    }
}

/// Executes one op. `arrays` is read-only here: memories are only written
/// at the clock edge, never during a settle pass.
fn exec_op(
    op: &Op,
    arena: &mut [u64],
    scratch: &mut [u64],
    arrays: &[Vec<u64>],
    metas: &[TapeArray],
) {
    match op {
        Op::Copy { dst, src } => copy_slot(arena, *dst, *src),
        Op::Not { dst, a } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = !arena[a.off() + k];
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Neg { dst, a } => {
            let mut borrow = 0u64;
            for k in 0..dst.words() {
                let y = arena[a.off() + k];
                let (d1, b1) = 0u64.overflowing_sub(y);
                let (d2, b2) = d1.overflowing_sub(borrow);
                arena[dst.off() + k] = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Add { dst, a, b } => {
            let mut carry = 0u64;
            for k in 0..dst.words() {
                let (s1, c1) = arena[a.off() + k].overflowing_add(arena[b.off() + k]);
                let (s2, c2) = s1.overflowing_add(carry);
                arena[dst.off() + k] = s2;
                carry = u64::from(c1) | u64::from(c2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Sub { dst, a, b } => {
            let mut borrow = 0u64;
            for k in 0..dst.words() {
                let (d1, b1) = arena[a.off() + k].overflowing_sub(arena[b.off() + k]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                arena[dst.off() + k] = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Mul { dst, a, b } => {
            let w = dst.words();
            let scratch = &mut scratch[..w];
            scratch.fill(0);
            for i in 0..w {
                let ai = arena[a.off() + i];
                if ai == 0 {
                    continue;
                }
                let mut carry: u128 = 0;
                for j in 0..w - i {
                    let cur = scratch[i + j] as u128
                        + (ai as u128) * (arena[b.off() + j] as u128)
                        + carry;
                    scratch[i + j] = cur as u64;
                    carry = cur >> 64;
                }
            }
            arena[dst.range()].copy_from_slice(scratch);
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::And { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] & arena[b.off() + k];
            }
        }
        Op::Or { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] | arena[b.off() + k];
            }
        }
        Op::Xor { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] ^ arena[b.off() + k];
            }
        }
        Op::Cmp { dst, a, b, kind } => {
            let r = match kind {
                CmpKind::Eq => words_eq(arena, *a, *b),
                CmpKind::Ne => !words_eq(arena, *a, *b),
                CmpKind::Lt => unsigned_lt(arena, *a, *b),
                CmpKind::Le => !unsigned_lt(arena, *b, *a),
                CmpKind::Gt => unsigned_lt(arena, *b, *a),
                CmpKind::Ge => !unsigned_lt(arena, *a, *b),
            };
            arena[dst.off()] = u64::from(r);
        }
        Op::Red { dst, a, kind } => {
            let r = match kind {
                RedKind::And => {
                    (0..a.words() - 1).all(|k| arena[a.off() + k] == u64::MAX)
                        && arena[a.off() + a.words() - 1] == a.top_mask()
                }
                RedKind::Or => any_set(arena, *a),
                RedKind::Xor => {
                    arena[a.range()]
                        .iter()
                        .fold(0u32, |acc, w| acc ^ w.count_ones())
                        % 2
                        == 1
                }
                RedKind::LogicNot => !any_set(arena, *a),
            };
            arena[dst.off()] = u64::from(r);
        }
        Op::Shift { dst, a, amt, left } => {
            let n = arena[amt.off()].min(u64::from(u32::MAX)) as usize;
            let width = dst.width();
            zero_slot(arena, *dst);
            if n < width {
                if *left {
                    or_bits(arena, *dst, n, *a, 0, width - n);
                } else {
                    or_bits(arena, *dst, 0, *a, n, width - n);
                }
            }
        }
        Op::Mux { dst, cond, t, e } => {
            let src = if any_set(arena, *cond) { *t } else { *e };
            copy_slot(arena, *dst, src);
        }
        Op::Slice { dst, src, lo } => {
            zero_slot(arena, *dst);
            or_bits(arena, *dst, 0, *src, *lo as usize, dst.width());
        }
        Op::Concat { dst, parts } => {
            zero_slot(arena, *dst);
            for (part, lo) in parts.iter() {
                or_bits(arena, *dst, *lo as usize, *part, 0, part.width());
            }
        }
        Op::Resize { dst, src } => {
            zero_slot(arena, *dst);
            let n = dst.width().min(src.width());
            or_bits(arena, *dst, 0, *src, 0, n);
        }
        Op::ArrayRead { dst, array, index } => {
            let meta = &metas[*array as usize];
            let idx = arena[index.off()] as usize;
            if idx < meta.depth as usize {
                let wpe = meta.wpe as usize;
                let elem = &arrays[*array as usize][idx * wpe..(idx + 1) * wpe];
                arena[dst.range()].copy_from_slice(elem);
            } else {
                zero_slot(arena, *dst);
            }
        }
    }
}

impl ValueSource for TapeEngine {
    fn signal(&self, id: SignalId) -> Bits {
        self.slot_bits(self.tape.sig_slots[id.0])
    }

    fn array_read(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        if index < meta.depth as usize {
            let wpe = meta.wpe as usize;
            Bits::from_words(
                meta.width as usize,
                &self.arrays[array.0][index * wpe..(index + 1) * wpe],
            )
        } else {
            Bits::zero(meta.width as usize)
        }
    }
}

impl SimBackend for TapeEngine {
    fn kind(&self) -> Backend {
        Backend::Compiled
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        let tape = Arc::clone(&self.tape);
        for op in &tape.ops {
            exec_op(
                op,
                &mut self.arena,
                &mut self.scratch,
                &self.arrays,
                &tape.arrays,
            );
        }
        self.dirty = false;
    }

    fn commit(&mut self, cycle: u64, log: &mut Vec<(u64, String)>) {
        self.settle();
        let tape = Arc::clone(&self.tape);

        for p in &tape.prints {
            if any_set(&self.arena, p.enable) {
                let msg = match p.value {
                    Some(v) => format!("{}: {:x}", p.label, self.slot_bits(v)),
                    None => p.label.clone(),
                };
                log.push((cycle, msg));
            }
        }

        for (i, s) in tape.sig_slots.iter().enumerate() {
            let mut t = 0u32;
            for k in s.range() {
                t += (self.arena[k] ^ self.prev_arena[k]).count_ones();
            }
            self.toggles[i] += u64::from(t);
        }
        self.prev_arena.copy_from_slice(&self.arena);

        // Array writes read the pre-edge arena (their operand slots may
        // alias register current-value slots), so they commit first; the
        // written memories are only read back at the next settle.
        for w in &tape.writes {
            if any_set(&self.arena, w.enable) {
                let meta = &tape.arrays[w.array as usize];
                let idx = self.arena[w.index.off()] as usize;
                if idx < meta.depth as usize {
                    let wpe = meta.wpe as usize;
                    self.arrays[w.array as usize][idx * wpe..(idx + 1) * wpe]
                        .copy_from_slice(&self.arena[w.data.range()]);
                }
            }
        }
        for (cur, next) in &tape.reg_commits {
            copy_slot(&mut self.arena, *cur, *next);
        }
        self.dirty = true;
    }

    fn peek_id(&self, id: SignalId) -> Bits {
        self.slot_bits(self.tape.sig_slots[id.0])
    }

    fn poke_id(&mut self, id: SignalId, value: Bits) {
        let s = self.tape.sig_slots[id.0];
        // Skip the dirty flag (and thus the eager re-settle) when the
        // poked value is already the current one — testbenches re-drive
        // constant handshake lines every cycle.
        if self.arena[s.range()] == *value.as_words() {
            return;
        }
        self.arena[s.range()].copy_from_slice(value.as_words());
        self.dirty = true;
    }

    fn peek_array(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        Bits::from_words(
            meta.width as usize,
            &self.arrays[array.0][index * wpe..(index + 1) * wpe],
        )
    }

    fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits) {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        self.arrays[array.0][index * wpe..(index + 1) * wpe].copy_from_slice(value.as_words());
        self.dirty = true;
    }

    fn eval(&self, e: &Expr) -> Bits {
        eval_expr(e, self)
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = StateHasher::new();
        for s in &self.tape.reg_fp {
            h.add(s.width(), &self.arena[s.range()]);
        }
        for (i, meta) in self.tape.arrays.iter().enumerate() {
            let wpe = meta.wpe as usize;
            for e in 0..meta.depth as usize {
                h.add(meta.width as usize, &self.arrays[i][e * wpe..(e + 1) * wpe]);
            }
        }
        h.finish()
    }

    fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    fn reset(&mut self) {
        self.arena.copy_from_slice(&self.tape.init_arena);
        self.prev_arena.copy_from_slice(&self.arena);
        for (store, meta) in self.arrays.iter_mut().zip(&self.tape.arrays) {
            store.copy_from_slice(&meta.init);
        }
        self.toggles.fill(0);
        self.dirty = true;
    }
}

// The tape and its engine cross thread boundaries (batch simulation,
// BMC workers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tape>();
    assert_send_sync::<TapeEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// 128-bit datapath: multi-word add, mul, slice, concat, shift.
    #[test]
    fn wide_ops_match_tree() {
        use crate::engine::Sim;
        let mut m = Module::new("wide");
        let a = m.input("a", 128);
        let b = m.input("b", 128);
        let sum = m.output("sum", 128);
        let prod = m.output("prod", 128);
        let hi = m.output("hi", 64);
        let cat = m.output("cat", 192);
        let shl = m.output("shl", 128);
        let shr = m.output("shr", 128);
        let red = m.output("red", 1);
        m.assign(sum, Expr::Signal(a).add(Expr::Signal(b)));
        m.assign(
            prod,
            Expr::bin(BinaryOp::Mul, Expr::Signal(a), Expr::Signal(b)),
        );
        m.assign(
            hi,
            Expr::Slice {
                base: Box::new(Expr::Signal(a)),
                lo: 64,
                width: 64,
            },
        );
        m.assign(
            cat,
            Expr::Concat(vec![Expr::Signal(b).slice(0, 64), Expr::Signal(a)]),
        );
        m.assign(
            shl,
            Expr::bin(BinaryOp::Shl, Expr::Signal(a), Expr::lit(65, 8)),
        );
        m.assign(
            shr,
            Expr::bin(BinaryOp::Shr, Expr::Signal(a), Expr::lit(3, 8)),
        );
        m.assign(red, Expr::Unary(UnaryOp::RedXor, Box::new(Expr::Signal(a))));

        let mut tree = Sim::with_backend(&m, Backend::Tree).unwrap();
        let mut tape = Sim::with_backend(&m, Backend::Compiled).unwrap();
        let va = Bits::from_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_FEDC_BA98, 128);
        let vb = Bits::from_u128(0x1111_2222_3333_4444_5555_6666_7777_8888, 128);
        for s in [&mut tree, &mut tape] {
            s.poke("a", va.clone()).unwrap();
            s.poke("b", vb.clone()).unwrap();
        }
        for out in ["sum", "prod", "hi", "cat", "shl", "shr", "red"] {
            assert_eq!(
                tree.peek(out).unwrap(),
                tape.peek(out).unwrap(),
                "output `{out}` diverged"
            );
        }
    }

    #[test]
    fn width_mismatched_driver_rejected() {
        use crate::engine::Sim;
        let mut m = Module::new("bad");
        let o = m.output("o", 4);
        m.assign(o, Expr::lit(0, 5));
        let err = match Sim::with_backend(&m, Backend::Compiled) {
            Err(e) => e,
            Ok(_) => panic!("expected a width error"),
        };
        assert_eq!(
            err,
            SimError::DriverWidth {
                signal: "o".into(),
                expected: 4,
                found: 5
            }
        );
    }
}
