//! The compiled simulation backend: a one-time lowering of a flattened
//! [`Module`] into a linear instruction tape.
//!
//! [`Tape::compile`] topologically schedules every combinational driver
//! (via [`Module::comb_schedule`]), width-checks it, and flattens its
//! recursive [`Expr`] tree into word-level ops over a flat `u64` arena:
//! every signal, register next-value, debug-print operand, array-write
//! operand, constant, and intermediate gets a pre-resolved *slot* (word
//! offset + width). [`TapeEngine`] then executes one settle as a single
//! non-recursive pass over the op list — no name lookups, no `HashMap`
//! probes, no per-node heap allocation — which is what makes brute-forcing
//! many stimulus schedules (BMC, differential fuzzing, the scenario sweeps
//! the ROADMAP asks for) practical.
//!
//! Lowering re-derives every expression width while allocating slots, so
//! it enforces the same driver width discipline as the facade's shared
//! pre-check ([`SimError::DriverWidth`] / [`SimError::MalformedExpr`]) —
//! a malformed module can never reach the executor.

use std::sync::Arc;

use anvil_rtl::{ArrayId, BinaryOp, Bits, Expr, Module, SignalId, SignalKind, UnaryOp};

use crate::engine::{eval_expr, Backend, SimBackend, SimError, StateHasher, ValueSource};

/// A pre-resolved storage location in the arena: `words` little-endian
/// `u64`s starting at word offset `off`, holding a `width`-bit value with
/// the unused high bits of the top word kept zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Slot {
    off: u32,
    words: u32,
    width: u32,
}

impl Slot {
    fn off(self) -> usize {
        self.off as usize
    }

    fn words(self) -> usize {
        self.words as usize
    }

    fn width(self) -> usize {
        self.width as usize
    }

    fn range(self) -> std::ops::Range<usize> {
        self.off()..self.off() + self.words()
    }

    /// Mask keeping only the valid bits of the top word.
    fn top_mask(self) -> u64 {
        let r = self.width % 64;
        if r == 0 {
            u64::MAX
        } else {
            (1u64 << r) - 1
        }
    }
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

/// Comparison selector for [`Op::Cmp`].
#[derive(Clone, Copy, Debug)]
enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Reduction selector for [`Op::Red`].
#[derive(Clone, Copy, Debug)]
enum RedKind {
    And,
    Or,
    Xor,
    LogicNot,
}

/// One word-level instruction. All operands are pre-resolved slots; the
/// executor is a single flat `match` loop with no recursion.
#[derive(Clone, Debug)]
enum Op {
    /// `dst = src` (equal widths).
    Copy { dst: Slot, src: Slot },
    /// `dst = ~a`.
    Not { dst: Slot, a: Slot },
    /// `dst = -a` (two's complement, wrapping).
    Neg { dst: Slot, a: Slot },
    /// `dst = a + b` (wrapping).
    Add { dst: Slot, a: Slot, b: Slot },
    /// `dst = a - b` (wrapping).
    Sub { dst: Slot, a: Slot, b: Slot },
    /// `dst = a * b` (wrapping; uses the engine scratch buffer).
    Mul { dst: Slot, a: Slot, b: Slot },
    /// `dst = a & b`.
    And { dst: Slot, a: Slot, b: Slot },
    /// `dst = a | b`.
    Or { dst: Slot, a: Slot, b: Slot },
    /// `dst = a ^ b`.
    Xor { dst: Slot, a: Slot, b: Slot },
    /// 1-bit comparison result.
    Cmp {
        dst: Slot,
        a: Slot,
        b: Slot,
        kind: CmpKind,
    },
    /// 1-bit reduction result.
    Red { dst: Slot, a: Slot, kind: RedKind },
    /// `dst = a << amt` / `a >> amt`; amount read from a slot at run time.
    Shift {
        dst: Slot,
        a: Slot,
        amt: Slot,
        left: bool,
    },
    /// `dst = cond ? t : e` (truthy = any bit set).
    Mux {
        dst: Slot,
        cond: Slot,
        t: Slot,
        e: Slot,
    },
    /// `dst = src[lo +: dst.width]`, zero-extending past the top of `src`.
    Slice { dst: Slot, src: Slot, lo: u32 },
    /// Concatenation: each part is OR-ed into `dst` at its bit offset
    /// (parts tile `dst` exactly; `dst` is zeroed first).
    Concat {
        dst: Slot,
        parts: Box<[(Slot, u32)]>,
    },
    /// Zero-extension or truncation.
    Resize { dst: Slot, src: Slot },
    /// Asynchronous memory read; out-of-range indices yield zero.
    ArrayRead { dst: Slot, array: u32, index: Slot },
}

/// A lowered synchronous array write port.
#[derive(Clone, Debug)]
struct TapeWrite {
    array: u32,
    enable: Slot,
    index: Slot,
    data: Slot,
}

/// A lowered debug print.
#[derive(Clone, Debug)]
struct TapePrint {
    enable: Slot,
    label: String,
    value: Option<Slot>,
}

/// Word-packed memory metadata: element `e` lives at
/// `data[e * wpe .. (e + 1) * wpe]`.
#[derive(Clone, Debug)]
struct TapeArray {
    width: u32,
    depth: u32,
    wpe: u32,
    init: Vec<u64>,
}

/// The immutable compiled program: share one `Arc<Tape>` across as many
/// [`TapeEngine`] instances (and threads) as needed — e.g. the bounded
/// model checker lowers once and replays thousands of traces.
pub(crate) struct Tape {
    /// The settle program: comb drivers in topological order, then print
    /// operands, then register next-values, then array-write operands.
    ops: Vec<Op>,
    /// Current-value slot of every signal, indexed by [`SignalId`].
    sig_slots: Vec<Slot>,
    /// `(current, next)` slot pairs for registers with next-value drivers.
    reg_commits: Vec<(Slot, Slot)>,
    /// Current-value slots of all registers in id order (fingerprints).
    reg_fp: Vec<Slot>,
    writes: Vec<TapeWrite>,
    prints: Vec<TapePrint>,
    arrays: Vec<TapeArray>,
    /// Power-on arena image: zeros, register inits, and materialized
    /// constants.
    init_arena: Vec<u64>,
}

/// Bump-allocating tape builder.
struct Builder {
    arena: Vec<u64>,
    ops: Vec<Op>,
    sig_slots: Vec<Slot>,
}

impl Builder {
    fn alloc(&mut self, width: usize) -> Slot {
        let words = words_for(width);
        let off = self.arena.len();
        self.arena.resize(off + words, 0);
        Slot {
            off: off as u32,
            words: words as u32,
            width: width as u32,
        }
    }

    /// Materializes a constant into the arena image (no op emitted; the
    /// slot is never written at run time).
    fn alloc_const(&mut self, value: &Bits) -> Slot {
        let slot = self.alloc(value.width());
        self.write_const(slot, value);
        slot
    }

    fn write_const(&mut self, slot: Slot, value: &Bits) {
        let words = value.as_words();
        self.arena[slot.range()].copy_from_slice(&words[..slot.words()]);
    }

    /// Lowers `e`, returning the slot holding its value. When `want` is
    /// given and matches the expression's width, the result is computed
    /// directly into it (leaf expressions ignore `want`; the caller copies).
    fn expr(&mut self, m: &Module, e: &Expr, want: Option<Slot>) -> Result<Slot, SimError> {
        let dst_for = |b: &mut Builder, w: usize| match want {
            Some(d) if d.width() == w => d,
            _ => b.alloc(w),
        };
        match e {
            Expr::Const(b) => Ok(self.alloc_const(b)),
            Expr::Signal(s) => self
                .sig_slots
                .get(s.0)
                .copied()
                .ok_or_else(|| SimError::MalformedExpr(format!("unknown signal {s:?}"))),
            Expr::Unary(op, a) => {
                let sa = self.expr(m, a, None)?;
                match op {
                    UnaryOp::Not => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Not { dst, a: sa });
                        Ok(dst)
                    }
                    UnaryOp::Neg => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Neg { dst, a: sa });
                        Ok(dst)
                    }
                    UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor | UnaryOp::LogicNot => {
                        let dst = dst_for(self, 1);
                        let kind = match op {
                            UnaryOp::RedAnd => RedKind::And,
                            UnaryOp::RedOr => RedKind::Or,
                            UnaryOp::RedXor => RedKind::Xor,
                            _ => RedKind::LogicNot,
                        };
                        self.ops.push(Op::Red { dst, a: sa, kind });
                        Ok(dst)
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let sa = self.expr(m, a, None)?;
                let sb = self.expr(m, b, None)?;
                match op {
                    BinaryOp::Shl | BinaryOp::Shr => {
                        let dst = dst_for(self, sa.width());
                        self.ops.push(Op::Shift {
                            dst,
                            a: sa,
                            amt: sb,
                            left: matches!(op, BinaryOp::Shl),
                        });
                        Ok(dst)
                    }
                    _ => {
                        if sa.width != sb.width {
                            return Err(SimError::MalformedExpr(format!(
                                "operand width mismatch {} vs {} in {op:?}",
                                sa.width, sb.width
                            )));
                        }
                        if op.is_comparison() {
                            let dst = dst_for(self, 1);
                            let kind = match op {
                                BinaryOp::Eq => CmpKind::Eq,
                                BinaryOp::Ne => CmpKind::Ne,
                                BinaryOp::Lt => CmpKind::Lt,
                                BinaryOp::Le => CmpKind::Le,
                                BinaryOp::Gt => CmpKind::Gt,
                                _ => CmpKind::Ge,
                            };
                            self.ops.push(Op::Cmp {
                                dst,
                                a: sa,
                                b: sb,
                                kind,
                            });
                            Ok(dst)
                        } else {
                            let dst = dst_for(self, sa.width());
                            self.ops.push(match op {
                                BinaryOp::Add => Op::Add { dst, a: sa, b: sb },
                                BinaryOp::Sub => Op::Sub { dst, a: sa, b: sb },
                                BinaryOp::Mul => Op::Mul { dst, a: sa, b: sb },
                                BinaryOp::And => Op::And { dst, a: sa, b: sb },
                                BinaryOp::Or => Op::Or { dst, a: sa, b: sb },
                                _ => Op::Xor { dst, a: sa, b: sb },
                            });
                            Ok(dst)
                        }
                    }
                }
            }
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => {
                let sc = self.expr(m, cond, None)?;
                let st = self.expr(m, then_e, None)?;
                let se = self.expr(m, else_e, None)?;
                if st.width != se.width {
                    return Err(SimError::MalformedExpr(format!(
                        "mux branch width mismatch {} vs {}",
                        st.width, se.width
                    )));
                }
                let dst = dst_for(self, st.width());
                self.ops.push(Op::Mux {
                    dst,
                    cond: sc,
                    t: st,
                    e: se,
                });
                Ok(dst)
            }
            Expr::Concat(parts) => {
                if parts.is_empty() {
                    return Err(SimError::MalformedExpr("empty concat".into()));
                }
                let slots = parts
                    .iter()
                    .map(|p| self.expr(m, p, None))
                    .collect::<Result<Vec<_>, _>>()?;
                let width: usize = slots.iter().map(|s| s.width()).sum();
                // Parts are given most-significant first; compute each
                // part's bit offset in the result.
                let mut placed = Vec::with_capacity(slots.len());
                let mut lo = width;
                for s in &slots {
                    lo -= s.width();
                    placed.push((*s, lo as u32));
                }
                let dst = dst_for(self, width);
                self.ops.push(Op::Concat {
                    dst,
                    parts: placed.into_boxed_slice(),
                });
                Ok(dst)
            }
            Expr::Slice { base, lo, width } => {
                if *width == 0 {
                    return Err(SimError::MalformedExpr("zero-width slice".into()));
                }
                let src = self.expr(m, base, None)?;
                let dst = dst_for(self, *width);
                self.ops.push(Op::Slice {
                    dst,
                    src,
                    lo: *lo as u32,
                });
                Ok(dst)
            }
            Expr::ArrayRead { array, index } => {
                let decl = m
                    .arrays
                    .get(array.0)
                    .ok_or_else(|| SimError::MalformedExpr(format!("unknown array {array:?}")))?;
                let index = self.expr(m, index, None)?;
                let dst = dst_for(self, decl.width);
                self.ops.push(Op::ArrayRead {
                    dst,
                    array: array.0 as u32,
                    index,
                });
                Ok(dst)
            }
            Expr::Resize { base, width } => {
                if *width == 0 {
                    return Err(SimError::MalformedExpr("zero-width resize".into()));
                }
                let src = self.expr(m, base, None)?;
                let dst = dst_for(self, *width);
                self.ops.push(Op::Resize { dst, src });
                Ok(dst)
            }
        }
    }

    /// Lowers a driver expression into `target`, enforcing the declared
    /// width (`name` labels the error).
    ///
    /// Constant drivers still lower to a `Copy` from a materialized const
    /// slot rather than being baked into the arena image: the signal slot
    /// must start at zero so first-cycle toggle counts match the tree
    /// engine exactly.
    fn drive(&mut self, m: &Module, e: &Expr, target: Slot, name: &str) -> Result<(), SimError> {
        let s = self.expr(m, e, Some(target))?;
        if s.width != target.width {
            return Err(SimError::DriverWidth {
                signal: name.to_string(),
                expected: target.width(),
                found: s.width(),
            });
        }
        if s != target {
            self.ops.push(Op::Copy {
                dst: target,
                src: s,
            });
        }
        Ok(())
    }
}

impl Tape {
    /// Lowers a flattened module into an instruction tape.
    ///
    /// # Errors
    ///
    /// [`SimError::NotFlat`] if instances remain,
    /// [`SimError::CombinationalLoop`] on a cyclic combinational graph,
    /// [`SimError::DriverWidth`] / [`SimError::MalformedExpr`] when a
    /// driver fails the width check.
    pub(crate) fn compile(module: Arc<Module>) -> Result<Tape, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::NotFlat(module.name.clone()));
        }
        let order = module
            .comb_schedule()
            .map_err(|sid| SimError::CombinationalLoop(module.signal(sid).name.clone()))?;

        let mut b = Builder {
            arena: Vec::new(),
            ops: Vec::new(),
            sig_slots: Vec::new(),
        };

        // 1. A current-value slot per signal; register inits materialized.
        for s in &module.signals {
            let slot = b.alloc(s.width);
            if let (SignalKind::Reg, Some(init)) = (&s.kind, &s.init) {
                b.write_const(slot, init);
            }
            b.sig_slots.push(slot);
        }

        // 2. Combinational drivers in topological order.
        for id in &order {
            let target = b.sig_slots[id.0];
            let name = module.signal(*id).name.clone();
            b.drive(&module, &module.assigns[id], target, &name)?;
        }

        // 3. Debug-print operands (read the settled state).
        let mut prints = Vec::with_capacity(module.prints.len());
        for p in &module.prints {
            let enable = b.expr(&module, &p.enable, None)?;
            let value = match &p.value {
                Some(v) => Some(b.expr(&module, v, None)?),
                None => None,
            };
            prints.push(TapePrint {
                enable,
                label: p.label.clone(),
                value,
            });
        }

        // 4. Register next-values into dedicated `next` slots, in id order.
        let mut reg_ids: Vec<SignalId> = module.reg_next.keys().copied().collect();
        reg_ids.sort();
        let mut reg_commits = Vec::with_capacity(reg_ids.len());
        for id in reg_ids {
            let sig = module.signal(id);
            let next = b.alloc(sig.width);
            b.drive(&module, &module.reg_next[&id], next, &sig.name)?;
            reg_commits.push((b.sig_slots[id.0], next));
        }

        // 5. Array-write operands.
        let mut writes = Vec::with_capacity(module.array_writes.len());
        for w in &module.array_writes {
            let decl = &module.arrays[w.array.0];
            let enable = b.expr(&module, &w.enable, None)?;
            let index = b.expr(&module, &w.index, None)?;
            let data = b.expr(&module, &w.data, None)?;
            if data.width() != decl.width {
                return Err(SimError::DriverWidth {
                    signal: decl.name.clone(),
                    expected: decl.width,
                    found: data.width(),
                });
            }
            writes.push(TapeWrite {
                array: w.array.0 as u32,
                enable,
                index,
                data,
            });
        }

        // 6. Word-packed memory images.
        let arrays = module
            .arrays
            .iter()
            .map(|a| {
                let wpe = words_for(a.width);
                let mut init = vec![0u64; wpe * a.depth];
                for (i, v) in a.init.iter().enumerate() {
                    let words = v.as_words();
                    init[i * wpe..i * wpe + words.len().min(wpe)]
                        .copy_from_slice(&words[..words.len().min(wpe)]);
                }
                TapeArray {
                    width: a.width as u32,
                    depth: a.depth as u32,
                    wpe: wpe as u32,
                    init,
                }
            })
            .collect();

        let reg_fp = module
            .iter_signals()
            .filter(|(_, s)| s.kind == SignalKind::Reg)
            .map(|(id, _)| b.sig_slots[id.0])
            .collect();

        Ok(Tape {
            ops: b.ops,
            sig_slots: b.sig_slots,
            reg_commits,
            reg_fp,
            writes,
            prints,
            arrays,
            init_arena: b.arena,
        })
    }
}

// ---- word-level helpers -------------------------------------------------

fn any_set(arena: &[u64], s: Slot) -> bool {
    arena[s.range()].iter().any(|w| *w != 0)
}

fn zero_slot(arena: &mut [u64], s: Slot) {
    arena[s.range()].fill(0);
}

fn copy_slot(arena: &mut [u64], dst: Slot, src: Slot) {
    let (d, s) = (dst.off(), src.off());
    for k in 0..dst.words() {
        arena[d + k] = arena[s + k];
    }
}

/// Reads `n` (≤ 64) bits of `s` starting at bit `lo`; bits past the slot's
/// storage are zero (slot values keep their high bits masked).
fn read_chunk(arena: &[u64], s: Slot, lo: usize, n: usize) -> u64 {
    let total = s.words() * 64;
    if lo >= total {
        return 0;
    }
    let wi = lo / 64;
    let sh = lo % 64;
    let mut v = arena[s.off() + wi] >> sh;
    if sh != 0 && wi + 1 < s.words() {
        v |= arena[s.off() + wi + 1] << (64 - sh);
    }
    if n < 64 {
        v &= (1u64 << n) - 1;
    }
    v
}

/// ORs `n` (≤ 64) bits into `s` starting at bit `lo`. The target bits must
/// currently be zero (callers zero the destination first).
fn or_chunk(arena: &mut [u64], s: Slot, lo: usize, n: usize, val: u64) {
    let wi = lo / 64;
    let sh = lo % 64;
    let v = if n < 64 { val & ((1u64 << n) - 1) } else { val };
    arena[s.off() + wi] |= v << sh;
    if sh != 0 && sh + n > 64 {
        arena[s.off() + wi + 1] |= v >> (64 - sh);
    }
}

/// ORs `n` bits of `src` (starting at `src_lo`) into `dst` at `dst_lo`.
fn or_bits(arena: &mut [u64], dst: Slot, dst_lo: usize, src: Slot, src_lo: usize, n: usize) {
    let mut k = 0;
    while k < n {
        let step = (n - k).min(64);
        let v = read_chunk(arena, src, src_lo + k, step);
        or_chunk(arena, dst, dst_lo + k, step, v);
        k += step;
    }
}

fn unsigned_lt(arena: &[u64], a: Slot, b: Slot) -> bool {
    for k in (0..a.words()).rev() {
        let (x, y) = (arena[a.off() + k], arena[b.off() + k]);
        if x != y {
            return x < y;
        }
    }
    false
}

fn words_eq(arena: &[u64], a: Slot, b: Slot) -> bool {
    (0..a.words()).all(|k| arena[a.off() + k] == arena[b.off() + k])
}

/// The executor: one arena of current values, one snapshot for toggle
/// counting, word-packed memories, and a scratch buffer for
/// multiplications. All per-cycle work is allocation-free.
pub(crate) struct TapeEngine {
    tape: Arc<Tape>,
    arena: Vec<u64>,
    /// Previous settled arena (toggle counting).
    prev_arena: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    toggles: Vec<u64>,
    scratch: Vec<u64>,
    dirty: bool,
}

impl TapeEngine {
    pub(crate) fn new(tape: Arc<Tape>) -> Self {
        let arena = tape.init_arena.clone();
        let arrays = tape.arrays.iter().map(|a| a.init.clone()).collect();
        let n = tape.sig_slots.len();
        let max_words = tape
            .sig_slots
            .iter()
            .map(|s| s.words())
            .max()
            .unwrap_or(1)
            .max(
                tape.ops
                    .iter()
                    .map(|op| match op {
                        Op::Mul { dst, .. } => dst.words(),
                        _ => 1,
                    })
                    .max()
                    .unwrap_or(1),
            );
        TapeEngine {
            prev_arena: arena.clone(),
            arena,
            arrays,
            toggles: vec![0; n],
            scratch: vec![0; max_words],
            tape: Arc::clone(&tape),
            dirty: true,
        }
    }

    fn slot_bits(&self, s: Slot) -> Bits {
        Bits::from_words(s.width(), &self.arena[s.range()])
    }
}

/// Executes one op. `arrays` is read-only here: memories are only written
/// at the clock edge, never during a settle pass.
fn exec_op(
    op: &Op,
    arena: &mut [u64],
    scratch: &mut [u64],
    arrays: &[Vec<u64>],
    metas: &[TapeArray],
) {
    match op {
        Op::Copy { dst, src } => copy_slot(arena, *dst, *src),
        Op::Not { dst, a } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = !arena[a.off() + k];
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Neg { dst, a } => {
            let mut borrow = 0u64;
            for k in 0..dst.words() {
                let y = arena[a.off() + k];
                let (d1, b1) = 0u64.overflowing_sub(y);
                let (d2, b2) = d1.overflowing_sub(borrow);
                arena[dst.off() + k] = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Add { dst, a, b } => {
            let mut carry = 0u64;
            for k in 0..dst.words() {
                let (s1, c1) = arena[a.off() + k].overflowing_add(arena[b.off() + k]);
                let (s2, c2) = s1.overflowing_add(carry);
                arena[dst.off() + k] = s2;
                carry = u64::from(c1) | u64::from(c2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Sub { dst, a, b } => {
            let mut borrow = 0u64;
            for k in 0..dst.words() {
                let (d1, b1) = arena[a.off() + k].overflowing_sub(arena[b.off() + k]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                arena[dst.off() + k] = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::Mul { dst, a, b } => {
            let w = dst.words();
            let scratch = &mut scratch[..w];
            scratch.fill(0);
            for i in 0..w {
                let ai = arena[a.off() + i];
                if ai == 0 {
                    continue;
                }
                let mut carry: u128 = 0;
                for j in 0..w - i {
                    let cur = scratch[i + j] as u128
                        + (ai as u128) * (arena[b.off() + j] as u128)
                        + carry;
                    scratch[i + j] = cur as u64;
                    carry = cur >> 64;
                }
            }
            arena[dst.range()].copy_from_slice(scratch);
            arena[dst.off() + dst.words() - 1] &= dst.top_mask();
        }
        Op::And { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] & arena[b.off() + k];
            }
        }
        Op::Or { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] | arena[b.off() + k];
            }
        }
        Op::Xor { dst, a, b } => {
            for k in 0..dst.words() {
                arena[dst.off() + k] = arena[a.off() + k] ^ arena[b.off() + k];
            }
        }
        Op::Cmp { dst, a, b, kind } => {
            let r = match kind {
                CmpKind::Eq => words_eq(arena, *a, *b),
                CmpKind::Ne => !words_eq(arena, *a, *b),
                CmpKind::Lt => unsigned_lt(arena, *a, *b),
                CmpKind::Le => !unsigned_lt(arena, *b, *a),
                CmpKind::Gt => unsigned_lt(arena, *b, *a),
                CmpKind::Ge => !unsigned_lt(arena, *a, *b),
            };
            arena[dst.off()] = u64::from(r);
        }
        Op::Red { dst, a, kind } => {
            let r = match kind {
                RedKind::And => {
                    (0..a.words() - 1).all(|k| arena[a.off() + k] == u64::MAX)
                        && arena[a.off() + a.words() - 1] == a.top_mask()
                }
                RedKind::Or => any_set(arena, *a),
                RedKind::Xor => {
                    arena[a.range()]
                        .iter()
                        .fold(0u32, |acc, w| acc ^ w.count_ones())
                        % 2
                        == 1
                }
                RedKind::LogicNot => !any_set(arena, *a),
            };
            arena[dst.off()] = u64::from(r);
        }
        Op::Shift { dst, a, amt, left } => {
            let n = arena[amt.off()].min(u64::from(u32::MAX)) as usize;
            let width = dst.width();
            zero_slot(arena, *dst);
            if n < width {
                if *left {
                    or_bits(arena, *dst, n, *a, 0, width - n);
                } else {
                    or_bits(arena, *dst, 0, *a, n, width - n);
                }
            }
        }
        Op::Mux { dst, cond, t, e } => {
            let src = if any_set(arena, *cond) { *t } else { *e };
            copy_slot(arena, *dst, src);
        }
        Op::Slice { dst, src, lo } => {
            zero_slot(arena, *dst);
            or_bits(arena, *dst, 0, *src, *lo as usize, dst.width());
        }
        Op::Concat { dst, parts } => {
            zero_slot(arena, *dst);
            for (part, lo) in parts.iter() {
                or_bits(arena, *dst, *lo as usize, *part, 0, part.width());
            }
        }
        Op::Resize { dst, src } => {
            zero_slot(arena, *dst);
            let n = dst.width().min(src.width());
            or_bits(arena, *dst, 0, *src, 0, n);
        }
        Op::ArrayRead { dst, array, index } => {
            let meta = &metas[*array as usize];
            let idx = arena[index.off()] as usize;
            if idx < meta.depth as usize {
                let wpe = meta.wpe as usize;
                let elem = &arrays[*array as usize][idx * wpe..(idx + 1) * wpe];
                arena[dst.range()].copy_from_slice(elem);
            } else {
                zero_slot(arena, *dst);
            }
        }
    }
}

impl ValueSource for TapeEngine {
    fn signal(&self, id: SignalId) -> Bits {
        self.slot_bits(self.tape.sig_slots[id.0])
    }

    fn array_read(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        if index < meta.depth as usize {
            let wpe = meta.wpe as usize;
            Bits::from_words(
                meta.width as usize,
                &self.arrays[array.0][index * wpe..(index + 1) * wpe],
            )
        } else {
            Bits::zero(meta.width as usize)
        }
    }
}

impl SimBackend for TapeEngine {
    fn kind(&self) -> Backend {
        Backend::Compiled
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        let tape = Arc::clone(&self.tape);
        for op in &tape.ops {
            exec_op(
                op,
                &mut self.arena,
                &mut self.scratch,
                &self.arrays,
                &tape.arrays,
            );
        }
        self.dirty = false;
    }

    fn commit(&mut self, cycle: u64, log: &mut Vec<(u64, String)>) {
        self.settle();
        let tape = Arc::clone(&self.tape);

        for p in &tape.prints {
            if any_set(&self.arena, p.enable) {
                let msg = match p.value {
                    Some(v) => format!("{}: {:x}", p.label, self.slot_bits(v)),
                    None => p.label.clone(),
                };
                log.push((cycle, msg));
            }
        }

        for (i, s) in tape.sig_slots.iter().enumerate() {
            let mut t = 0u32;
            for k in s.range() {
                t += (self.arena[k] ^ self.prev_arena[k]).count_ones();
            }
            self.toggles[i] += u64::from(t);
        }
        self.prev_arena.copy_from_slice(&self.arena);

        // Array writes read the pre-edge arena (their operand slots may
        // alias register current-value slots), so they commit first; the
        // written memories are only read back at the next settle.
        for w in &tape.writes {
            if any_set(&self.arena, w.enable) {
                let meta = &tape.arrays[w.array as usize];
                let idx = self.arena[w.index.off()] as usize;
                if idx < meta.depth as usize {
                    let wpe = meta.wpe as usize;
                    self.arrays[w.array as usize][idx * wpe..(idx + 1) * wpe]
                        .copy_from_slice(&self.arena[w.data.range()]);
                }
            }
        }
        for (cur, next) in &tape.reg_commits {
            copy_slot(&mut self.arena, *cur, *next);
        }
        self.dirty = true;
    }

    fn peek_id(&self, id: SignalId) -> Bits {
        self.slot_bits(self.tape.sig_slots[id.0])
    }

    fn poke_id(&mut self, id: SignalId, value: Bits) {
        let s = self.tape.sig_slots[id.0];
        // Skip the dirty flag (and thus the eager re-settle) when the
        // poked value is already the current one — testbenches re-drive
        // constant handshake lines every cycle.
        if self.arena[s.range()] == *value.as_words() {
            return;
        }
        self.arena[s.range()].copy_from_slice(value.as_words());
        self.dirty = true;
    }

    fn peek_array(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        Bits::from_words(
            meta.width as usize,
            &self.arrays[array.0][index * wpe..(index + 1) * wpe],
        )
    }

    fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits) {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        self.arrays[array.0][index * wpe..(index + 1) * wpe].copy_from_slice(value.as_words());
        self.dirty = true;
    }

    fn eval(&self, e: &Expr) -> Bits {
        eval_expr(e, self)
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = StateHasher::new();
        for s in &self.tape.reg_fp {
            h.add(s.width(), &self.arena[s.range()]);
        }
        for (i, meta) in self.tape.arrays.iter().enumerate() {
            let wpe = meta.wpe as usize;
            for e in 0..meta.depth as usize {
                h.add(meta.width as usize, &self.arrays[i][e * wpe..(e + 1) * wpe]);
            }
        }
        h.finish()
    }

    fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    fn reset(&mut self) {
        self.arena.copy_from_slice(&self.tape.init_arena);
        self.prev_arena.copy_from_slice(&self.arena);
        for (store, meta) in self.arrays.iter_mut().zip(&self.tape.arrays) {
            store.copy_from_slice(&meta.init);
        }
        self.toggles.fill(0);
        self.dirty = true;
    }
}

// ---- multi-lane execution ----------------------------------------------
//
// The same tape, executed across [`LANES`] independent stimulus lanes at
// once. The state arena becomes a structure-of-arrays at word granularity:
// logical arena word `w` of lane `l` lives at `arena[w * LANES + l]`, so a
// slot's storage is the contiguous range `s.off()*LANES .. (s.off() +
// s.words())*LANES`. Every op decodes once and its inner loop runs across
// all lanes over contiguous memory — the dispatch cost is amortized
// `LANES`-fold and the lane loops auto-vectorize (8 × u64 = one AVX-512
// register, two AVX2 registers).
//
// Lane-divergent behaviour (mux selects, shift amounts, memory indices,
// print enables, toggle counts, fingerprints) is handled per lane; the
// result is bit-identical to running `LANES` scalar [`TapeEngine`]s.

/// Number of stimulus lanes a [`LaneEngine`] executes in lockstep. Fixed
/// (rather than const-generic) so there is exactly one monomorphized
/// executor; wider batches stack multiple engines.
pub(crate) const LANES: usize = 8;

#[inline]
fn lane_base(s: Slot, k: usize) -> usize {
    (s.off() + k) * LANES
}

fn zero_slot_lane(arena: &mut [u64], s: Slot, l: usize) {
    for k in 0..s.words() {
        arena[lane_base(s, k) + l] = 0;
    }
}

fn any_set_lane(arena: &[u64], s: Slot, l: usize) -> bool {
    (0..s.words()).any(|k| arena[lane_base(s, k) + l] != 0)
}

/// Lane-indexed [`read_chunk`]: `n` (≤ 64) bits of lane `l` of `s`
/// starting at bit `lo`.
fn read_chunk_lane(arena: &[u64], s: Slot, lo: usize, n: usize, l: usize) -> u64 {
    let total = s.words() * 64;
    if lo >= total {
        return 0;
    }
    let wi = lo / 64;
    let sh = lo % 64;
    let mut v = arena[lane_base(s, wi) + l] >> sh;
    if sh != 0 && wi + 1 < s.words() {
        v |= arena[lane_base(s, wi + 1) + l] << (64 - sh);
    }
    if n < 64 {
        v &= (1u64 << n) - 1;
    }
    v
}

/// Lane-indexed [`or_chunk`]; target bits must currently be zero.
fn or_chunk_lane(arena: &mut [u64], s: Slot, lo: usize, n: usize, val: u64, l: usize) {
    let wi = lo / 64;
    let sh = lo % 64;
    let v = if n < 64 { val & ((1u64 << n) - 1) } else { val };
    arena[lane_base(s, wi) + l] |= v << sh;
    if sh != 0 && sh + n > 64 {
        arena[lane_base(s, wi + 1) + l] |= v >> (64 - sh);
    }
}

/// Per-lane [`or_bits`] (used where the bit offset differs per lane, i.e.
/// run-time shifts).
fn or_bits_lane(
    arena: &mut [u64],
    dst: Slot,
    dst_lo: usize,
    src: Slot,
    src_lo: usize,
    n: usize,
    l: usize,
) {
    let mut k = 0;
    while k < n {
        let step = (n - k).min(64);
        let v = read_chunk_lane(arena, src, src_lo + k, step, l);
        or_chunk_lane(arena, dst, dst_lo + k, step, v, l);
        k += step;
    }
}

/// All-lane [`or_bits`]: the chunk arithmetic is shared across lanes, the
/// inner lane loop runs over contiguous words (slices, concats, resizes).
fn or_bits_lanes(arena: &mut [u64], dst: Slot, dst_lo: usize, src: Slot, src_lo: usize, n: usize) {
    let mut k = 0;
    while k < n {
        let step = (n - k).min(64);
        for l in 0..LANES {
            let v = read_chunk_lane(arena, src, src_lo + k, step, l);
            or_chunk_lane(arena, dst, dst_lo + k, step, v, l);
        }
        k += step;
    }
}

fn unsigned_lt_lane(arena: &[u64], a: Slot, b: Slot, l: usize) -> bool {
    for k in (0..a.words()).rev() {
        let (x, y) = (arena[lane_base(a, k) + l], arena[lane_base(b, k) + l]);
        if x != y {
            return x < y;
        }
    }
    false
}

/// Masks the top word of every lane of `s` down to its valid bits.
fn mask_top_lanes(arena: &mut [u64], s: Slot) {
    let m = s.top_mask();
    if m == u64::MAX {
        return;
    }
    let base = lane_base(s, s.words() - 1);
    for l in 0..LANES {
        arena[base + l] &= m;
    }
}

/// Zeroes every lane of `s` (contiguous in the laned layout).
fn zero_slot_lanes(arena: &mut [u64], s: Slot) {
    let base = s.off() * LANES;
    arena[base..base + s.words() * LANES].fill(0);
}

/// Executes one op across all lanes. `scratch` holds `LANES` lane-major
/// segments for multi-word multiplication.
fn exec_op_lanes(
    op: &Op,
    arena: &mut [u64],
    scratch: &mut [u64],
    arrays: &[Vec<u64>],
    metas: &[TapeArray],
) {
    match op {
        Op::Copy { dst, src } => {
            let (d, s) = (dst.off() * LANES, src.off() * LANES);
            arena.copy_within(s..s + src.words() * LANES, d);
        }
        Op::Not { dst, a } => {
            let (d, s) = (dst.off() * LANES, a.off() * LANES);
            for i in 0..dst.words() * LANES {
                arena[d + i] = !arena[s + i];
            }
            mask_top_lanes(arena, *dst);
        }
        Op::Neg { dst, a } => {
            let mut borrow = [0u64; LANES];
            for k in 0..dst.words() {
                let (ab, db) = (lane_base(*a, k), lane_base(*dst, k));
                for l in 0..LANES {
                    let (d1, b1) = 0u64.overflowing_sub(arena[ab + l]);
                    let (d2, b2) = d1.overflowing_sub(borrow[l]);
                    arena[db + l] = d2;
                    borrow[l] = u64::from(b1) | u64::from(b2);
                }
            }
            mask_top_lanes(arena, *dst);
        }
        Op::Add { dst, a, b } => {
            let mut carry = [0u64; LANES];
            for k in 0..dst.words() {
                let (ab, bb, db) = (lane_base(*a, k), lane_base(*b, k), lane_base(*dst, k));
                for l in 0..LANES {
                    let (s1, c1) = arena[ab + l].overflowing_add(arena[bb + l]);
                    let (s2, c2) = s1.overflowing_add(carry[l]);
                    arena[db + l] = s2;
                    carry[l] = u64::from(c1) | u64::from(c2);
                }
            }
            mask_top_lanes(arena, *dst);
        }
        Op::Sub { dst, a, b } => {
            let mut borrow = [0u64; LANES];
            for k in 0..dst.words() {
                let (ab, bb, db) = (lane_base(*a, k), lane_base(*b, k), lane_base(*dst, k));
                for l in 0..LANES {
                    let (d1, b1) = arena[ab + l].overflowing_sub(arena[bb + l]);
                    let (d2, b2) = d1.overflowing_sub(borrow[l]);
                    arena[db + l] = d2;
                    borrow[l] = u64::from(b1) | u64::from(b2);
                }
            }
            mask_top_lanes(arena, *dst);
        }
        Op::Mul { dst, a, b } => {
            let w = dst.words();
            for l in 0..LANES {
                let acc = l * w;
                scratch[acc..acc + w].fill(0);
                for i in 0..w {
                    let ai = arena[lane_base(*a, i) + l];
                    if ai == 0 {
                        continue;
                    }
                    let mut carry: u128 = 0;
                    for j in 0..w - i {
                        let cur = scratch[acc + i + j] as u128
                            + (ai as u128) * (arena[lane_base(*b, j) + l] as u128)
                            + carry;
                        scratch[acc + i + j] = cur as u64;
                        carry = cur >> 64;
                    }
                }
                for k in 0..w {
                    arena[lane_base(*dst, k) + l] = scratch[acc + k];
                }
            }
            mask_top_lanes(arena, *dst);
        }
        Op::And { dst, a, b } => {
            let (d, x, y) = (dst.off() * LANES, a.off() * LANES, b.off() * LANES);
            for i in 0..dst.words() * LANES {
                arena[d + i] = arena[x + i] & arena[y + i];
            }
        }
        Op::Or { dst, a, b } => {
            let (d, x, y) = (dst.off() * LANES, a.off() * LANES, b.off() * LANES);
            for i in 0..dst.words() * LANES {
                arena[d + i] = arena[x + i] | arena[y + i];
            }
        }
        Op::Xor { dst, a, b } => {
            let (d, x, y) = (dst.off() * LANES, a.off() * LANES, b.off() * LANES);
            for i in 0..dst.words() * LANES {
                arena[d + i] = arena[x + i] ^ arena[y + i];
            }
        }
        Op::Cmp { dst, a, b, kind } => {
            let db = dst.off() * LANES;
            match kind {
                CmpKind::Eq | CmpKind::Ne => {
                    let mut diff = [0u64; LANES];
                    for k in 0..a.words() {
                        let (ab, bb) = (lane_base(*a, k), lane_base(*b, k));
                        for l in 0..LANES {
                            diff[l] |= arena[ab + l] ^ arena[bb + l];
                        }
                    }
                    let want_eq = matches!(kind, CmpKind::Eq);
                    for l in 0..LANES {
                        arena[db + l] = u64::from((diff[l] == 0) == want_eq);
                    }
                }
                CmpKind::Lt => {
                    for l in 0..LANES {
                        arena[db + l] = u64::from(unsigned_lt_lane(arena, *a, *b, l));
                    }
                }
                CmpKind::Le => {
                    for l in 0..LANES {
                        arena[db + l] = u64::from(!unsigned_lt_lane(arena, *b, *a, l));
                    }
                }
                CmpKind::Gt => {
                    for l in 0..LANES {
                        arena[db + l] = u64::from(unsigned_lt_lane(arena, *b, *a, l));
                    }
                }
                CmpKind::Ge => {
                    for l in 0..LANES {
                        arena[db + l] = u64::from(!unsigned_lt_lane(arena, *a, *b, l));
                    }
                }
            }
        }
        Op::Red { dst, a, kind } => {
            let db = dst.off() * LANES;
            match kind {
                RedKind::Or | RedKind::LogicNot => {
                    let mut acc = [0u64; LANES];
                    for k in 0..a.words() {
                        let ab = lane_base(*a, k);
                        for l in 0..LANES {
                            acc[l] |= arena[ab + l];
                        }
                    }
                    let want_any = matches!(kind, RedKind::Or);
                    for l in 0..LANES {
                        arena[db + l] = u64::from((acc[l] != 0) == want_any);
                    }
                }
                RedKind::Xor => {
                    let mut acc = [0u64; LANES];
                    for k in 0..a.words() {
                        let ab = lane_base(*a, k);
                        for l in 0..LANES {
                            acc[l] ^= arena[ab + l];
                        }
                    }
                    for l in 0..LANES {
                        arena[db + l] = u64::from(acc[l].count_ones() % 2 == 1);
                    }
                }
                RedKind::And => {
                    let mut all = [true; LANES];
                    for k in 0..a.words() {
                        let ab = lane_base(*a, k);
                        let expect = if k + 1 == a.words() {
                            a.top_mask()
                        } else {
                            u64::MAX
                        };
                        for l in 0..LANES {
                            all[l] &= arena[ab + l] == expect;
                        }
                    }
                    for l in 0..LANES {
                        arena[db + l] = u64::from(all[l]);
                    }
                }
            }
        }
        Op::Shift { dst, a, amt, left } => {
            let width = dst.width();
            for l in 0..LANES {
                let n = arena[amt.off() * LANES + l].min(u64::from(u32::MAX)) as usize;
                zero_slot_lane(arena, *dst, l);
                if n < width {
                    if *left {
                        or_bits_lane(arena, *dst, n, *a, 0, width - n, l);
                    } else {
                        or_bits_lane(arena, *dst, 0, *a, n, width - n, l);
                    }
                }
            }
        }
        Op::Mux { dst, cond, t, e } => {
            let mut mask = [0u64; LANES];
            for k in 0..cond.words() {
                let cb = lane_base(*cond, k);
                for l in 0..LANES {
                    mask[l] |= arena[cb + l];
                }
            }
            for m in &mut mask {
                *m = if *m != 0 { u64::MAX } else { 0 };
            }
            for k in 0..dst.words() {
                let (db, tb, eb) = (lane_base(*dst, k), lane_base(*t, k), lane_base(*e, k));
                for l in 0..LANES {
                    arena[db + l] = (arena[tb + l] & mask[l]) | (arena[eb + l] & !mask[l]);
                }
            }
        }
        Op::Slice { dst, src, lo } => {
            zero_slot_lanes(arena, *dst);
            or_bits_lanes(arena, *dst, 0, *src, *lo as usize, dst.width());
        }
        Op::Concat { dst, parts } => {
            zero_slot_lanes(arena, *dst);
            for (part, lo) in parts.iter() {
                or_bits_lanes(arena, *dst, *lo as usize, *part, 0, part.width());
            }
        }
        Op::Resize { dst, src } => {
            zero_slot_lanes(arena, *dst);
            let n = dst.width().min(src.width());
            or_bits_lanes(arena, *dst, 0, *src, 0, n);
        }
        Op::ArrayRead { dst, array, index } => {
            let meta = &metas[*array as usize];
            let wpe = meta.wpe as usize;
            let store = &arrays[*array as usize];
            for l in 0..LANES {
                let idx = arena[index.off() * LANES + l] as usize;
                if idx < meta.depth as usize {
                    for k in 0..wpe {
                        arena[lane_base(*dst, k) + l] = store[(idx * wpe + k) * LANES + l];
                    }
                } else {
                    zero_slot_lane(arena, *dst, l);
                }
            }
        }
    }
}

/// The multi-lane executor: one laned arena holding [`LANES`] independent
/// copies of the design's state, all advanced by a single pass over the
/// op list per settle. Bit-identical to `LANES` scalar [`TapeEngine`]s
/// (differentially property-tested over the whole evaluation suite).
pub(crate) struct LaneEngine {
    tape: Arc<Tape>,
    /// Laned arena: logical word `w`, lane `l` ↦ `arena[w * LANES + l]`.
    arena: Vec<u64>,
    /// Previous settled arena (per-lane toggle counting).
    prev_arena: Vec<u64>,
    /// Laned memories: element `e`, word `k`, lane `l` ↦
    /// `arrays[a][(e * wpe + k) * LANES + l]`.
    arrays: Vec<Vec<u64>>,
    /// Per-signal, per-lane toggle counters (`sig * LANES + lane`).
    toggles: Vec<u64>,
    /// Lane-major multiplication scratch (`LANES` segments).
    scratch: Vec<u64>,
    /// Pre-sized gather buffer reused by every fingerprint call.
    fp_scratch: Vec<u64>,
    dirty: bool,
}

impl LaneEngine {
    pub(crate) fn new(tape: Arc<Tape>) -> Self {
        let arena = Bits::broadcast_slab(&tape.init_arena, LANES);
        let arrays: Vec<Vec<u64>> = tape
            .arrays
            .iter()
            .map(|a| Bits::broadcast_slab(&a.init, LANES))
            .collect();
        let n = tape.sig_slots.len();
        let mul_words = tape
            .ops
            .iter()
            .map(|op| match op {
                Op::Mul { dst, .. } => dst.words(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
            .max(1);
        let fp_words = tape
            .reg_fp
            .iter()
            .map(|s| s.words())
            .chain(tape.arrays.iter().map(|a| a.wpe as usize))
            .max()
            .unwrap_or(1);
        LaneEngine {
            prev_arena: arena.clone(),
            arena,
            arrays,
            toggles: vec![0; n * LANES],
            scratch: vec![0; mul_words * LANES],
            fp_scratch: vec![0; fp_words],
            tape,
            dirty: true,
        }
    }

    /// Settles all lanes: one pass over the op list, every op's inner loop
    /// covering all [`LANES`] lanes.
    pub(crate) fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        let tape = Arc::clone(&self.tape);
        for op in &tape.ops {
            exec_op_lanes(
                op,
                &mut self.arena,
                &mut self.scratch,
                &self.arrays,
                &tape.arrays,
            );
        }
        self.dirty = false;
    }

    /// One clock edge for every lane: per-lane debug prints (delivered to
    /// `sink` as `(lane, message)`), per-lane toggle counting, per-lane
    /// array writes, and the register commit.
    pub(crate) fn commit(&mut self, sink: &mut dyn FnMut(usize, String)) {
        self.settle();
        let tape = Arc::clone(&self.tape);

        for p in &tape.prints {
            for l in 0..LANES {
                if any_set_lane(&self.arena, p.enable, l) {
                    let msg = match p.value {
                        Some(v) => format!("{}: {:x}", p.label, self.slot_bits_lane(v, l)),
                        None => p.label.clone(),
                    };
                    sink(l, msg);
                }
            }
        }

        for (i, s) in tape.sig_slots.iter().enumerate() {
            for k in 0..s.words() {
                let base = lane_base(*s, k);
                for l in 0..LANES {
                    self.toggles[i * LANES + l] +=
                        u64::from((self.arena[base + l] ^ self.prev_arena[base + l]).count_ones());
                }
            }
        }
        self.prev_arena.copy_from_slice(&self.arena);

        // As in the scalar engine: array writes read the pre-edge arena,
        // so they commit before the register next-values land.
        for w in &tape.writes {
            let meta = &tape.arrays[w.array as usize];
            let wpe = meta.wpe as usize;
            for l in 0..LANES {
                if any_set_lane(&self.arena, w.enable, l) {
                    let idx = self.arena[w.index.off() * LANES + l] as usize;
                    if idx < meta.depth as usize {
                        for k in 0..wpe {
                            self.arrays[w.array as usize][(idx * wpe + k) * LANES + l] =
                                self.arena[lane_base(w.data, k) + l];
                        }
                    }
                }
            }
        }
        for (cur, next) in &tape.reg_commits {
            let (d, s) = (cur.off() * LANES, next.off() * LANES);
            self.arena.copy_within(s..s + next.words() * LANES, d);
        }
        self.dirty = true;
    }

    fn slot_bits_lane(&self, s: Slot, lane: usize) -> Bits {
        let base = s.off() * LANES;
        Bits::from_lane_slab(
            s.width(),
            &self.arena[base..base + s.words() * LANES],
            LANES,
            lane,
        )
    }

    /// Reads one lane of a signal. The caller is responsible for settling
    /// first (the `SimBatch` facade does).
    pub(crate) fn peek_lane(&self, id: SignalId, lane: usize) -> Bits {
        self.slot_bits_lane(self.tape.sig_slots[id.0], lane)
    }

    /// Writes one lane of an input signal (width pre-checked by the
    /// facade). Skips the dirty flag when the lane already holds `value`.
    pub(crate) fn poke_lane(&mut self, id: SignalId, value: &Bits, lane: usize) {
        let s = self.tape.sig_slots[id.0];
        let base = s.off() * LANES;
        let words = value.as_words();
        if (0..s.words()).all(|k| self.arena[base + k * LANES + lane] == words[k]) {
            return;
        }
        value.write_lane_slab(&mut self.arena[base..base + s.words() * LANES], LANES, lane);
        self.dirty = true;
    }

    /// Reads one lane of one memory element.
    pub(crate) fn peek_array_lane(&self, array: ArrayId, index: usize, lane: usize) -> Bits {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        Bits::from_lane_slab(
            meta.width as usize,
            &self.arrays[array.0][index * wpe * LANES..(index + 1) * wpe * LANES],
            LANES,
            lane,
        )
    }

    /// Writes one lane of one memory element (width pre-matched by the
    /// facade).
    pub(crate) fn poke_array_lane(
        &mut self,
        array: ArrayId,
        index: usize,
        value: &Bits,
        lane: usize,
    ) {
        let meta = &self.tape.arrays[array.0];
        assert!(
            index < meta.depth as usize,
            "array index {index} out of range for depth {}",
            meta.depth
        );
        let wpe = meta.wpe as usize;
        value.write_lane_slab(
            &mut self.arrays[array.0][index * wpe * LANES..(index + 1) * wpe * LANES],
            LANES,
            lane,
        );
        self.dirty = true;
    }

    /// Evaluates an expression against one settled lane.
    pub(crate) fn eval_lane(&self, e: &Expr, lane: usize) -> Bits {
        eval_expr(e, &LaneView { engine: self, lane })
    }

    /// Canonical architectural-state hash of one lane — equal to the
    /// scalar backends' [`SimBackend::state_fingerprint`] for equal
    /// states. Reuses the engine's pre-sized gather scratch, so the call
    /// is allocation-free.
    pub(crate) fn state_fingerprint_lane(&mut self, lane: usize) -> u64 {
        let tape = Arc::clone(&self.tape);
        let mut h = StateHasher::new();
        for s in &tape.reg_fp {
            let n = s.words();
            for k in 0..n {
                self.fp_scratch[k] = self.arena[lane_base(*s, k) + lane];
            }
            h.add(s.width(), &self.fp_scratch[..n]);
        }
        for (i, meta) in tape.arrays.iter().enumerate() {
            let wpe = meta.wpe as usize;
            for e in 0..meta.depth as usize {
                for k in 0..wpe {
                    self.fp_scratch[k] = self.arrays[i][(e * wpe + k) * LANES + lane];
                }
                h.add(meta.width as usize, &self.fp_scratch[..wpe]);
            }
        }
        h.finish()
    }

    /// Total observed bit toggles per signal on one lane, in signal-id
    /// order (matches [`SimBackend::toggle_counts`]).
    pub(crate) fn toggle_counts_lane(&self, lane: usize) -> Vec<u64> {
        (0..self.tape.sig_slots.len())
            .map(|i| self.toggles[i * LANES + lane])
            .collect()
    }

    /// Restores every lane to power-on state.
    pub(crate) fn reset(&mut self) {
        let tape = Arc::clone(&self.tape);
        for (k, w) in tape.init_arena.iter().enumerate() {
            self.arena[k * LANES..(k + 1) * LANES].fill(*w);
        }
        self.prev_arena.copy_from_slice(&self.arena);
        for (store, meta) in self.arrays.iter_mut().zip(&tape.arrays) {
            for (k, w) in meta.init.iter().enumerate() {
                store[k * LANES..(k + 1) * LANES].fill(*w);
            }
        }
        self.toggles.fill(0);
        self.dirty = true;
    }
}

/// Read view of one lane, backing [`LaneEngine::eval_lane`] through the
/// shared expression evaluator.
struct LaneView<'a> {
    engine: &'a LaneEngine,
    lane: usize,
}

impl ValueSource for LaneView<'_> {
    fn signal(&self, id: SignalId) -> Bits {
        self.engine
            .slot_bits_lane(self.engine.tape.sig_slots[id.0], self.lane)
    }

    fn array_read(&self, array: ArrayId, index: usize) -> Bits {
        let meta = &self.engine.tape.arrays[array.0];
        if index < meta.depth as usize {
            let wpe = meta.wpe as usize;
            Bits::from_lane_slab(
                meta.width as usize,
                &self.engine.arrays[array.0][index * wpe * LANES..(index + 1) * wpe * LANES],
                LANES,
                self.lane,
            )
        } else {
            Bits::zero(meta.width as usize)
        }
    }
}

// The tape and its engines cross thread boundaries (batch simulation,
// BMC sweep workers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tape>();
    assert_send_sync::<TapeEngine>();
    assert_send_sync::<LaneEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// 128-bit datapath: multi-word add, mul, slice, concat, shift.
    #[test]
    fn wide_ops_match_tree() {
        use crate::engine::Sim;
        let mut m = Module::new("wide");
        let a = m.input("a", 128);
        let b = m.input("b", 128);
        let sum = m.output("sum", 128);
        let prod = m.output("prod", 128);
        let hi = m.output("hi", 64);
        let cat = m.output("cat", 192);
        let shl = m.output("shl", 128);
        let shr = m.output("shr", 128);
        let red = m.output("red", 1);
        m.assign(sum, Expr::Signal(a).add(Expr::Signal(b)));
        m.assign(
            prod,
            Expr::bin(BinaryOp::Mul, Expr::Signal(a), Expr::Signal(b)),
        );
        m.assign(
            hi,
            Expr::Slice {
                base: Box::new(Expr::Signal(a)),
                lo: 64,
                width: 64,
            },
        );
        m.assign(
            cat,
            Expr::Concat(vec![Expr::Signal(b).slice(0, 64), Expr::Signal(a)]),
        );
        m.assign(
            shl,
            Expr::bin(BinaryOp::Shl, Expr::Signal(a), Expr::lit(65, 8)),
        );
        m.assign(
            shr,
            Expr::bin(BinaryOp::Shr, Expr::Signal(a), Expr::lit(3, 8)),
        );
        m.assign(red, Expr::Unary(UnaryOp::RedXor, Box::new(Expr::Signal(a))));

        let mut tree = Sim::with_backend(&m, Backend::Tree).unwrap();
        let mut tape = Sim::with_backend(&m, Backend::Compiled).unwrap();
        let va = Bits::from_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_FEDC_BA98, 128);
        let vb = Bits::from_u128(0x1111_2222_3333_4444_5555_6666_7777_8888, 128);
        for s in [&mut tree, &mut tape] {
            s.poke("a", va.clone()).unwrap();
            s.poke("b", vb.clone()).unwrap();
        }
        for out in ["sum", "prod", "hi", "cat", "shl", "shr", "red"] {
            assert_eq!(
                tree.peek(out).unwrap(),
                tape.peek(out).unwrap(),
                "output `{out}` diverged"
            );
        }
    }

    #[test]
    fn width_mismatched_driver_rejected() {
        use crate::engine::Sim;
        let mut m = Module::new("bad");
        let o = m.output("o", 4);
        m.assign(o, Expr::lit(0, 5));
        let err = match Sim::with_backend(&m, Backend::Compiled) {
            Err(e) => e,
            Ok(_) => panic!("expected a width error"),
        };
        assert_eq!(
            err,
            SimError::DriverWidth {
                signal: "o".into(),
                expected: 4,
                found: 5
            }
        );
    }
}
