//! Cycle-accurate simulation of flattened RTL netlists.
//!
//! This crate substitutes for the commercial SystemVerilog simulator the
//! paper's evaluation used (see DESIGN.md §1): a two-phase (combinational
//! settle, clock edge) engine that is bit- and cycle-accurate for the
//! synthesizable subset `anvil-rtl` can express.
//!
//! * [`Sim`] — poke/peek/step execution of one flattened [`anvil_rtl::Module`],
//! * [`Waveform`] — VCD and ASCII waveform capture (paper Figs. 1 and 4),
//! * [`Testbench`] / [`SenderBfm`] / [`ReceiverBfm`] — channel
//!   bus-functional models speaking the `data`/`valid`/`ack` handshake the
//!   Anvil compiler emits (paper §6.2), with configurable latencies for
//!   exploring dynamic timing behaviours.

#![warn(missing_docs)]

mod bfm;
mod engine;
mod vcd;

pub use bfm::{AckPolicy, Agent, MsgPorts, ReceiverBfm, SenderBfm, Testbench};
pub use engine::{Sim, SimError};
pub use vcd::Waveform;
