//! Cycle-accurate simulation of flattened RTL netlists.
//!
//! This crate substitutes for the commercial SystemVerilog simulator the
//! paper's evaluation used (see DESIGN.md §1): a two-phase (combinational
//! settle, clock edge) engine that is bit- and cycle-accurate for the
//! synthesizable subset `anvil-rtl` can express.
//!
//! * [`Sim`] — poke/peek/step execution of one flattened [`anvil_rtl::Module`],
//! * [`Waveform`] — VCD and ASCII waveform capture (paper Figs. 1 and 4),
//! * [`Testbench`] / [`SenderBfm`] / [`ReceiverBfm`] — channel
//!   bus-functional models speaking the `data`/`valid`/`ack` handshake the
//!   Anvil compiler emits (paper §6.2), with configurable latencies for
//!   exploring dynamic timing behaviours.
//!
//! # Two backends
//!
//! [`Sim`] drives one of two interchangeable engines behind the
//! [`SimBackend`] trait, selected per run with [`Sim::with_backend`] (or
//! the `ANVIL_SIM_BACKEND` environment variable for [`Sim::new`]):
//!
//! * [`Backend::Tree`] — the reference engine. Walks the module's
//!   recursive [`anvil_rtl::Expr`] trees every cycle; simple, and kept as
//!   the semantic baseline.
//! * [`Backend::Compiled`] — the default. A one-time lowering of the
//!   module into a linear instruction tape: combinational ops
//!   topologically scheduled, all signal/array references pre-resolved to
//!   word offsets in a flat `u64` arena, executed by a tight non-recursive
//!   loop with no per-cycle allocation. Several times faster per cycle
//!   (see the `sim_suite_*` benches and the README speedup table), which
//!   is what makes brute-forcing many stimulus schedules practical.
//!
//! The two engines produce bit-identical values, debug prints, toggle
//! counts, and [`Sim::state_fingerprint`]s; a differential property test
//! drives both over the paper's ten-design evaluation suite with random
//! stimulus every run.

//! # Multi-lane batch simulation
//!
//! [`SimBatch`] executes many independent stimulus lanes over **one**
//! lowered tape: the state arena becomes a structure-of-arrays whose lane
//! stride is monomorphized at `{4, 8, 16, 32}` and chosen when the
//! [`TapeProgram`] is built (`ANVIL_SIM_LANES` overrides the
//! [`LANE_STRIDE`] default), so each op decodes once and its inner loop
//! covers a compile-time-known row over contiguous memory. A
//! superinstruction fusion pass and dirty-region settle-skipping
//! ([`TapeOptions`]) cut the op count and the per-cycle work further —
//! all bit-identical to the scalar engines.
//! [`TapeProgram`] shares the one-time lowering across threads, and
//! [`sweep_chunks`] spreads lane-chunks over `std::thread::scope` workers
//! — the substrate for `anvil-verify`'s `bmc_sweep` and bulk differential
//! fuzzing. Per-lane observables are bit-identical to scalar [`Sim`]s.

#![warn(missing_docs)]

mod batch;
mod bfm;
mod engine;
mod tape;
mod vcd;

pub use batch::{run_indexed, sweep_chunks, SimBatch, TapeProgram, LANE_STRIDE};
pub use bfm::{AckPolicy, Agent, MsgPorts, ReceiverBfm, SenderBfm, Testbench};
pub use engine::{Backend, Sim, SimBackend, SimError};
pub use tape::TapeOptions;
pub use vcd::Waveform;
