//! The cycle-accurate two-phase simulation engine.
//!
//! Executes a *flattened* [`Module`] (see [`anvil_rtl::elaborate`]): each
//! cycle first settles every combinational signal in topological order
//! (phase 1), then commits register next-values and array writes on the
//! implicit rising clock edge (phase 2). This matches the synthesizable
//! subset's SystemVerilog semantics bit-for-bit and cycle-for-cycle, which
//! is all the paper's evaluation needs (functional equivalence + cycle
//! latency; see DESIGN.md §1 for the substitution rationale).

use std::collections::HashMap;
use std::fmt;

use anvil_rtl::{ArrayId, BinaryOp, Bits, Expr, Module, SignalId, SignalKind, UnaryOp};

/// Errors raised when preparing or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The design still contains instances; flatten it first.
    NotFlat(String),
    /// Combinational assignments form a cycle through the named signal.
    CombinationalLoop(String),
    /// A peek/poke referenced an unknown signal name.
    UnknownSignal(String),
    /// Poke of a non-input signal.
    NotAnInput(String),
    /// A value of the wrong width was poked.
    WidthMismatch {
        /// The poked signal.
        signal: String,
        /// Declared port width.
        expected: usize,
        /// Width of the poked value.
        found: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotFlat(m) => write!(f, "module `{m}` contains instances; elaborate first"),
            SimError::CombinationalLoop(s) => {
                write!(f, "combinational loop through signal `{s}`")
            }
            SimError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            SimError::NotAnInput(s) => write!(f, "signal `{s}` is not an input"),
            SimError::WidthMismatch {
                signal,
                expected,
                found,
            } => write!(
                f,
                "poked `{signal}` with width {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A running simulation of one flattened module.
///
/// # Examples
///
/// ```
/// use anvil_rtl::{Bits, Expr, Module};
/// use anvil_sim::Sim;
///
/// let mut m = Module::new("counter");
/// let en = m.input("en", 1);
/// let q = m.reg("q", 8);
/// let out = m.output("out", 8);
/// m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 8)));
/// m.assign(out, Expr::Signal(q));
///
/// let mut sim = Sim::new(&m)?;
/// sim.poke("en", Bits::bit(true))?;
/// for _ in 0..5 { sim.step()?; }
/// assert_eq!(sim.peek("out")?.to_u64(), 5);
/// # Ok::<(), anvil_sim::SimError>(())
/// ```
pub struct Sim {
    module: Module,
    /// Current value of every signal (inputs, wires, outputs, regs).
    values: Vec<Bits>,
    /// Previous settled values, for toggle counting.
    prev_values: Vec<Bits>,
    arrays: Vec<Vec<Bits>>,
    comb_order: Vec<SignalId>,
    cycle: u64,
    settled: bool,
    /// Total bit toggles observed per signal across the run.
    toggles: Vec<u64>,
    /// Messages produced by `dprint` actions, with their cycle numbers.
    pub log: Vec<(u64, String)>,
}

impl Sim {
    /// Prepares a simulation: checks the design is flat and free of
    /// combinational loops, initialises registers and memories.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotFlat`] if instances remain and
    /// [`SimError::CombinationalLoop`] if the combinational graph is cyclic.
    pub fn new(module: &Module) -> Result<Self, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::NotFlat(module.name.clone()));
        }
        let comb_order = comb_topo_order(module)?;
        let values: Vec<Bits> = module
            .signals
            .iter()
            .map(|s| match (&s.kind, &s.init) {
                (SignalKind::Reg, Some(init)) => init.clone(),
                _ => Bits::zero(s.width),
            })
            .collect();
        let arrays = module
            .arrays
            .iter()
            .map(|a| {
                let mut contents = vec![Bits::zero(a.width); a.depth];
                for (i, v) in a.init.iter().enumerate() {
                    contents[i] = v.clone();
                }
                contents
            })
            .collect();
        let n = values.len();
        Ok(Sim {
            module: module.clone(),
            prev_values: values.clone(),
            values,
            arrays,
            comb_order,
            cycle: 0,
            settled: false,
            toggles: vec![0; n],
            log: Vec::new(),
        })
    }

    /// Current cycle number (number of clock edges so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Sets an input port for the current cycle.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, non-input signals, or width mismatches.
    pub fn poke(&mut self, name: &str, value: Bits) -> Result<(), SimError> {
        let id = self
            .module
            .find(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        let sig = self.module.signal(id);
        if sig.kind != SignalKind::Input {
            return Err(SimError::NotAnInput(name.to_string()));
        }
        if sig.width != value.width() {
            return Err(SimError::WidthMismatch {
                signal: name.to_string(),
                expected: sig.width,
                found: value.width(),
            });
        }
        self.values[id.0] = value;
        self.settled = false;
        Ok(())
    }

    /// Evaluates all combinational logic with the current inputs and
    /// register state. Idempotent until the next poke or clock edge.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        for id in self.comb_order.clone() {
            let e = self.module.assigns[&id].clone();
            self.values[id.0] = self.eval(&e);
        }
        self.settled = true;
    }

    /// Reads a signal's settled value.
    ///
    /// # Errors
    ///
    /// Fails on unknown signal names.
    pub fn peek(&mut self, name: &str) -> Result<Bits, SimError> {
        self.settle();
        let id = self
            .module
            .find(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        Ok(self.values[id.0].clone())
    }

    /// Reads a signal by id (no name lookup).
    pub fn peek_id(&mut self, id: SignalId) -> Bits {
        self.settle();
        self.values[id.0].clone()
    }

    /// Reads one element of a memory (test visibility).
    pub fn peek_array(&self, array: ArrayId, index: usize) -> Bits {
        self.arrays[array.0][index].clone()
    }

    /// Writes one element of a memory directly (test setup).
    pub fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits) {
        self.arrays[array.0][index] = value;
        self.settled = false;
    }

    /// Advances one clock edge: settles, fires debug prints, counts
    /// toggles, then commits register next-values and array writes.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.settle();

        for p in self.module.prints.clone() {
            if self.eval(&p.enable).is_truthy() {
                let msg = match &p.value {
                    Some(v) => format!("{}: {:x}", p.label, self.eval(v)),
                    None => p.label.clone(),
                };
                self.log.push((self.cycle, msg));
            }
        }

        for (i, (cur, prev)) in self.values.iter().zip(&self.prev_values).enumerate() {
            self.toggles[i] += u64::from(cur.hamming_distance(prev));
        }
        self.prev_values.clone_from(&self.values);

        // Compute all register next-values from the settled state, then
        // commit simultaneously (nonblocking-assignment semantics).
        let mut next: HashMap<SignalId, Bits> = HashMap::new();
        for (reg, e) in self.module.reg_next.clone() {
            next.insert(reg, self.eval(&e));
        }
        let mut array_commits: Vec<(ArrayId, usize, Bits)> = Vec::new();
        for w in self.module.array_writes.clone() {
            if self.eval(&w.enable).is_truthy() {
                let idx = self.eval(&w.index).to_u64() as usize;
                let depth = self.arrays[w.array.0].len();
                if idx < depth {
                    array_commits.push((w.array, idx, self.eval(&w.data)));
                }
            }
        }
        for (reg, v) in next {
            self.values[reg.0] = v;
        }
        for (arr, idx, v) in array_commits {
            self.arrays[arr.0][idx] = v;
        }

        self.cycle += 1;
        self.settled = false;
        Ok(())
    }

    /// Runs `n` clock cycles with the current inputs.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// A hash of the architectural state (registers and memories), used
    /// by the bounded model checker to prune revisited states.
    pub fn state_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (id, sig) in self.module.iter_signals() {
            if sig.kind == SignalKind::Reg {
                self.values[id.0].hash(&mut h);
            }
        }
        for arr in &self.arrays {
            arr.hash(&mut h);
        }
        h.finish()
    }

    /// Total observed bit toggles per signal, for the power model.
    pub fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    /// Sum of toggles across all signals divided by cycles: a crude
    /// whole-design switching-activity figure.
    pub fn switching_activity(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.toggles.iter().sum::<u64>() as f64 / self.cycle as f64
    }

    /// Evaluates an expression against the current state.
    pub fn eval(&self, e: &Expr) -> Bits {
        match e {
            Expr::Const(b) => b.clone(),
            Expr::Signal(s) => self.values[s.0].clone(),
            Expr::Unary(op, a) => {
                let v = self.eval(a);
                match op {
                    UnaryOp::Not => v.not(),
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::RedAnd => Bits::bit(v.reduce_and()),
                    UnaryOp::RedOr => Bits::bit(v.reduce_or()),
                    UnaryOp::RedXor => Bits::bit(v.reduce_xor()),
                    UnaryOp::LogicNot => Bits::bit(v.is_zero()),
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a);
                let vb = self.eval(b);
                match op {
                    BinaryOp::Add => va.add(&vb),
                    BinaryOp::Sub => va.sub(&vb),
                    BinaryOp::Mul => va.mul(&vb),
                    BinaryOp::And => va.and(&vb),
                    BinaryOp::Or => va.or(&vb),
                    BinaryOp::Xor => va.xor(&vb),
                    BinaryOp::Eq => Bits::bit(va == vb),
                    BinaryOp::Ne => Bits::bit(va != vb),
                    BinaryOp::Lt => Bits::bit(va.lt(&vb)),
                    BinaryOp::Le => Bits::bit(!vb.lt(&va)),
                    BinaryOp::Gt => Bits::bit(vb.lt(&va)),
                    BinaryOp::Ge => Bits::bit(!va.lt(&vb)),
                    BinaryOp::Shl => va.shl(vb.to_u64().min(u64::from(u32::MAX)) as usize),
                    BinaryOp::Shr => va.shr(vb.to_u64().min(u64::from(u32::MAX)) as usize),
                }
            }
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => {
                if self.eval(cond).is_truthy() {
                    self.eval(then_e)
                } else {
                    self.eval(else_e)
                }
            }
            Expr::Concat(parts) => {
                let mut vals = parts.iter().map(|p| self.eval(p));
                let first = vals.next().expect("concat is non-empty");
                vals.fold(first, |acc, v| acc.concat(&v))
            }
            Expr::Slice { base, lo, width } => self.eval(base).slice(*lo, *width),
            Expr::ArrayRead { array, index } => {
                let idx = self.eval(index).to_u64() as usize;
                let contents = &self.arrays[array.0];
                if idx < contents.len() {
                    contents[idx].clone()
                } else {
                    Bits::zero(self.module.arrays[array.0].width)
                }
            }
            Expr::Resize { base, width } => self.eval(base).resize(*width),
        }
    }
}

/// Topologically orders all combinationally-driven signals; errors on a
/// combinational cycle.
fn comb_topo_order(m: &Module) -> Result<Vec<SignalId>, SimError> {
    let driven: Vec<SignalId> = {
        let mut v: Vec<SignalId> = m.assigns.keys().copied().collect();
        v.sort();
        v
    };
    // in-degree over comb-driven signals only
    let mut indeg: HashMap<SignalId, usize> = driven.iter().map(|s| (*s, 0)).collect();
    let mut dependents: HashMap<SignalId, Vec<SignalId>> = HashMap::new();
    for id in &driven {
        for dep in m.assigns[id].signals() {
            if m.assigns.contains_key(&dep) {
                *indeg.get_mut(id).expect("driven signal") += 1;
                dependents.entry(dep).or_default().push(*id);
            }
        }
    }
    let mut queue: Vec<SignalId> = driven.iter().filter(|s| indeg[s] == 0).copied().collect();
    let mut order = Vec::with_capacity(driven.len());
    while let Some(s) = queue.pop() {
        order.push(s);
        if let Some(deps) = dependents.get(&s) {
            for d in deps.clone() {
                let e = indeg.get_mut(&d).expect("driven signal");
                *e -= 1;
                if *e == 0 {
                    queue.push(d);
                }
            }
        }
    }
    if order.len() < driven.len() {
        let stuck = driven
            .iter()
            .find(|s| !order.contains(s))
            .expect("cycle implies a stuck signal");
        return Err(SimError::CombinationalLoop(m.signal(*stuck).name.clone()));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Module {
        let mut m = Module::new("counter");
        let en = m.input("en", 1);
        let q = m.reg("q", 8);
        let out = m.output("out", 8);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 8)));
        m.assign(out, Expr::Signal(q));
        m
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut s = Sim::new(&counter()).unwrap();
        s.poke("en", Bits::bit(true)).unwrap();
        s.run(3).unwrap();
        s.poke("en", Bits::bit(false)).unwrap();
        s.run(2).unwrap();
        assert_eq!(s.peek("out").unwrap().to_u64(), 3);
    }

    #[test]
    fn comb_chain_settles_in_order() {
        let mut m = Module::new("chain");
        let a = m.input("a", 4);
        let w1 = m.wire("w1", 4);
        let w2 = m.wire("w2", 4);
        let o = m.output("o", 4);
        // Deliberately declare in use-before-def order.
        m.assign(o, Expr::Signal(w2).add(Expr::lit(1, 4)));
        m.assign(w2, Expr::Signal(w1).add(Expr::lit(1, 4)));
        m.assign(w1, Expr::Signal(a).add(Expr::lit(1, 4)));
        let mut s = Sim::new(&m).unwrap();
        s.poke("a", Bits::from_u64(2, 4)).unwrap();
        assert_eq!(s.peek("o").unwrap().to_u64(), 5);
    }

    #[test]
    fn comb_loop_detected() {
        let mut m = Module::new("loopy");
        let w1 = m.wire("w1", 1);
        let w2 = m.wire("w2", 1);
        let o = m.output("o", 1);
        m.assign(w1, Expr::Signal(w2).not());
        m.assign(w2, Expr::Signal(w1).not());
        m.assign(o, Expr::Signal(w1));
        assert!(matches!(Sim::new(&m), Err(SimError::CombinationalLoop(_))));
    }

    #[test]
    fn registers_commit_simultaneously() {
        // Swap two registers every cycle: requires nonblocking semantics.
        let mut m = Module::new("swap");
        let a = m.reg_init("a", Bits::from_u64(1, 8));
        let b = m.reg_init("b", Bits::from_u64(2, 8));
        let oa = m.output("oa", 8);
        let ob = m.output("ob", 8);
        m.set_next(a, Expr::Signal(b));
        m.set_next(b, Expr::Signal(a));
        m.assign(oa, Expr::Signal(a));
        m.assign(ob, Expr::Signal(b));
        let mut s = Sim::new(&m).unwrap();
        s.step().unwrap();
        assert_eq!(s.peek("oa").unwrap().to_u64(), 2);
        assert_eq!(s.peek("ob").unwrap().to_u64(), 1);
        s.step().unwrap();
        assert_eq!(s.peek("oa").unwrap().to_u64(), 1);
    }

    #[test]
    fn array_write_and_read() {
        let mut m = Module::new("mem");
        let we = m.input("we", 1);
        let waddr = m.input("waddr", 2);
        let wdata = m.input("wdata", 8);
        let raddr = m.input("raddr", 2);
        let q = m.output("q", 8);
        let arr = m.array("mem", 8, 4);
        m.array_write(
            arr,
            Expr::Signal(we),
            Expr::Signal(waddr),
            Expr::Signal(wdata),
        );
        m.assign(
            q,
            Expr::ArrayRead {
                array: arr,
                index: Box::new(Expr::Signal(raddr)),
            },
        );
        let mut s = Sim::new(&m).unwrap();
        s.poke("we", Bits::bit(true)).unwrap();
        s.poke("waddr", Bits::from_u64(2, 2)).unwrap();
        s.poke("wdata", Bits::from_u64(0xAB, 8)).unwrap();
        s.step().unwrap();
        s.poke("we", Bits::bit(false)).unwrap();
        s.poke("raddr", Bits::from_u64(2, 2)).unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), 0xAB);
    }

    #[test]
    fn dprint_logs() {
        let mut m = Module::new("p");
        let en = m.input("en", 1);
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(en));
        m.dprint(Expr::Signal(en), "fired", Some(Expr::lit(0x5, 4)));
        let mut s = Sim::new(&m).unwrap();
        s.step().unwrap();
        s.poke("en", Bits::bit(true)).unwrap();
        s.step().unwrap();
        assert_eq!(s.log, vec![(1, "fired: 5".to_string())]);
    }

    #[test]
    fn toggle_counting() {
        let mut m = Module::new("t");
        let a = m.input("a", 4);
        let o = m.output("o", 4);
        m.assign(o, Expr::Signal(a));
        let mut s = Sim::new(&m).unwrap();
        s.poke("a", Bits::from_u64(0b1111, 4)).unwrap();
        s.step().unwrap(); // 0000 -> 1111: 4 toggles on a, 4 on o
        s.poke("a", Bits::from_u64(0b1110, 4)).unwrap();
        s.step().unwrap(); // 1 toggle on each
        assert_eq!(s.toggle_counts().iter().sum::<u64>(), 10);
    }

    #[test]
    fn unflattened_design_rejected() {
        let mut m = Module::new("hier");
        m.instance("x", "child", vec![]);
        assert!(matches!(Sim::new(&m), Err(SimError::NotFlat(_))));
    }
}
