//! The cycle-accurate two-phase simulation facade and the tree-walking
//! reference backend.
//!
//! [`Sim`] executes a *flattened* [`Module`] (see [`anvil_rtl::elaborate`]):
//! each cycle first settles every combinational signal in topological order
//! (phase 1), then commits register next-values and array writes on the
//! implicit rising clock edge (phase 2). This matches the synthesizable
//! subset's SystemVerilog semantics bit-for-bit and cycle-for-cycle, which
//! is all the paper's evaluation needs (functional equivalence + cycle
//! latency; see DESIGN.md §1 for the substitution rationale).
//!
//! Two interchangeable engines implement the [`SimBackend`] trait:
//!
//! * [`Backend::Tree`] — the reference engine in this module, which
//!   re-walks the recursive [`Expr`] trees every cycle, and
//! * [`Backend::Compiled`] — the instruction-tape engine in
//!   [`crate::tape`], a one-time lowering to topologically scheduled
//!   word-level ops over a flat `u64` arena.
//!
//! Both engines are driven through the same facade, produce bit-identical
//! signal values, debug prints, toggle counts, and state fingerprints, and
//! are differentially property-tested against each other over the paper's
//! ten-design evaluation suite.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use anvil_rtl::{ArrayId, BinaryOp, Bits, Expr, Module, SignalId, SignalKind, UnaryOp};

use crate::tape::{Tape, TapeEngine};

/// Errors raised when preparing or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The design still contains instances; flatten it first.
    NotFlat(String),
    /// Combinational assignments form a cycle through the named signal.
    CombinationalLoop(String),
    /// A peek/poke referenced an unknown signal name.
    UnknownSignal(String),
    /// Poke of a non-input signal.
    NotAnInput(String),
    /// A value of the wrong width was poked.
    WidthMismatch {
        /// The poked signal.
        signal: String,
        /// Declared port width.
        expected: usize,
        /// Width of the poked value.
        found: usize,
    },
    /// A driver expression's width differs from its target signal's
    /// declared width (the compiled backend width-checks every driver
    /// while lowering to the tape).
    DriverWidth {
        /// The mis-driven signal (or array, for write ports).
        signal: String,
        /// Declared width.
        expected: usize,
        /// Width of the driving expression.
        found: usize,
    },
    /// An expression could not be width-checked during tape lowering.
    MalformedExpr(String),
    /// The `ANVIL_SIM_BACKEND` environment variable holds an unrecognized
    /// value (never silently ignored: a typo would otherwise run every
    /// test on the wrong engine).
    UnknownBackend(String),
    /// A lane-engine stride (from `ANVIL_SIM_LANES` or
    /// [`TapeOptions::stride`](crate::TapeOptions)) is not one of the
    /// monomorphized widths. Like an unknown backend, a typo'd width is
    /// surfaced instead of silently running the default stride.
    UnknownLaneWidth(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotFlat(m) => write!(f, "module `{m}` contains instances; elaborate first"),
            SimError::CombinationalLoop(s) => {
                write!(f, "combinational loop through signal `{s}`")
            }
            SimError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            SimError::NotAnInput(s) => write!(f, "signal `{s}` is not an input"),
            SimError::WidthMismatch {
                signal,
                expected,
                found,
            } => write!(
                f,
                "poked `{signal}` with width {found}, expected {expected}"
            ),
            SimError::DriverWidth {
                signal,
                expected,
                found,
            } => write!(
                f,
                "driver of `{signal}` has width {found}, expected {expected}"
            ),
            SimError::MalformedExpr(s) => write!(f, "malformed expression: {s}"),
            SimError::UnknownBackend(v) => write!(
                f,
                "unrecognized ANVIL_SIM_BACKEND value `{v}`; valid values: \
                 tree, interp, compiled, tape"
            ),
            SimError::UnknownLaneWidth(v) => write!(
                f,
                "unrecognized lane width `{v}`; valid ANVIL_SIM_LANES values: \
                 4, 8, 16, 32"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Which engine executes the design.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The reference engine: walks the recursive `Expr` trees every cycle.
    Tree,
    /// The compiled engine: a one-time lowering to a linear instruction
    /// tape with pre-resolved slot indices and word-packed storage.
    #[default]
    Compiled,
}

impl Backend {
    /// Backend selected by the `ANVIL_SIM_BACKEND` environment variable:
    /// `tree` / `interp` select the reference engine, `compiled` / `tape`
    /// (or an unset/empty variable) the compiled engine.
    ///
    /// # Errors
    ///
    /// Any other value is an error naming the valid choices — an
    /// unrecognized backend is never silently replaced by the default,
    /// which would make e.g. `ANVIL_SIM_BACKEND=treee` run everything on
    /// the wrong engine without a hint.
    pub fn from_env() -> Result<Backend, SimError> {
        use std::env::VarError;
        match std::env::var("ANVIL_SIM_BACKEND") {
            Err(VarError::NotPresent) => Ok(Backend::Compiled),
            // A non-UTF-8 value is just as much a typo as a misspelled
            // one — surface it instead of silently running the default.
            Err(VarError::NotUnicode(raw)) => {
                Err(SimError::UnknownBackend(raw.to_string_lossy().into_owned()))
            }
            Ok(v) => Backend::from_name(&v),
        }
    }

    /// Parses a backend name (the `ANVIL_SIM_BACKEND` value set);
    /// the empty string selects the default.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBackend`] (listing the valid values)
    /// for anything else.
    pub fn from_name(name: &str) -> Result<Backend, SimError> {
        match name {
            "tree" | "interp" => Ok(Backend::Tree),
            "compiled" | "tape" | "" => Ok(Backend::Compiled),
            other => Err(SimError::UnknownBackend(other.to_string())),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Tree => write!(f, "tree"),
            Backend::Compiled => write!(f, "compiled"),
        }
    }
}

/// One simulation engine behind the [`Sim`] facade.
///
/// Implementations hold all mutable run state (signal values, memories,
/// toggle counters). The facade owns name resolution, width checking,
/// cycle counting, and the debug-print log; it guarantees that
/// `peek_id`/`poke_id` receive valid ids and width-matched values, and
/// that the engine is settled before any read.
pub trait SimBackend: Send {
    /// Which engine this is.
    fn kind(&self) -> Backend;
    /// Evaluates all combinational logic against the current inputs and
    /// register state. Must be idempotent (cheap when nothing changed).
    fn settle(&mut self);
    /// Fires debug prints into `log`, counts toggles, then commits
    /// register next-values and array writes (the rising clock edge).
    /// Assumes the engine is settled.
    fn commit(&mut self, cycle: u64, log: &mut Vec<(u64, String)>);
    /// Reads a settled signal value.
    fn peek_id(&self, id: SignalId) -> Bits;
    /// Writes an input signal (width pre-checked by the facade).
    fn poke_id(&mut self, id: SignalId, value: Bits);
    /// Reads one element of a memory.
    fn peek_array(&self, array: ArrayId, index: usize) -> Bits;
    /// Writes one element of a memory directly (the facade pre-resizes
    /// `value` to the declared element width).
    fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits);
    /// Evaluates an arbitrary expression against the settled state.
    fn eval(&self, e: &Expr) -> Bits;
    /// Hash of the architectural state (registers and memories); equal
    /// across backends for equal states.
    fn state_fingerprint(&self) -> u64;
    /// Total observed bit toggles per signal.
    fn toggle_counts(&self) -> &[u64];
    /// Restores the power-on state (register inits, memory inits, zeroed
    /// toggle counters).
    fn reset(&mut self);
}

/// Read access to settled signal and memory values, shared by the
/// expression evaluator across backends.
pub(crate) trait ValueSource {
    /// Current value of a signal.
    fn signal(&self, id: SignalId) -> Bits;
    /// Current value of one memory element; zero of the element width when
    /// `index` is out of range.
    fn array_read(&self, array: ArrayId, index: usize) -> Bits;
}

/// Evaluates an expression against a value source. This is the single
/// semantics definition both backends (and the BMC assertion checker)
/// share.
pub(crate) fn eval_expr(e: &Expr, src: &dyn ValueSource) -> Bits {
    match e {
        Expr::Const(b) => b.clone(),
        Expr::Signal(s) => src.signal(*s),
        Expr::Unary(op, a) => {
            let v = eval_expr(a, src);
            match op {
                UnaryOp::Not => v.not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::RedAnd => Bits::bit(v.reduce_and()),
                UnaryOp::RedOr => Bits::bit(v.reduce_or()),
                UnaryOp::RedXor => Bits::bit(v.reduce_xor()),
                UnaryOp::LogicNot => Bits::bit(v.is_zero()),
            }
        }
        Expr::Binary(op, a, b) => {
            let va = eval_expr(a, src);
            let vb = eval_expr(b, src);
            match op {
                BinaryOp::Add => va.add(&vb),
                BinaryOp::Sub => va.sub(&vb),
                BinaryOp::Mul => va.mul(&vb),
                BinaryOp::And => va.and(&vb),
                BinaryOp::Or => va.or(&vb),
                BinaryOp::Xor => va.xor(&vb),
                BinaryOp::Eq => Bits::bit(va == vb),
                BinaryOp::Ne => Bits::bit(va != vb),
                BinaryOp::Lt => Bits::bit(va.lt(&vb)),
                BinaryOp::Le => Bits::bit(!vb.lt(&va)),
                BinaryOp::Gt => Bits::bit(vb.lt(&va)),
                BinaryOp::Ge => Bits::bit(!va.lt(&vb)),
                BinaryOp::Shl => va.shl(vb.to_u64().min(u64::from(u32::MAX)) as usize),
                BinaryOp::Shr => va.shr(vb.to_u64().min(u64::from(u32::MAX)) as usize),
            }
        }
        Expr::Mux {
            cond,
            then_e,
            else_e,
        } => {
            if eval_expr(cond, src).is_truthy() {
                eval_expr(then_e, src)
            } else {
                eval_expr(else_e, src)
            }
        }
        Expr::Concat(parts) => {
            let mut vals = parts.iter().map(|p| eval_expr(p, src));
            let first = vals.next().expect("concat is non-empty");
            vals.fold(first, |acc, v| acc.concat(&v))
        }
        Expr::Slice { base, lo, width } => eval_expr(base, src).slice(*lo, *width),
        Expr::ArrayRead { array, index } => {
            let idx = eval_expr(index, src).to_u64() as usize;
            src.array_read(*array, idx)
        }
        Expr::Resize { base, width } => eval_expr(base, src).resize(*width),
    }
}

/// Canonical architectural-state hasher. Both backends feed it the same
/// `(width, words)` stream — registers in id order, then memories in
/// declaration order — so fingerprints agree bit-for-bit across engines.
pub(crate) struct StateHasher(std::collections::hash_map::DefaultHasher);

impl StateHasher {
    pub(crate) fn new() -> Self {
        StateHasher(std::collections::hash_map::DefaultHasher::new())
    }

    pub(crate) fn add(&mut self, width: usize, words: &[u64]) {
        width.hash(&mut self.0);
        words.hash(&mut self.0);
    }

    pub(crate) fn finish(self) -> u64 {
        self.0.finish()
    }
}

/// Rejects modules whose drivers fail to width-check, so both backends
/// accept exactly the same module set (the tape lowering re-derives the
/// same widths while allocating slots; the tree engine would otherwise
/// silently store mis-sized values or panic mid-cycle).
pub(crate) fn check_driver_widths(module: &Module) -> Result<(), SimError> {
    let check = |target: &str, declared: usize, e: &Expr| -> Result<(), SimError> {
        let found = module.expr_width(e).map_err(SimError::MalformedExpr)?;
        if found != declared {
            return Err(SimError::DriverWidth {
                signal: target.to_string(),
                expected: declared,
                found,
            });
        }
        Ok(())
    };
    for (id, e) in &module.assigns {
        let sig = module.signal(*id);
        check(&sig.name, sig.width, e)?;
    }
    for (id, e) in &module.reg_next {
        let sig = module.signal(*id);
        check(&sig.name, sig.width, e)?;
    }
    for w in &module.array_writes {
        let decl = &module.arrays[w.array.0];
        check(&decl.name, decl.width, &w.data)?;
        module
            .expr_width(&w.enable)
            .map_err(SimError::MalformedExpr)?;
        module
            .expr_width(&w.index)
            .map_err(SimError::MalformedExpr)?;
    }
    for p in &module.prints {
        module
            .expr_width(&p.enable)
            .map_err(SimError::MalformedExpr)?;
        if let Some(v) = &p.value {
            module.expr_width(v).map_err(SimError::MalformedExpr)?;
        }
    }
    Ok(())
}

/// The tree-walking reference engine: evaluates the module's `Expr` trees
/// directly, one recursive walk per driven signal per settle.
pub(crate) struct TreeEngine {
    module: Arc<Module>,
    /// Current value of every signal (inputs, wires, outputs, regs).
    values: Vec<Bits>,
    /// Previous settled values, for toggle counting.
    prev_values: Vec<Bits>,
    arrays: Vec<Vec<Bits>>,
    comb_order: Vec<SignalId>,
    /// Register next-value pairs in id order (deterministic iteration).
    reg_next: Vec<(SignalId, Expr)>,
    /// Total bit toggles observed per signal across the run.
    toggles: Vec<u64>,
    /// Reused commit scratch: computed register next-values. Kept on the
    /// engine so the per-cycle hot path never reallocates.
    next_scratch: Vec<(SignalId, Bits)>,
    /// Reused commit scratch: pending array writes.
    array_scratch: Vec<(ArrayId, usize, Bits)>,
    dirty: bool,
}

fn initial_values(module: &Module) -> Vec<Bits> {
    module
        .signals
        .iter()
        .map(|s| match (&s.kind, &s.init) {
            (SignalKind::Reg, Some(init)) => init.clone(),
            _ => Bits::zero(s.width),
        })
        .collect()
}

fn initial_arrays(module: &Module) -> Vec<Vec<Bits>> {
    module
        .arrays
        .iter()
        .map(|a| {
            let mut contents = vec![Bits::zero(a.width); a.depth];
            for (i, v) in a.init.iter().enumerate() {
                contents[i] = v.clone();
            }
            contents
        })
        .collect()
}

impl TreeEngine {
    pub(crate) fn new(module: Arc<Module>) -> Result<Self, SimError> {
        let comb_order = module
            .comb_schedule()
            .map_err(|sid| SimError::CombinationalLoop(module.signal(sid).name.clone()))?;
        let values = initial_values(&module);
        let arrays = initial_arrays(&module);
        let mut reg_next: Vec<(SignalId, Expr)> = module
            .reg_next
            .iter()
            .map(|(id, e)| (*id, e.clone()))
            .collect();
        reg_next.sort_by_key(|(id, _)| *id);
        let n = values.len();
        let regs = reg_next.len();
        Ok(TreeEngine {
            module,
            prev_values: values.clone(),
            values,
            arrays,
            comb_order,
            reg_next,
            toggles: vec![0; n],
            next_scratch: Vec::with_capacity(regs),
            array_scratch: Vec::new(),
            dirty: true,
        })
    }
}

impl ValueSource for TreeEngine {
    fn signal(&self, id: SignalId) -> Bits {
        self.values[id.0].clone()
    }

    fn array_read(&self, array: ArrayId, index: usize) -> Bits {
        let contents = &self.arrays[array.0];
        if index < contents.len() {
            contents[index].clone()
        } else {
            Bits::zero(self.module.arrays[array.0].width)
        }
    }
}

impl SimBackend for TreeEngine {
    fn kind(&self) -> Backend {
        Backend::Tree
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        let module = Arc::clone(&self.module);
        for i in 0..self.comb_order.len() {
            let id = self.comb_order[i];
            let v = eval_expr(&module.assigns[&id], self);
            self.values[id.0] = v;
        }
        self.dirty = false;
    }

    fn commit(&mut self, cycle: u64, log: &mut Vec<(u64, String)>) {
        self.settle();

        for p in &self.module.prints {
            if eval_expr(&p.enable, self).is_truthy() {
                let msg = match &p.value {
                    Some(v) => format!("{}: {:x}", p.label, eval_expr(v, self)),
                    None => p.label.clone(),
                };
                log.push((cycle, msg));
            }
        }

        for (i, (cur, prev)) in self.values.iter().zip(&self.prev_values).enumerate() {
            self.toggles[i] += u64::from(cur.hamming_distance(prev));
        }
        self.prev_values.clone_from(&self.values);

        // Compute all register next-values and array writes from the
        // settled state, then commit simultaneously (nonblocking
        // semantics). The scratch vectors live on the engine and are
        // reused across cycles (taken/cleared/restored) so the per-cycle
        // hot path never reallocates once warm.
        let mut next = std::mem::take(&mut self.next_scratch);
        next.clear();
        for (reg, e) in &self.reg_next {
            next.push((*reg, eval_expr(e, self)));
        }
        let mut array_commits = std::mem::take(&mut self.array_scratch);
        array_commits.clear();
        for w in &self.module.array_writes {
            if eval_expr(&w.enable, self).is_truthy() {
                let idx = eval_expr(&w.index, self).to_u64() as usize;
                let depth = self.arrays[w.array.0].len();
                if idx < depth {
                    array_commits.push((w.array, idx, eval_expr(&w.data, self)));
                }
            }
        }
        for (reg, v) in next.drain(..) {
            self.values[reg.0] = v;
        }
        for (arr, idx, v) in array_commits.drain(..) {
            self.arrays[arr.0][idx] = v;
        }
        self.next_scratch = next;
        self.array_scratch = array_commits;
        self.dirty = true;
    }

    fn peek_id(&self, id: SignalId) -> Bits {
        self.values[id.0].clone()
    }

    fn poke_id(&mut self, id: SignalId, value: Bits) {
        // Re-poking an unchanged value must not dirty the engine: with
        // eager settling, every dirtying poke costs a full settle pass,
        // and testbenches re-drive constant handshake lines every cycle.
        if self.values[id.0] == value {
            return;
        }
        self.values[id.0] = value;
        self.dirty = true;
    }

    fn peek_array(&self, array: ArrayId, index: usize) -> Bits {
        self.arrays[array.0][index].clone()
    }

    fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits) {
        self.arrays[array.0][index] = value;
        self.dirty = true;
    }

    fn eval(&self, e: &Expr) -> Bits {
        eval_expr(e, self)
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = StateHasher::new();
        for (id, sig) in self.module.iter_signals() {
            if sig.kind == SignalKind::Reg {
                h.add(sig.width, self.values[id.0].as_words());
            }
        }
        for arr in &self.arrays {
            for elem in arr {
                h.add(elem.width(), elem.as_words());
            }
        }
        h.finish()
    }

    fn toggle_counts(&self) -> &[u64] {
        &self.toggles
    }

    fn reset(&mut self) {
        self.values = initial_values(&self.module);
        self.prev_values = self.values.clone();
        self.arrays = initial_arrays(&self.module);
        self.toggles = vec![0; self.values.len()];
        self.dirty = true;
    }
}

/// A running simulation of one flattened module.
///
/// The facade owns name resolution (pre-resolved through a hash index),
/// cycle counting, and the debug-print log, and drives one of the two
/// [`SimBackend`] engines. State is kept eagerly settled — every `poke`
/// and `step` re-settles — so all reads ([`Sim::peek`], [`Sim::peek_id`],
/// [`Sim::eval`], [`Sim::state_fingerprint`]) take `&self`.
///
/// # Examples
///
/// ```
/// use anvil_rtl::{Bits, Expr, Module};
/// use anvil_sim::Sim;
///
/// let mut m = Module::new("counter");
/// let en = m.input("en", 1);
/// let q = m.reg("q", 8);
/// let out = m.output("out", 8);
/// m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 8)));
/// m.assign(out, Expr::Signal(q));
///
/// let mut sim = Sim::new(&m)?;
/// sim.poke("en", Bits::bit(true))?;
/// for _ in 0..5 { sim.step()?; }
/// assert_eq!(sim.peek("out")?.to_u64(), 5);
/// # Ok::<(), anvil_sim::SimError>(())
/// ```
pub struct Sim {
    module: Arc<Module>,
    /// Pre-resolved name → id index (O(1) poke/peek).
    names: HashMap<String, SignalId>,
    backend: Box<dyn SimBackend>,
    cycle: u64,
    /// Messages produced by `dprint` actions, with their cycle numbers.
    pub log: Vec<(u64, String)>,
}

impl Sim {
    /// Prepares a simulation with the default backend ([`Backend::from_env`]:
    /// the compiled tape engine unless `ANVIL_SIM_BACKEND=tree`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotFlat`] if instances remain,
    /// [`SimError::CombinationalLoop`] if the combinational graph is
    /// cyclic, and [`SimError::DriverWidth`] / [`SimError::MalformedExpr`]
    /// if a driver fails the width check (both backends reject the same
    /// module set).
    pub fn new(module: &Module) -> Result<Self, SimError> {
        Sim::with_backend(module, Backend::from_env()?)
    }

    /// Prepares a simulation on an explicitly chosen backend.
    ///
    /// # Errors
    ///
    /// See [`Sim::new`].
    pub fn with_backend(module: &Module, backend: Backend) -> Result<Self, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::NotFlat(module.name.clone()));
        }
        check_driver_widths(module)?;
        let module = Arc::new(module.clone());
        let names = module.name_index();
        let mut backend: Box<dyn SimBackend> = match backend {
            Backend::Tree => Box::new(TreeEngine::new(Arc::clone(&module))?),
            Backend::Compiled => {
                let tape = Tape::compile(Arc::clone(&module))?;
                Box::new(TapeEngine::new(Arc::new(tape)))
            }
        };
        backend.settle();
        Ok(Sim {
            module,
            names,
            backend,
            cycle: 0,
            log: Vec::new(),
        })
    }

    /// Which engine is running this simulation.
    pub fn backend_kind(&self) -> Backend {
        self.backend.kind()
    }

    /// Current cycle number (number of clock edges so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    fn resolve(&self, name: &str) -> Result<SignalId, SimError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))
    }

    /// Sets an input port for the current cycle (and re-settles).
    ///
    /// # Errors
    ///
    /// Fails on unknown names, non-input signals, or width mismatches.
    pub fn poke(&mut self, name: &str, value: Bits) -> Result<(), SimError> {
        let id = self.resolve(name)?;
        let sig = self.module.signal(id);
        if sig.kind != SignalKind::Input {
            return Err(SimError::NotAnInput(name.to_string()));
        }
        if sig.width != value.width() {
            return Err(SimError::WidthMismatch {
                signal: name.to_string(),
                expected: sig.width,
                found: value.width(),
            });
        }
        self.backend.poke_id(id, value);
        self.backend.settle();
        Ok(())
    }

    /// Evaluates all combinational logic with the current inputs and
    /// register state. A no-op unless state changed since the last settle
    /// (the facade settles eagerly after every poke and step, so this
    /// exists for API compatibility and explicit-phase testbenches).
    pub fn settle(&mut self) {
        self.backend.settle();
    }

    /// Reads a signal's settled value.
    ///
    /// # Errors
    ///
    /// Fails on unknown signal names.
    pub fn peek(&self, name: &str) -> Result<Bits, SimError> {
        Ok(self.backend.peek_id(self.resolve(name)?))
    }

    /// Reads a signal by id (no name lookup).
    pub fn peek_id(&self, id: SignalId) -> Bits {
        self.backend.peek_id(id)
    }

    /// Reads one element of a memory (test visibility).
    pub fn peek_array(&self, array: ArrayId, index: usize) -> Bits {
        self.backend.peek_array(array, index)
    }

    /// Writes one element of a memory directly (test setup). The value is
    /// resized to the declared element width.
    pub fn poke_array(&mut self, array: ArrayId, index: usize, value: Bits) {
        let width = self.module.arrays[array.0].width;
        let value = if value.width() == width {
            value
        } else {
            value.resize(width)
        };
        self.backend.poke_array(array, index, value);
        self.backend.settle();
    }

    /// Advances one clock edge: fires debug prints, counts toggles,
    /// commits register next-values and array writes, then re-settles.
    ///
    /// # Errors
    ///
    /// Currently infallible for a prepared simulation; the `Result` keeps
    /// stepping fallible for future backends.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.backend.settle();
        self.backend.commit(self.cycle, &mut self.log);
        self.cycle += 1;
        self.backend.settle();
        Ok(())
    }

    /// Runs `n` clock cycles with the current inputs.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Restores the power-on state (register/memory inits), clears the
    /// print log and toggle counters, and rewinds the cycle counter. Much
    /// cheaper than re-preparing a simulation — the compiled backend
    /// reuses its lowered tape.
    pub fn reset(&mut self) {
        self.backend.reset();
        self.cycle = 0;
        self.log.clear();
        self.backend.settle();
    }

    /// A hash of the architectural state (registers and memories), used by
    /// the bounded model checker to prune revisited states. Identical
    /// across backends for identical states.
    pub fn state_fingerprint(&self) -> u64 {
        self.backend.state_fingerprint()
    }

    /// Total observed bit toggles per signal, for the power model.
    pub fn toggle_counts(&self) -> &[u64] {
        self.backend.toggle_counts()
    }

    /// Sum of toggles across all signals divided by cycles: a crude
    /// whole-design switching-activity figure.
    pub fn switching_activity(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.backend.toggle_counts().iter().sum::<u64>() as f64 / self.cycle as f64
    }

    /// Evaluates an expression against the current settled state.
    pub fn eval(&self, e: &Expr) -> Bits {
        self.backend.eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Module {
        let mut m = Module::new("counter");
        let en = m.input("en", 1);
        let q = m.reg("q", 8);
        let out = m.output("out", 8);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 8)));
        m.assign(out, Expr::Signal(q));
        m
    }

    fn both(m: &Module) -> Vec<Sim> {
        vec![
            Sim::with_backend(m, Backend::Tree).unwrap(),
            Sim::with_backend(m, Backend::Compiled).unwrap(),
        ]
    }

    #[test]
    fn counter_counts_when_enabled() {
        for mut s in both(&counter()) {
            s.poke("en", Bits::bit(true)).unwrap();
            s.run(3).unwrap();
            s.poke("en", Bits::bit(false)).unwrap();
            s.run(2).unwrap();
            assert_eq!(s.peek("out").unwrap().to_u64(), 3, "{}", s.backend_kind());
        }
    }

    #[test]
    fn comb_chain_settles_in_order() {
        let mut m = Module::new("chain");
        let a = m.input("a", 4);
        let w1 = m.wire("w1", 4);
        let w2 = m.wire("w2", 4);
        let o = m.output("o", 4);
        // Deliberately declare in use-before-def order.
        m.assign(o, Expr::Signal(w2).add(Expr::lit(1, 4)));
        m.assign(w2, Expr::Signal(w1).add(Expr::lit(1, 4)));
        m.assign(w1, Expr::Signal(a).add(Expr::lit(1, 4)));
        for mut s in both(&m) {
            s.poke("a", Bits::from_u64(2, 4)).unwrap();
            assert_eq!(s.peek("o").unwrap().to_u64(), 5);
        }
    }

    #[test]
    fn comb_loop_detected() {
        let mut m = Module::new("loopy");
        let w1 = m.wire("w1", 1);
        let w2 = m.wire("w2", 1);
        let o = m.output("o", 1);
        m.assign(w1, Expr::Signal(w2).not());
        m.assign(w2, Expr::Signal(w1).not());
        m.assign(o, Expr::Signal(w1));
        for b in [Backend::Tree, Backend::Compiled] {
            assert!(matches!(
                Sim::with_backend(&m, b),
                Err(SimError::CombinationalLoop(_))
            ));
        }
    }

    #[test]
    fn registers_commit_simultaneously() {
        // Swap two registers every cycle: requires nonblocking semantics.
        let mut m = Module::new("swap");
        let a = m.reg_init("a", Bits::from_u64(1, 8));
        let b = m.reg_init("b", Bits::from_u64(2, 8));
        let oa = m.output("oa", 8);
        let ob = m.output("ob", 8);
        m.set_next(a, Expr::Signal(b));
        m.set_next(b, Expr::Signal(a));
        m.assign(oa, Expr::Signal(a));
        m.assign(ob, Expr::Signal(b));
        for mut s in both(&m) {
            s.step().unwrap();
            assert_eq!(s.peek("oa").unwrap().to_u64(), 2);
            assert_eq!(s.peek("ob").unwrap().to_u64(), 1);
            s.step().unwrap();
            assert_eq!(s.peek("oa").unwrap().to_u64(), 1);
        }
    }

    #[test]
    fn array_write_and_read() {
        let mut m = Module::new("mem");
        let we = m.input("we", 1);
        let waddr = m.input("waddr", 2);
        let wdata = m.input("wdata", 8);
        let raddr = m.input("raddr", 2);
        let q = m.output("q", 8);
        let arr = m.array("mem", 8, 4);
        m.array_write(
            arr,
            Expr::Signal(we),
            Expr::Signal(waddr),
            Expr::Signal(wdata),
        );
        m.assign(
            q,
            Expr::ArrayRead {
                array: arr,
                index: Box::new(Expr::Signal(raddr)),
            },
        );
        for mut s in both(&m) {
            s.poke("we", Bits::bit(true)).unwrap();
            s.poke("waddr", Bits::from_u64(2, 2)).unwrap();
            s.poke("wdata", Bits::from_u64(0xAB, 8)).unwrap();
            s.step().unwrap();
            s.poke("we", Bits::bit(false)).unwrap();
            s.poke("raddr", Bits::from_u64(2, 2)).unwrap();
            assert_eq!(s.peek("q").unwrap().to_u64(), 0xAB);
        }
    }

    #[test]
    fn dprint_logs() {
        let mut m = Module::new("p");
        let en = m.input("en", 1);
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(en));
        m.dprint(Expr::Signal(en), "fired", Some(Expr::lit(0x5, 4)));
        for mut s in both(&m) {
            s.step().unwrap();
            s.poke("en", Bits::bit(true)).unwrap();
            s.step().unwrap();
            assert_eq!(s.log, vec![(1, "fired: 5".to_string())]);
        }
    }

    #[test]
    fn toggle_counting() {
        let mut m = Module::new("t");
        let a = m.input("a", 4);
        let o = m.output("o", 4);
        m.assign(o, Expr::Signal(a));
        for mut s in both(&m) {
            s.poke("a", Bits::from_u64(0b1111, 4)).unwrap();
            s.step().unwrap(); // 0000 -> 1111: 4 toggles on a, 4 on o
            s.poke("a", Bits::from_u64(0b1110, 4)).unwrap();
            s.step().unwrap(); // 1 toggle on each
            assert_eq!(s.toggle_counts().iter().sum::<u64>(), 10);
        }
    }

    #[test]
    fn unflattened_design_rejected() {
        let mut m = Module::new("hier");
        m.instance("x", "child", vec![]);
        assert!(matches!(Sim::new(&m), Err(SimError::NotFlat(_))));
    }

    #[test]
    fn fingerprints_agree_across_backends() {
        let m = counter();
        let mut a = Sim::with_backend(&m, Backend::Tree).unwrap();
        let mut b = Sim::with_backend(&m, Backend::Compiled).unwrap();
        for sim in [&mut a, &mut b] {
            sim.poke("en", Bits::bit(true)).unwrap();
        }
        for _ in 0..5 {
            assert_eq!(a.state_fingerprint(), b.state_fingerprint());
            a.step().unwrap();
            b.step().unwrap();
        }
    }

    #[test]
    fn reset_restores_power_on_state() {
        for mut s in both(&counter()) {
            s.poke("en", Bits::bit(true)).unwrap();
            s.run(4).unwrap();
            assert_eq!(s.peek("out").unwrap().to_u64(), 4);
            s.reset();
            assert_eq!(s.cycle(), 0);
            assert_eq!(s.peek("out").unwrap().to_u64(), 0);
            // Input pokes are state too: re-poke after reset.
            s.poke("en", Bits::bit(true)).unwrap();
            s.run(2).unwrap();
            assert_eq!(s.peek("out").unwrap().to_u64(), 2);
        }
    }
}
