//! Bus-functional models for Anvil channel handshakes.
//!
//! Anvil lowers each message of a channel to up to three ports —
//! `data`, `valid`, `ack` (paper §6.2). A transfer completes in the first
//! cycle where both `valid` and `ack` are high. These BFMs play the role of
//! the *other* process on a channel so a compiled Anvil process can be
//! simulated and its latency measured in isolation, including with
//! randomized partner latencies (used to property-test the paper's safety
//! theorem: no matter when partners respond, observed values obey the
//! contracts).

use std::collections::VecDeque;

use anvil_rtl::Bits;

use crate::engine::{Sim, SimError};

/// Names of the (up to three) ports a message lowers to.
///
/// `None` means the port was omitted because the sync mode is static or
/// dependent (§6.2 "Message Lowering"); the BFM then treats the handshake
/// line as constantly asserted.
#[derive(Clone, Debug, Default)]
pub struct MsgPorts {
    /// Payload port name, if any.
    pub data: Option<String>,
    /// Sender-side handshake port name, if any.
    pub valid: Option<String>,
    /// Receiver-side handshake port name, if any.
    pub ack: Option<String>,
}

impl MsgPorts {
    /// Conventional port names `{ep}_{msg}_{data,valid,ack}`, keeping only
    /// the ones that exist in the module.
    pub fn conventional(sim: &Sim, ep: &str, msg: &str) -> MsgPorts {
        let pick = |suffix: &str| {
            let name = format!("{ep}_{msg}_{suffix}");
            sim.module().find(&name).map(|_| name)
        };
        MsgPorts {
            data: pick("data"),
            valid: pick("valid"),
            ack: pick("ack"),
        }
    }
}

/// An agent advanced by the [`Testbench`] once per cycle.
///
/// Each cycle runs `drive` for every agent (pokes, based on state decided
/// in earlier cycles), then settles the design, then `observe` for every
/// agent (peeks; completion detection), then clocks the design.
pub trait Agent: std::any::Any {
    /// Phase 1: drive inputs for this cycle.
    fn drive(&mut self, sim: &mut Sim) -> Result<(), SimError>;
    /// Phase 2: observe settled outputs for this cycle (read-only on the
    /// design: the simulation state is eagerly settled).
    fn observe(&mut self, sim: &Sim) -> Result<(), SimError>;
    /// Upcast for concrete-type retrieval from a [`Testbench`].
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Sends messages *into* the design: the design is the receiver, so
/// `data`/`valid` are design inputs and `ack` is a design output.
///
/// Transactions are queued with a pre-delay (idle cycles before asserting
/// `valid`), which lets tests model upstream modules of any latency.
#[derive(Debug)]
pub struct SenderBfm {
    ports: MsgPorts,
    queue: VecDeque<(Bits, u64)>,
    idle_remaining: u64,
    active: Option<Bits>,
    /// Cycles at which each transfer completed.
    pub completions: Vec<u64>,
}

impl SenderBfm {
    /// Creates a sender over the given ports.
    pub fn new(ports: MsgPorts) -> Self {
        SenderBfm {
            ports,
            queue: VecDeque::new(),
            idle_remaining: 0,
            active: None,
            completions: Vec::new(),
        }
    }

    /// Queues a value to send after `pre_delay` idle cycles.
    pub fn push(&mut self, value: Bits, pre_delay: u64) {
        self.queue.push_back((value, pre_delay));
    }

    /// True when every queued transfer has completed.
    pub fn done(&self) -> bool {
        self.queue.is_empty() && self.active.is_none()
    }
}

impl Agent for SenderBfm {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn drive(&mut self, sim: &mut Sim) -> Result<(), SimError> {
        if self.active.is_none() && self.idle_remaining == 0 {
            if let Some((value, delay)) = self.queue.pop_front() {
                if delay == 0 {
                    self.active = Some(value);
                } else {
                    self.idle_remaining = delay;
                    self.queue.push_front((value, 0));
                }
            }
        }
        if self.active.is_none() && self.idle_remaining > 0 {
            self.idle_remaining -= 1;
            if self.idle_remaining == 0 {
                if let Some((value, _)) = self.queue.pop_front() {
                    self.active = Some(value);
                }
            }
        }
        match &self.active {
            Some(v) => {
                if let Some(p) = &self.ports.data {
                    sim.poke(p, v.clone())?;
                }
                if let Some(p) = &self.ports.valid {
                    sim.poke(p, Bits::bit(true))?;
                }
            }
            None => {
                if let Some(p) = &self.ports.valid {
                    sim.poke(p, Bits::bit(false))?;
                }
            }
        }
        Ok(())
    }

    fn observe(&mut self, sim: &Sim) -> Result<(), SimError> {
        if self.active.is_some() {
            let acked = match &self.ports.ack {
                Some(p) => sim.peek(p)?.is_truthy(),
                None => true,
            };
            if acked {
                self.completions.push(sim.cycle());
                self.active = None;
            }
        }
        Ok(())
    }
}

/// How quickly a [`ReceiverBfm`] acknowledges incoming transfers.
#[derive(Debug)]
pub enum AckPolicy {
    /// `ack` held high permanently: zero-latency receiver.
    AlwaysReady,
    /// After observing `valid`, wait the next delay (≥ 1 cycles) from the
    /// queue before asserting `ack`; repeats the last entry when exhausted.
    DelayQueue(VecDeque<u64>),
}

/// Receives messages *from* the design: `data`/`valid` are design outputs
/// and `ack` is a design input.
#[derive(Debug)]
pub struct ReceiverBfm {
    ports: MsgPorts,
    policy: AckPolicy,
    countdown: Option<u64>,
    ack_now: bool,
    /// `(cycle, value)` for every completed transfer.
    pub received: Vec<(u64, Bits)>,
}

impl ReceiverBfm {
    /// Creates a receiver with the given acknowledgement policy.
    pub fn new(ports: MsgPorts, policy: AckPolicy) -> Self {
        let ack_now = matches!(policy, AckPolicy::AlwaysReady);
        ReceiverBfm {
            ports,
            policy,
            countdown: None,
            ack_now,
            received: Vec::new(),
        }
    }

    /// The values received so far, without cycle stamps.
    pub fn values(&self) -> Vec<Bits> {
        self.received.iter().map(|(_, v)| v.clone()).collect()
    }
}

impl Agent for ReceiverBfm {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn drive(&mut self, sim: &mut Sim) -> Result<(), SimError> {
        if let Some(p) = &self.ports.ack {
            sim.poke(p, Bits::bit(self.ack_now))?;
        }
        Ok(())
    }

    fn observe(&mut self, sim: &Sim) -> Result<(), SimError> {
        let valid = match &self.ports.valid {
            Some(p) => sim.peek(p)?.is_truthy(),
            None => true,
        };
        let acked = match &self.ports.ack {
            Some(_) => self.ack_now,
            None => true,
        };
        if valid && acked {
            let value = match &self.ports.data {
                Some(p) => sim.peek(p)?,
                None => Bits::bit(true),
            };
            self.received.push((sim.cycle(), value));
            // Transfer done; re-arm.
            match &mut self.policy {
                AckPolicy::AlwaysReady => {}
                AckPolicy::DelayQueue(_) => {
                    self.ack_now = false;
                    self.countdown = None;
                }
            }
            return Ok(());
        }
        if valid && !acked {
            match &mut self.policy {
                AckPolicy::AlwaysReady => self.ack_now = true,
                AckPolicy::DelayQueue(q) => {
                    if self.countdown.is_none() {
                        let d = if q.len() > 1 {
                            q.pop_front().unwrap_or(1)
                        } else {
                            q.front().copied().unwrap_or(1)
                        };
                        self.countdown = Some(d.max(1));
                    }
                    if let Some(c) = &mut self.countdown {
                        *c -= 1;
                        if *c == 0 {
                            self.ack_now = true;
                            self.countdown = None;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs a simulation together with a set of [`Agent`]s.
pub struct Testbench {
    /// The simulated design.
    pub sim: Sim,
    agents: Vec<Box<dyn Agent>>,
}

impl Testbench {
    /// Wraps a simulation with no agents yet.
    pub fn new(sim: Sim) -> Self {
        Testbench {
            sim,
            agents: Vec::new(),
        }
    }

    /// Adds an agent; returns its index for later retrieval.
    pub fn add(&mut self, agent: Box<dyn Agent>) -> usize {
        self.agents.push(agent);
        self.agents.len() - 1
    }

    /// Borrows an agent back, downcast to its concrete type.
    pub fn agent<T: 'static>(&self, idx: usize) -> Option<&T> {
        self.agents.get(idx)?.as_any().downcast_ref::<T>()
    }

    /// Advances one cycle: drive all agents, settle, observe all agents,
    /// clock the design.
    pub fn cycle(&mut self) -> Result<(), SimError> {
        for a in &mut self.agents {
            a.drive(&mut self.sim)?;
        }
        self.sim.settle();
        for a in &mut self.agents {
            a.observe(&self.sim)?;
        }
        self.sim.step()
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.cycle()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_rtl::{Expr, Module};

    /// A design that receives a message (in_*), adds one, and sends it back
    /// out (out_*) one cycle later, always ready.
    fn echo_plus_one() -> Sim {
        let mut m = Module::new("echo");
        let in_data = m.input("in_m_data", 8);
        let in_valid = m.input("in_m_valid", 1);
        let in_ack = m.output("in_m_ack", 1);
        let out_data = m.output("out_m_data", 8);
        let out_valid = m.output("out_m_valid", 1);
        let out_ack = m.input("out_m_ack", 1);

        let busy = m.reg("busy", 1);
        let held = m.reg("held", 8);
        // Accept a new input whenever not busy.
        let accept = m.wire_from(
            "accept",
            Expr::Signal(in_valid).and(Expr::Signal(busy).not()),
        );
        m.assign(in_ack, Expr::Signal(busy).not());
        m.update_when(
            held,
            Expr::Signal(accept),
            Expr::Signal(in_data).add(Expr::lit(1, 8)),
        );
        // busy := accept ? 1 : (out handshake done ? 0 : busy)
        let out_done = m.wire_from("out_done", Expr::Signal(busy).and(Expr::Signal(out_ack)));
        let next_busy = Expr::mux(
            Expr::Signal(accept),
            Expr::bit(true),
            Expr::mux(Expr::Signal(out_done), Expr::bit(false), Expr::Signal(busy)),
        );
        m.set_next(busy, next_busy);
        m.assign(out_valid, Expr::Signal(busy));
        m.assign(out_data, Expr::Signal(held));
        Sim::new(&m).unwrap()
    }

    #[test]
    fn sender_receiver_roundtrip() {
        let sim = echo_plus_one();
        let in_ports = MsgPorts::conventional(&sim, "in", "m");
        let out_ports = MsgPorts::conventional(&sim, "out", "m");
        assert!(in_ports.valid.is_some());

        let mut tb = Testbench::new(sim);
        let mut sender = SenderBfm::new(in_ports);
        for (i, delay) in [(10u64, 0u64), (20, 2), (30, 0)] {
            sender.push(Bits::from_u64(i, 8), delay);
        }
        tb.add(Box::new(sender));
        tb.add(Box::new(ReceiverBfm::new(
            out_ports,
            AckPolicy::AlwaysReady,
        )));
        tb.run(30).unwrap();

        // Can't easily retrieve boxed agents generically; re-run with direct
        // agent handling instead.
        let sim = echo_plus_one();
        let in_ports = MsgPorts::conventional(&sim, "in", "m");
        let out_ports = MsgPorts::conventional(&sim, "out", "m");
        let mut sim = sim;
        let mut sender = SenderBfm::new(in_ports);
        let mut recv = ReceiverBfm::new(out_ports, AckPolicy::AlwaysReady);
        for (i, delay) in [(10u64, 0u64), (20, 2), (30, 0)] {
            sender.push(Bits::from_u64(i, 8), delay);
        }
        for _ in 0..30 {
            sender.drive(&mut sim).unwrap();
            recv.drive(&mut sim).unwrap();
            sim.settle();
            sender.observe(&sim).unwrap();
            recv.observe(&sim).unwrap();
            sim.step().unwrap();
        }
        assert!(sender.done());
        let vals: Vec<u64> = recv.values().iter().map(|b| b.to_u64()).collect();
        assert_eq!(vals, vec![11, 21, 31]);
    }

    #[test]
    fn slow_receiver_backpressures() {
        let sim = echo_plus_one();
        let in_ports = MsgPorts::conventional(&sim, "in", "m");
        let out_ports = MsgPorts::conventional(&sim, "out", "m");
        let mut sim = sim;
        let mut sender = SenderBfm::new(in_ports);
        let mut recv = ReceiverBfm::new(out_ports, AckPolicy::DelayQueue(VecDeque::from([3u64])));
        sender.push(Bits::from_u64(1, 8), 0);
        sender.push(Bits::from_u64(2, 8), 0);
        for _ in 0..40 {
            sender.drive(&mut sim).unwrap();
            recv.drive(&mut sim).unwrap();
            sim.settle();
            sender.observe(&sim).unwrap();
            recv.observe(&sim).unwrap();
            sim.step().unwrap();
        }
        let vals: Vec<u64> = recv.values().iter().map(|b| b.to_u64()).collect();
        assert_eq!(vals, vec![2, 3]);
        // With a 3-cycle ack delay, consecutive completions are spaced out.
        assert!(recv.received[1].0 - recv.received[0].0 >= 3);
    }
}
