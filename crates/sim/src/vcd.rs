//! Minimal VCD (Value Change Dump) waveform writer.
//!
//! Captures selected signals each cycle and renders an IEEE-1364 VCD text
//! stream, so traces from the simulator can be opened in GTKWave and
//! compared against the paper's waveform figures (Figs. 1 and 4).

use anvil_rtl::{Bits, Module, SignalId};

use crate::batch::SimBatch;
use crate::engine::{Sim, SimError};

/// Records the values of a set of signals over time.
///
/// # Examples
///
/// ```
/// use anvil_rtl::{Expr, Module};
/// use anvil_sim::{Sim, Waveform};
///
/// let mut m = Module::new("t");
/// let q = m.reg("q", 2);
/// let o = m.output("o", 2);
/// m.set_next(q, Expr::Signal(q).add(Expr::lit(1, 2)));
/// m.assign(o, Expr::Signal(q));
///
/// let mut sim = Sim::new(&m)?;
/// let mut wave = Waveform::probe_all(&sim);
/// for _ in 0..4 {
///     wave.sample(&sim);
///     sim.step()?;
/// }
/// let vcd = wave.to_vcd("t");
/// assert!(vcd.starts_with("$date"));
/// # Ok::<(), anvil_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Waveform {
    signals: Vec<(SignalId, String, usize)>,
    /// samples[cycle][signal index]
    samples: Vec<Vec<Bits>>,
}

impl Waveform {
    /// Creates a waveform probing the named signals.
    ///
    /// # Errors
    ///
    /// Fails if any name is unknown in the simulated module.
    pub fn probe(sim: &Sim, names: &[&str]) -> Result<Self, SimError> {
        Waveform::probe_module(sim.module(), names)
    }

    /// Creates a waveform probing every signal in the design.
    pub fn probe_all(sim: &Sim) -> Self {
        Waveform::probe_all_module(sim.module())
    }

    /// Creates a waveform probing the named signals of a [`SimBatch`]'s
    /// design (sample one lane with [`Waveform::sample_lane`]).
    ///
    /// # Errors
    ///
    /// Fails if any name is unknown in the simulated module.
    pub fn probe_batch(batch: &SimBatch, names: &[&str]) -> Result<Self, SimError> {
        Waveform::probe_module(batch.module(), names)
    }

    /// Creates a waveform probing every signal of a [`SimBatch`]'s design.
    pub fn probe_all_batch(batch: &SimBatch) -> Self {
        Waveform::probe_all_module(batch.module())
    }

    fn probe_module(module: &Module, names: &[&str]) -> Result<Self, SimError> {
        let mut signals = Vec::new();
        for name in names {
            let id = module
                .find(name)
                .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
            let width = module.signal(id).width;
            signals.push((id, name.to_string(), width));
        }
        Ok(Waveform {
            signals,
            samples: Vec::new(),
        })
    }

    fn probe_all_module(module: &Module) -> Self {
        let signals = module
            .iter_signals()
            .map(|(id, s)| (id, s.name.clone(), s.width))
            .collect();
        Waveform {
            signals,
            samples: Vec::new(),
        }
    }

    /// Records the settled value of every probed signal for this cycle.
    pub fn sample(&mut self, sim: &Sim) {
        let row = self
            .signals
            .iter()
            .map(|(id, _, _)| sim.peek_id(*id))
            .collect();
        self.samples.push(row);
    }

    /// Records the settled value of every probed signal on **one lane**
    /// of a multi-lane batch — how counterexample traces from sweeps and
    /// symbolic proofs get into a waveform viewer without re-running the
    /// lane on a scalar simulator. (`&mut` because batch reads settle
    /// lazily.)
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for the batch.
    pub fn sample_lane(&mut self, batch: &mut SimBatch, lane: usize) {
        let row = self
            .signals
            .iter()
            .map(|(id, _, _)| batch.peek_id(lane, *id))
            .collect();
        self.samples.push(row);
    }

    /// Number of sampled cycles.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples of one signal by name.
    pub fn series(&self, name: &str) -> Option<Vec<Bits>> {
        let idx = self.signals.iter().position(|(_, n, _)| n == name)?;
        Some(self.samples.iter().map(|row| row[idx].clone()).collect())
    }

    /// Renders the recording as VCD text. One timestep per cycle.
    pub fn to_vcd(&self, design_name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version anvil-sim $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {design_name} $end");
        for (i, (_, name, width)) in self.signals.iter().enumerate() {
            let _ = writeln!(out, "$var wire {width} {} {name} $end", vcd_code(i));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last: Vec<Option<&Bits>> = vec![None; self.signals.len()];
        for (t, row) in self.samples.iter().enumerate() {
            let _ = writeln!(out, "#{t}");
            for (i, v) in row.iter().enumerate() {
                if last[i] != Some(v) {
                    if v.width() == 1 {
                        let _ = writeln!(out, "{}{}", u8::from(v.get(0)), vcd_code(i));
                    } else {
                        let _ = writeln!(out, "b{v:b} {}", vcd_code(i));
                    }
                    last[i] = Some(v);
                }
            }
        }
        out
    }

    /// Renders an ASCII timing table (one row per signal) like the paper's
    /// waveform figures. Values are shown in hex; 1-bit signals as `_`/`#`.
    pub fn to_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name_w = self
            .signals
            .iter()
            .map(|(_, n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (i, (_, name, width)) in self.signals.iter().enumerate() {
            let _ = write!(out, "{name:>name_w$} |");
            for row in &self.samples {
                let v = &row[i];
                if *width == 1 {
                    let _ = write!(out, "{}", if v.get(0) { " # " } else { " _ " });
                } else {
                    let _ = write!(out, " {v:x} ");
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn vcd_code(i: usize) -> String {
    // Printable identifier characters ! through ~.
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_rtl::{Expr, Module};

    fn toggler() -> Sim {
        let mut m = Module::new("t");
        let q = m.reg("q", 1);
        let o = m.output("o", 1);
        m.set_next(q, Expr::Signal(q).not());
        m.assign(o, Expr::Signal(q));
        Sim::new(&m).unwrap()
    }

    #[test]
    fn records_series() {
        let mut sim = toggler();
        let mut w = Waveform::probe(&sim, &["o"]).unwrap();
        for _ in 0..4 {
            w.sample(&sim);
            sim.step().unwrap();
        }
        let series: Vec<u64> = w.series("o").unwrap().iter().map(|b| b.to_u64()).collect();
        assert_eq!(series, vec![0, 1, 0, 1]);
    }

    #[test]
    fn vcd_structure() {
        let mut sim = toggler();
        let mut w = Waveform::probe_all(&sim);
        for _ in 0..2 {
            w.sample(&sim);
            sim.step().unwrap();
        }
        let vcd = w.to_vcd("t");
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn unknown_probe_errors() {
        let sim = toggler();
        assert!(Waveform::probe(&sim, &["nope"]).is_err());
    }

    #[test]
    fn batch_lane_matches_scalar_vcd() {
        // Two lanes with divergent stimulus: the selected lane's VCD must
        // equal the VCD of a scalar sim driven identically.
        let mut m = Module::new("t");
        let en = m.input("en", 1);
        let q = m.reg("q", 2);
        let o = m.output("o", 2);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 2)));
        m.assign(o, Expr::Signal(q));

        let mut batch = SimBatch::new(&m, 2).unwrap();
        batch.poke(0, "en", Bits::bit(false)).unwrap();
        batch.poke(1, "en", Bits::bit(true)).unwrap();
        let mut wave_lane = Waveform::probe_batch(&batch, &["en", "o"]).unwrap();

        let mut scalar = Sim::new(&m).unwrap();
        scalar.poke("en", Bits::bit(true)).unwrap();
        let mut wave_scalar = Waveform::probe(&scalar, &["en", "o"]).unwrap();

        for _ in 0..5 {
            wave_lane.sample_lane(&mut batch, 1);
            wave_scalar.sample(&scalar);
            batch.step();
            scalar.step().unwrap();
        }
        assert_eq!(wave_lane.to_vcd("t"), wave_scalar.to_vcd("t"));
        // The other lane really is different.
        let mut wave0 = Waveform::probe_batch(&batch, &["o"]).unwrap();
        wave0.sample_lane(&mut batch, 0);
        assert_eq!(wave0.series("o").unwrap()[0].to_u64(), 0);
    }

    #[test]
    fn probe_all_batch_covers_every_signal() {
        let mut m = Module::new("t");
        let q = m.reg("q", 1);
        let o = m.output("o", 1);
        m.set_next(q, Expr::Signal(q).not());
        m.assign(o, Expr::Signal(q));
        let mut batch = SimBatch::new(&m, 3).unwrap();
        let mut w = Waveform::probe_all_batch(&batch);
        w.sample_lane(&mut batch, 2);
        assert_eq!(w.len(), 1);
        assert!(Waveform::probe_batch(&batch, &["nope"]).is_err());
    }

    #[test]
    fn ascii_renders() {
        let mut sim = toggler();
        let mut w = Waveform::probe(&sim, &["o"]).unwrap();
        for _ in 0..3 {
            w.sample(&sim);
            sim.step().unwrap();
        }
        let a = w.to_ascii();
        assert!(a.contains("o |"));
    }
}
