//! Multi-lane batch simulation: one compiled tape, many stimulus lanes.
//!
//! [`SimBatch`] drives the multi-lane tape executor
//! (`crate::tape::LaneEngine`): the design is lowered to its instruction
//! tape **once**, and the word-packed state arena is widened into a
//! structure-of-arrays holding a const-generic number of independent
//! lanes per engine — monomorphized at widths 4, 8, 16, and 32, picked at
//! [`TapeProgram`] build time ([`TapeOptions::stride`], the
//! `ANVIL_SIM_LANES` environment override, or the [`LANE_STRIDE`]
//! default), with full-width groups stacked for larger batches and a
//! smallest-covering-width tail group for the remainder. Each settle
//! decodes every op once
//! and runs its inner loop across all lanes over contiguous memory, so the
//! per-op dispatch cost is amortized and the lane loops auto-vectorize —
//! aggregate stimulus throughput (cycles·lanes/sec) scales with SIMD width
//! where a scalar [`Sim`](crate::Sim) per stimulus pays full dispatch per
//! lane.
//!
//! Lane-divergent behaviour is fully supported: every lane has its own
//! inputs ([`SimBatch::poke`]), outputs ([`SimBatch::peek`]), debug-print
//! log ([`SimBatch::log`]), toggle counters, and state fingerprint, and
//! every observable is bit-identical to running the same stimulus on a
//! scalar `Sim` (differentially property-tested over the paper's
//! ten-design evaluation suite in `tests/batch_differential.rs`).
//!
//! Unlike [`Sim`](crate::Sim) — which settles eagerly after every poke so
//! reads can take `&self` — `SimBatch` settles *lazily*: pokes only mark
//! lanes dirty and the (laned, more expensive) settle runs once per
//! step/read. Reads therefore take `&mut self`.
//!
//! For multi-core sweeps, [`TapeProgram`] shares one lowered tape across
//! threads and [`sweep_chunks`] is the `std::thread::scope` chunked
//! driver: it carves a logical lane range into per-worker [`SimBatch`]es
//! and runs a caller-supplied closure on each chunk. `anvil-verify`'s
//! `bmc_sweep` and the fuzzing benches are built on it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use anvil_rtl::{ArrayId, Bits, Expr, Module, SignalId, SignalKind};

use crate::engine::{check_driver_widths, SimError};
use crate::tape::{
    check_lane_width, lane_width_from_env, new_lane_group, tail_width, LaneGroup, Tape, TapeOptions,
};

/// Default number of lanes one laned engine executes in lockstep (the
/// SIMD-style stride of the multi-lane executor). The engine is
/// monomorphized for widths 4, 8, 16, and 32; the stride is chosen at
/// [`TapeProgram`] build time — [`TapeOptions::stride`], then the
/// `ANVIL_SIM_LANES` environment variable, then this default — and
/// [`SimBatch`] accepts any lane count, stacking full-stride groups plus
/// one tail group of the smallest width that covers the remainder.
pub const LANE_STRIDE: usize = 16;

/// A module lowered once to its instruction tape, shareable across
/// threads.
///
/// Lowering is the expensive part of preparing a compiled simulation;
/// `TapeProgram` performs it once and hands out as many [`SimBatch`]es as
/// needed (each with its own state, e.g. one per sweep worker). The
/// program is cheap to share: all heavy pieces sit behind `Arc`s, and the
/// type is `Send + Sync`.
///
/// # Examples
///
/// ```
/// use anvil_rtl::{Bits, Expr, Module};
/// use anvil_sim::TapeProgram;
///
/// let mut m = Module::new("counter");
/// let en = m.input("en", 1);
/// let q = m.reg("q", 8);
/// let out = m.output("out", 8);
/// m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 8)));
/// m.assign(out, Expr::Signal(q));
///
/// let program = TapeProgram::compile(&m)?;
/// let mut batch = program.batch(4);
/// for lane in 0..4 {
///     batch.poke(lane, "en", Bits::bit(lane % 2 == 0))?;
/// }
/// batch.run(5);
/// assert_eq!(batch.peek(0, "out")?.to_u64(), 5);
/// assert_eq!(batch.peek(1, "out")?.to_u64(), 0);
/// # Ok::<(), anvil_sim::SimError>(())
/// ```
#[derive(Clone)]
pub struct TapeProgram {
    module: Arc<Module>,
    names: Arc<HashMap<String, SignalId>>,
    /// Compact per-signal width table for the hot poke paths (avoids
    /// touching the `Signal` structs and their name strings per poke).
    widths: Arc<Vec<u32>>,
    tape: Arc<Tape>,
    stride: usize,
}

impl TapeProgram {
    /// Lowers a flattened module into a shareable tape program with the
    /// default optimization options (fusion and dirty-region skipping on,
    /// stride from `ANVIL_SIM_LANES` or [`LANE_STRIDE`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Sim::new`](crate::Sim::new):
    /// [`SimError::NotFlat`], [`SimError::CombinationalLoop`],
    /// [`SimError::DriverWidth`], or [`SimError::MalformedExpr`] — plus
    /// [`SimError::UnknownLaneWidth`] when `ANVIL_SIM_LANES` holds
    /// anything but 4, 8, 16, or 32.
    pub fn compile(module: &Module) -> Result<TapeProgram, SimError> {
        TapeProgram::compile_with(module, TapeOptions::default())
    }

    /// [`TapeProgram::compile`] with explicit [`TapeOptions`] — the
    /// differential test matrix drives every (stride × fusion ×
    /// dirty-region) combination through this entry point.
    ///
    /// # Errors
    ///
    /// As [`TapeProgram::compile`]; an explicit [`TapeOptions::stride`]
    /// outside {4, 8, 16, 32} is [`SimError::UnknownLaneWidth`].
    pub fn compile_with(module: &Module, opts: TapeOptions) -> Result<TapeProgram, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::NotFlat(module.name.clone()));
        }
        let stride = match opts.stride {
            Some(w) => check_lane_width(w)?,
            None => lane_width_from_env()?.unwrap_or(LANE_STRIDE),
        };
        check_driver_widths(module)?;
        let _sp = anvil_trace::span("sim", "tape.lower")
            .detail_with(|| format!("{} stride {stride}", module.name));
        let module = Arc::new(module.clone());
        let names = Arc::new(module.name_index());
        let widths = Arc::new(module.signals.iter().map(|s| s.width as u32).collect());
        let tape = Arc::new(Tape::compile_with(Arc::clone(&module), opts)?);
        Ok(TapeProgram {
            module,
            names,
            widths,
            tape,
            stride,
        })
    }

    /// The lowered module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The lane stride full groups of this program's batches use.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Histogram of op mnemonics in the optimized settle program, sorted
    /// by mnemonic — the data `bench_sim --op-mix` aggregates so future
    /// fusion candidates are profile-driven.
    pub fn op_mix(&self) -> Vec<(&'static str, usize)> {
        self.tape.op_mix()
    }

    /// Number of settle regions the tape was partitioned into.
    pub fn region_count(&self) -> usize {
        self.tape.region_count()
    }

    /// Creates a batch simulation with `lanes` independent stimulus lanes
    /// over this program's (already lowered) tape: `lanes / stride` full
    /// groups plus, for any remainder, one tail group of the smallest
    /// monomorphized width that covers it (no wasted full-stride arena).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn batch(&self, lanes: usize) -> SimBatch {
        assert!(lanes > 0, "a batch needs at least one lane");
        let full = lanes / self.stride;
        let rem = lanes % self.stride;
        let mut groups: Vec<Box<dyn LaneGroup>> = Vec::with_capacity(full + 1);
        for _ in 0..full {
            groups.push(new_lane_group(Arc::clone(&self.tape), self.stride));
        }
        if rem > 0 {
            groups.push(new_lane_group(Arc::clone(&self.tape), tail_width(rem)));
        }
        SimBatch {
            module: Arc::clone(&self.module),
            names: Arc::clone(&self.names),
            widths: Arc::clone(&self.widths),
            groups,
            stride: self.stride,
            lanes,
            cycle: 0,
            logs: vec![Vec::new(); lanes],
        }
    }
}

/// A batch of independent simulations of one module, executed in lockstep
/// by the multi-lane tape engine.
///
/// Execution model: lanes share one lowered tape; each settle decodes
/// every op once and covers all lanes. Unlike [`Sim`](crate::Sim), the
/// batch settles *lazily* — pokes mark lanes dirty and reads settle on
/// demand, which is why reads take `&mut self`.
pub struct SimBatch {
    module: Arc<Module>,
    names: Arc<HashMap<String, SignalId>>,
    /// Per-signal widths, indexed by `SignalId` (poke-path width checks).
    widths: Arc<Vec<u32>>,
    /// Lane engines: full groups of `stride` lanes, then (for a
    /// non-multiple lane count) one tail group of the smallest
    /// monomorphized width covering the remainder. Lane `i` is sublane
    /// `i % stride` of group `i / stride` (valid for the tail too, since
    /// its base is a stride multiple). Trailing sublanes of the tail
    /// group beyond `lanes` execute but are never observed.
    groups: Vec<Box<dyn LaneGroup>>,
    /// Full-group lane stride of this batch (the program's stride).
    stride: usize,
    lanes: usize,
    cycle: u64,
    /// Per-lane debug-print logs, `(cycle, message)`.
    logs: Vec<Vec<(u64, String)>>,
}

impl SimBatch {
    /// Lowers `module` and prepares a batch of `lanes` simulations.
    ///
    /// When several batches (or sweep workers) need the same design,
    /// lower once via [`TapeProgram::compile`] instead.
    ///
    /// # Errors
    ///
    /// See [`TapeProgram::compile`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(module: &Module, lanes: usize) -> Result<SimBatch, SimError> {
        Ok(TapeProgram::compile(module)?.batch(lanes))
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lane stride of the full groups (the compiled program's stride).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Lane width of each underlying engine group, in group order: full
    /// groups at the program stride, then — for a non-multiple lane
    /// count — one tail group at the smallest monomorphized width that
    /// covers the remainder.
    pub fn group_strides(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.stride()).collect()
    }

    /// Total laned-arena words across all groups — the batch's state
    /// footprint. With a non-multiple lane count the tail group uses the
    /// smallest monomorphized width that covers it, so this shrinks
    /// compared to padding the tail to a full stride.
    pub fn arena_words(&self) -> usize {
        self.groups.iter().map(|g| g.arena_words()).sum()
    }

    /// Resolves an input port's id for the hot poke path
    /// ([`SimBatch::poke_id`]): resolve once, poke every cycle without
    /// the name lookup.
    ///
    /// # Errors
    ///
    /// Fails on unknown names and non-input signals.
    pub fn input_id(&self, name: &str) -> Result<SignalId, SimError> {
        let id = self.resolve(name)?;
        if self.module.signal(id).kind != SignalKind::Input {
            return Err(SimError::NotAnInput(name.to_string()));
        }
        Ok(id)
    }

    /// Sets an input port on one lane by pre-resolved id (see
    /// [`SimBatch::input_id`]). Width-checked like [`SimBatch::poke`].
    ///
    /// # Errors
    ///
    /// Fails on width mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn poke_id(&mut self, lane: usize, id: SignalId, value: &Bits) -> Result<(), SimError> {
        if self.widths[id.0] as usize != value.width() {
            let sig = self.module.signal(id);
            return Err(SimError::WidthMismatch {
                signal: sig.name.clone(),
                expected: sig.width,
                found: value.width(),
            });
        }
        let sub = lane % self.stride;
        self.group(lane).poke_lane(id, value, sub);
        Ok(())
    }

    /// Sets an input port on **every** lane from one `u64` per lane, in a
    /// single call — the sweep-driver hot path. `vals[l]` is truncated to
    /// the port width and zero-extended, exactly like
    /// `poke_id(l, id, &Bits::from_u64(vals[l], width))` per lane, but
    /// the slot and dirty-region lookups are amortized over each lane
    /// group's whole row.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.lanes()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use anvil_rtl::{Expr, Module};
    /// use anvil_sim::SimBatch;
    ///
    /// let mut m = Module::new("inc");
    /// let x = m.input("x", 8);
    /// let out = m.output("out", 8);
    /// m.assign(out, Expr::Signal(x).add(Expr::lit(1, 8)));
    ///
    /// let mut batch = SimBatch::new(&m, 3)?;
    /// let id = batch.input_id("x")?;
    /// batch.poke_u64s(id, &[10, 20, 0xFFF]);
    /// assert_eq!(batch.peek(2, "out")?.to_u64(), 0); // 0xFF + 1 wraps
    /// # Ok::<(), anvil_sim::SimError>(())
    /// ```
    pub fn poke_u64s(&mut self, id: SignalId, vals: &[u64]) {
        assert_eq!(vals.len(), self.lanes, "one value per lane");
        let stride = self.stride;
        for (g, chunk) in vals.chunks(stride).enumerate() {
            self.groups[g].poke_rows_u64(id, chunk);
        }
    }

    /// Current cycle number (clock edges so far; all lanes step together).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Debug prints fired on one lane so far, as `(cycle, message)`.
    pub fn log(&self, lane: usize) -> &[(u64, String)] {
        &self.logs[lane]
    }

    fn resolve(&self, name: &str) -> Result<SignalId, SimError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))
    }

    #[inline]
    fn group(&mut self, lane: usize) -> &mut dyn LaneGroup {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        &mut *self.groups[lane / self.stride]
    }

    /// Sets an input port on one lane for the current cycle. Lazy: the
    /// lane group is only re-settled on the next read or step.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, non-input signals, or width mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn poke(&mut self, lane: usize, name: &str, value: Bits) -> Result<(), SimError> {
        let id = self.resolve(name)?;
        let sig = self.module.signal(id);
        if sig.kind != SignalKind::Input {
            return Err(SimError::NotAnInput(name.to_string()));
        }
        if sig.width != value.width() {
            return Err(SimError::WidthMismatch {
                signal: name.to_string(),
                expected: sig.width,
                found: value.width(),
            });
        }
        let sub = lane % self.stride;
        self.group(lane).poke_lane(id, &value, sub);
        Ok(())
    }

    /// Sets an input port to the same value on every lane.
    ///
    /// # Errors
    ///
    /// See [`SimBatch::poke`].
    pub fn poke_all(&mut self, name: &str, value: Bits) -> Result<(), SimError> {
        for lane in 0..self.lanes {
            self.poke(lane, name, value.clone())?;
        }
        Ok(())
    }

    /// Evaluates all combinational logic on every lane against the
    /// current inputs and register state (no-op for settled groups).
    pub fn settle(&mut self) {
        for g in &mut self.groups {
            g.settle();
        }
    }

    /// Reads a signal's settled value on one lane.
    ///
    /// # Errors
    ///
    /// Fails on unknown signal names.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn peek(&mut self, lane: usize, name: &str) -> Result<Bits, SimError> {
        let id = self.resolve(name)?;
        Ok(self.peek_id(lane, id))
    }

    /// Reads a signal by id on one lane (no name lookup).
    pub fn peek_id(&mut self, lane: usize, id: SignalId) -> Bits {
        let sub = lane % self.stride;
        let g = self.group(lane);
        g.settle();
        g.peek_lane(id, sub)
    }

    /// Reads one element of a memory on one lane.
    pub fn peek_array(&mut self, lane: usize, array: ArrayId, index: usize) -> Bits {
        let sub = lane % self.stride;
        let g = self.group(lane);
        g.settle();
        g.peek_array_lane(array, index, sub)
    }

    /// Writes one element of a memory on one lane (test setup). The value
    /// is resized to the declared element width.
    pub fn poke_array(&mut self, lane: usize, array: ArrayId, index: usize, value: Bits) {
        let width = self.module.arrays[array.0].width;
        let value = if value.width() == width {
            value
        } else {
            value.resize(width)
        };
        let sub = lane % self.stride;
        self.group(lane).poke_array_lane(array, index, &value, sub);
    }

    /// Evaluates an arbitrary expression against one lane's settled state.
    pub fn eval(&mut self, lane: usize, e: &Expr) -> Bits {
        let sub = lane % self.stride;
        let g = self.group(lane);
        g.settle();
        g.eval_lane(e, sub)
    }

    /// Architectural-state hash of one lane — identical to
    /// [`Sim::state_fingerprint`](crate::Sim::state_fingerprint) for
    /// identical per-lane state.
    pub fn state_fingerprint(&mut self, lane: usize) -> u64 {
        let sub = lane % self.stride;
        self.group(lane).state_fingerprint_lane(sub)
    }

    /// State fingerprints of every lane, in lane order.
    pub fn fingerprints(&mut self) -> Vec<u64> {
        (0..self.lanes).map(|l| self.state_fingerprint(l)).collect()
    }

    /// Total observed bit toggles per signal on one lane, in signal-id
    /// order (matches [`Sim::toggle_counts`](crate::Sim::toggle_counts)).
    pub fn toggle_counts(&self, lane: usize) -> Vec<u64> {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        self.groups[lane / self.stride].toggle_counts_lane(lane % self.stride)
    }

    /// Advances every lane one clock edge: settles, fires per-lane debug
    /// prints, counts per-lane toggles, commits registers and memories.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        let lanes = self.lanes;
        let stride = self.stride;
        let logs = &mut self.logs;
        for (g, eng) in self.groups.iter_mut().enumerate() {
            let base = g * stride;
            eng.settle();
            eng.commit(&mut |sub, msg| {
                if base + sub < lanes {
                    logs[base + sub].push((cycle, msg));
                }
            });
        }
        self.cycle += 1;
    }

    /// Runs `n` clock cycles with the current per-lane inputs.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs `n` clock cycles with the current per-lane inputs, spreading
    /// the lane groups over up to `workers` scoped threads (the tape is
    /// shared; each group's state is independent). Observable behaviour —
    /// values, logs, toggle counts, fingerprints — is identical to
    /// [`SimBatch::run`].
    pub fn run_threaded(&mut self, n: u64, workers: usize) {
        let n_groups = self.groups.len();
        let workers = workers.max(1).min(n_groups);
        if workers <= 1 {
            self.run(n);
            return;
        }
        let start = self.cycle;
        let lanes = self.lanes;
        let stride = self.stride;
        let logs = &mut self.logs;
        let chunk = n_groups.div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .groups
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, engines)| {
                    s.spawn(move || {
                        let mut local: Vec<(usize, u64, String)> = Vec::new();
                        for (gi, eng) in engines.iter_mut().enumerate() {
                            let base = (ci * chunk + gi) * stride;
                            for c in 0..n {
                                eng.settle();
                                eng.commit(&mut |sub, msg| {
                                    local.push((base + sub, start + c, msg));
                                });
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (lane, cyc, msg) in h.join().expect("batch worker panicked") {
                    if lane < lanes {
                        logs[lane].push((cyc, msg));
                    }
                }
            }
        });
        self.cycle += n;
    }

    /// Restores every lane to power-on state, clears the per-lane logs
    /// and toggle counters, and rewinds the cycle counter. The lowered
    /// tape is reused — this is the cheap path sweep drivers replay
    /// thousands of schedules through.
    pub fn reset(&mut self) {
        for g in &mut self.groups {
            g.reset();
        }
        for l in &mut self.logs {
            l.clear();
        }
        self.cycle = 0;
    }
}

/// The `std::thread::scope` chunked sweep driver: carves `total` logical
/// lanes into [`SimBatch`]es of at most `chunk` lanes and runs `f` on
/// every chunk across up to `workers` threads, sharing one lowered tape.
///
/// `f` receives the chunk's first logical lane index and a fresh batch of
/// `min(chunk, total - first)` lanes; results are returned **in chunk
/// order** regardless of which worker ran which chunk, so callers that
/// need sequential semantics (e.g. `bmc_sweep`'s first-counterexample
/// guarantee) can fold over the results deterministically.
///
/// # Errors
///
/// The first `Err` from `f` (in chunk order) is propagated.
///
/// # Panics
///
/// Panics if `chunk` is zero, or if a worker thread panics.
pub fn sweep_chunks<R, F>(
    program: &TapeProgram,
    total: usize,
    chunk: usize,
    workers: usize,
    f: F,
) -> Result<Vec<R>, SimError>
where
    R: Send,
    F: Fn(usize, &mut SimBatch) -> Result<R, SimError> + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if total == 0 {
        return Ok(Vec::new());
    }
    let n_chunks = total.div_ceil(chunk);
    if workers.max(1).min(n_chunks) <= 1 {
        // Inline path: with one effective worker the per-chunk batch
        // allocation (and the thread scope) is pure overhead — reuse a
        // single batch, rewound between chunks. `reset` restores
        // power-on state, so `f` still sees a factory-fresh batch.
        let mut batch = program.batch(chunk.min(total));
        let mut out = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            let first = i * chunk;
            let lanes = chunk.min(total - first);
            if lanes != batch.lanes() {
                batch = program.batch(lanes);
            } else if i > 0 {
                batch.reset();
            }
            out.push(f(first, &mut batch)?);
        }
        return Ok(out);
    }
    run_indexed(n_chunks, workers, |i| {
        let first = i * chunk;
        let lanes = chunk.min(total - first);
        let mut batch = program.batch(lanes);
        f(first, &mut batch)
    })
    .into_iter()
    .collect()
}

/// Runs `f(i)` for every `i in 0..n` across up to `workers` scoped
/// threads (an atomic work-queue — no work partitioning assumptions),
/// returning the results **in index order** regardless of which worker
/// ran which index. The generic scaffold under [`sweep_chunks`] and
/// `anvil-verify`'s schedule sweep; with `workers <= 1` (or `n <= 1`) it
/// degenerates to a plain sequential map with no thread setup.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_indexed<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("indexed worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed by a worker"))
        .collect()
}

// The program and batch cross thread boundaries (sweep workers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TapeProgram>();
    assert_send_sync::<SimBatch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Sim};
    use anvil_rtl::Expr;

    fn counter() -> Module {
        let mut m = Module::new("counter");
        let en = m.input("en", 1);
        let q = m.reg("q", 8);
        let out = m.output("out", 8);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 8)));
        m.assign(out, Expr::Signal(q));
        m
    }

    #[test]
    fn lanes_diverge_independently() {
        // 13 lanes: crosses the group boundary (8-lane stride).
        let mut b = SimBatch::new(&counter(), 13).unwrap();
        for lane in 0..13 {
            b.poke(lane, "en", Bits::bit(lane % 3 == 0)).unwrap();
        }
        b.run(6);
        for lane in 0..13 {
            let expect = if lane % 3 == 0 { 6 } else { 0 };
            assert_eq!(b.peek(lane, "out").unwrap().to_u64(), expect, "lane {lane}");
        }
    }

    #[test]
    fn matches_scalar_sim_per_lane() {
        let m = counter();
        let mut b = SimBatch::new(&m, 5).unwrap();
        let mut scalars: Vec<Sim> = (0..5)
            .map(|_| Sim::with_backend(&m, Backend::Compiled).unwrap())
            .collect();
        let mut seed = 0x1234_5678_9abc_def0u64;
        for _ in 0..50 {
            for (lane, s) in scalars.iter_mut().enumerate() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let v = Bits::from_u64(seed, 1);
                s.poke("en", v.clone()).unwrap();
                b.poke(lane, "en", v).unwrap();
            }
            for (lane, s) in scalars.iter_mut().enumerate() {
                assert_eq!(s.peek("out").unwrap(), b.peek(lane, "out").unwrap());
                assert_eq!(s.state_fingerprint(), b.state_fingerprint(lane));
                s.step().unwrap();
            }
            b.step();
        }
        for (lane, s) in scalars.iter().enumerate() {
            assert_eq!(s.toggle_counts(), &b.toggle_counts(lane)[..]);
        }
    }

    #[test]
    fn per_lane_prints() {
        let mut m = Module::new("p");
        let en = m.input("en", 1);
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(en));
        m.dprint(Expr::Signal(en), "fired", Some(Expr::lit(0x5, 4)));
        let mut b = SimBatch::new(&m, 3).unwrap();
        b.poke(1, "en", Bits::bit(true)).unwrap();
        b.step();
        assert!(b.log(0).is_empty());
        assert_eq!(b.log(1), &[(0, "fired: 5".to_string())]);
        assert!(b.log(2).is_empty());
    }

    #[test]
    fn reset_restores_every_lane() {
        let mut b = SimBatch::new(&counter(), 4).unwrap();
        b.poke_all("en", Bits::bit(true)).unwrap();
        b.run(3);
        assert_eq!(b.peek(2, "out").unwrap().to_u64(), 3);
        b.reset();
        assert_eq!(b.cycle(), 0);
        for lane in 0..4 {
            assert_eq!(b.peek(lane, "out").unwrap().to_u64(), 0);
        }
    }

    #[test]
    fn threaded_run_matches_sequential() {
        let m = counter();
        let mut a = SimBatch::new(&m, 20).unwrap();
        let mut b = SimBatch::new(&m, 20).unwrap();
        for lane in 0..20 {
            let v = Bits::bit(lane % 2 == 0);
            a.poke(lane, "en", v.clone()).unwrap();
            b.poke(lane, "en", v).unwrap();
        }
        a.run(16);
        b.run_threaded(16, 4);
        assert_eq!(a.fingerprints(), b.fingerprints());
        for lane in 0..20 {
            assert_eq!(
                a.peek(lane, "out").unwrap(),
                b.peek(lane, "out").unwrap(),
                "lane {lane}"
            );
            assert_eq!(a.toggle_counts(lane), b.toggle_counts(lane));
            assert_eq!(a.log(lane), b.log(lane));
        }
    }

    #[test]
    fn sweep_chunks_returns_in_chunk_order() {
        let program = TapeProgram::compile(&counter()).unwrap();
        let out = sweep_chunks(&program, 30, 8, 4, |first, batch| {
            batch.poke_all("en", Bits::bit(true))?;
            batch.run(u64::try_from(first).unwrap() % 5 + 1);
            Ok((first, batch.lanes(), batch.peek(0, "out")?.to_u64()))
        })
        .unwrap();
        assert_eq!(out, vec![(0, 8, 1), (8, 8, 4), (16, 8, 2), (24, 6, 5)],);
    }

    #[test]
    fn sweep_chunks_single_worker_inline_path_matches_threaded() {
        // With one effective worker, chunks run inline on a single
        // reused batch (rewound between chunks) instead of a fresh
        // allocation each — `f` must still observe power-on state,
        // empty logs, and cycle 0 on every chunk.
        let program = TapeProgram::compile(&counter()).unwrap();
        let pass = |workers| {
            sweep_chunks(&program, 30, 8, workers, |first, batch| {
                assert_eq!(batch.cycle(), 0);
                assert_eq!(batch.peek(0, "out")?.to_u64(), 0);
                batch.poke_all("en", Bits::bit(true))?;
                batch.run(u64::try_from(first).unwrap() % 5 + 1);
                Ok((first, batch.lanes(), batch.peek(0, "out")?.to_u64()))
            })
            .unwrap()
        };
        assert_eq!(pass(1), pass(4));
    }

    #[test]
    fn poke_errors_match_sim() {
        let mut b = SimBatch::new(&counter(), 2).unwrap();
        assert!(matches!(
            b.poke(0, "nope", Bits::bit(true)),
            Err(SimError::UnknownSignal(_))
        ));
        assert!(matches!(
            b.poke(0, "out", Bits::from_u64(0, 8)),
            Err(SimError::NotAnInput(_))
        ));
        assert!(matches!(
            b.poke(0, "en", Bits::from_u64(0, 2)),
            Err(SimError::WidthMismatch { .. })
        ));
    }
}
