//! DAG-aware AIG rewriting: constant sweeping, two-level algebraic
//! rewriting, and cone-of-influence reduction.
//!
//! [`rewrite`] rebuilds a sequential [`Aig`] bottom-up through a fresh
//! structural-hash table, restricted to the cone of influence of a root
//! set. Three things shrink the graph in one linear pass:
//!
//! * **Constant sweeping** — every rebuilt AND goes back through
//!   [`Aig::and`]'s constant folding, so constants discovered upstream
//!   (e.g. by an earlier fraig merge against the constant node)
//!   propagate through their entire fanout cone.
//! * **Two-level rewriting** — the Brummayer–Biere local rules
//!   (contradiction, subsumption, idempotence, substitution, and
//!   resolution over a node and its AND fanins) fire before each node is
//!   hashed, collapsing patterns structural hashing alone cannot see.
//! * **Dead logic removal** — only nodes reachable from the roots (and,
//!   transitively, from the next-state functions of *live* latches)
//!   survive. Latches outside the property's cone of influence vanish
//!   along with their entire next-state logic, which is where the bulk
//!   of the reduction on property-directed proofs comes from.
//!
//! Input bits are always preserved 1:1 (same numbering) so trace
//! reconstruction maps through unchanged; surviving latches keep their
//! init values and record their origin index.

use crate::aig::{Aig, Lit, Node};
use crate::fraig::{fraig, FraigStats};

/// Node/level counters for one [`rewrite`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct RewriteStats {
    /// Nodes before (including the constant node).
    pub nodes_before: usize,
    /// Nodes after.
    pub nodes_after: usize,
    /// AND nodes before.
    pub ands_before: usize,
    /// AND nodes after.
    pub ands_after: usize,
    /// Latches before.
    pub latches_before: usize,
    /// Latches after (dead ones are swept with their next-state cones).
    pub latches_after: usize,
    /// Logic levels before.
    pub level_before: u32,
    /// Logic levels after.
    pub level_after: u32,
    /// Two-level rewrite rule applications.
    pub rule_hits: usize,
}

/// A rewritten graph plus the old-literal → new-literal map.
#[derive(Clone, Debug)]
pub struct Rewritten {
    /// The rebuilt graph.
    pub aig: Aig,
    /// Old node index → new literal (`None` for swept dead nodes).
    pub map: Vec<Option<Lit>>,
    /// New latch number → old latch number.
    pub latch_origin: Vec<u32>,
}

impl Rewritten {
    /// Maps an old literal into the new graph (`None` if its node was
    /// swept as dead).
    pub fn map_lit(&self, old: Lit) -> Option<Lit> {
        let base = self.map.get(old.node()).copied().flatten()?;
        Some(if old.is_negated() {
            base.negate()
        } else {
            base
        })
    }

    /// Composes two rewrite maps: `self` (old → mid) then `next`
    /// (mid → new), yielding old → new.
    pub fn compose(&self, next: &Rewritten) -> Rewritten {
        let map = self
            .map
            .iter()
            .map(|m| m.and_then(|l| next.map_lit(l)))
            .collect();
        let latch_origin = next
            .latch_origin
            .iter()
            .map(|&mid| self.latch_origin[mid as usize])
            .collect();
        Rewritten {
            aig: next.aig.clone(),
            map,
            latch_origin,
        }
    }
}

/// Rebuilds `aig` restricted to the cone of influence of `roots`,
/// applying constant sweeping and (when `rules` is set) two-level
/// rewriting. With `keep_all_latches` every latch is treated as a root
/// (the equivalence-checking mode); otherwise only latches transitively
/// feeding the roots survive.
pub fn rewrite(
    aig: &Aig,
    roots: &[Lit],
    keep_all_latches: bool,
    rules: bool,
) -> (Rewritten, RewriteStats) {
    let mut stats = RewriteStats {
        nodes_before: aig.len(),
        ands_before: aig.n_ands(),
        latches_before: aig.n_latches(),
        level_before: aig.max_level(),
        ..RewriteStats::default()
    };

    // ---- Liveness: roots, plus the next-state cones of live latches. ----
    let mut live = vec![false; aig.len()];
    let mut work: Vec<usize> = roots.iter().map(|l| l.node()).collect();
    if keep_all_latches {
        for l in aig.latches() {
            work.push(l.node as usize);
        }
    }
    while let Some(n) = work.pop() {
        if live[n] {
            continue;
        }
        live[n] = true;
        match aig.node(n) {
            Node::Const | Node::Input(_) => {}
            Node::Latch(ln) => {
                if let Some(next) = aig.latch_info(ln).next {
                    work.push(next.node());
                }
            }
            Node::And(a, b) => {
                work.push(a.node());
                work.push(b.node());
            }
        }
    }

    // ---- Rebuild in topological order. ----
    let mut g = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    let mut latch_origin = Vec::new();
    // Old latch number → new (uncomplemented) latch literal, for wiring
    // next-state functions after the main pass.
    let mut new_latch: Vec<Option<Lit>> = vec![None; aig.n_latches()];
    for n in 0..aig.len() {
        let node = aig.node(n);
        // Inputs are always recreated — in allocation order, so input
        // numbering (and with it the trace format) is preserved even for
        // inputs outside the cone.
        if let Node::Input(_) = node {
            map[n] = Some(g.add_input());
            continue;
        }
        // The constant node always maps (latch next-state functions may
        // reference it even when no root does).
        if n == 0 {
            map[n] = Some(Lit::FALSE);
            continue;
        }
        if !live[n] {
            continue;
        }
        map[n] = Some(match node {
            Node::Const => Lit::FALSE,
            Node::Input(_) => unreachable!("inputs handled above"),
            Node::Latch(ln) => {
                let l = g.add_latch(aig.latch_info(ln).init);
                latch_origin.push(ln);
                new_latch[ln as usize] = Some(l);
                l
            }
            Node::And(a, b) => {
                let la = map_lit(&map, a);
                let lb = map_lit(&map, b);
                if rules {
                    and_rw(&mut g, la, lb, &mut stats.rule_hits)
                } else {
                    g.and(la, lb)
                }
            }
        });
    }
    for (ln, new) in new_latch.into_iter().enumerate() {
        let Some(new) = new else { continue };
        let next = aig
            .latch_info(ln as u32)
            .next
            .expect("live latch connected during blasting");
        g.set_next(new, map_lit(&map, next));
    }

    stats.nodes_after = g.len();
    stats.ands_after = g.n_ands();
    stats.latches_after = g.n_latches();
    stats.level_after = g.max_level();
    (
        Rewritten {
            aig: g,
            map,
            latch_origin,
        },
        stats,
    )
}

/// Combined counters for the full [`optimize`] pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizeStats {
    /// The initial rewrite pass (COI + constant sweep + two-level rules).
    pub rewrite: RewriteStats,
    /// The SAT-sweeping pass.
    pub fraig: FraigStats,
    /// The trailing orphan-sweep pass.
    pub sweep: RewriteStats,
    /// Nodes before the whole pipeline.
    pub nodes_before: usize,
    /// Nodes after the whole pipeline.
    pub nodes_after: usize,
    /// Logic levels before.
    pub level_before: u32,
    /// Logic levels after.
    pub level_after: u32,
}

/// The full pre-unrolling optimization pipeline: DAG-aware rewriting
/// (cone-of-influence restriction, constant sweeping, two-level rules),
/// then SAT sweeping ([`fraig`]), then a plain rewrite to sweep the
/// orphans fraiging leaves behind and re-fire rules enabled by merges.
/// The returned [`Rewritten`] maps original literals all the way into
/// the final graph.
pub fn optimize(aig: &Aig, roots: &[Lit], keep_all_latches: bool) -> (Rewritten, OptimizeStats) {
    let mut stats = OptimizeStats {
        nodes_before: aig.len(),
        level_before: aig.max_level(),
        ..OptimizeStats::default()
    };
    let sp = anvil_trace::span("aig", "rewrite");
    let (r1, s1) = rewrite(aig, roots, keep_all_latches, true);
    drop(sp);
    stats.rewrite = s1;
    let sp = anvil_trace::span("aig", "fraig");
    let (r2, s2) = fraig(&r1.aig, 0x416e_7669_6c21_0001);
    drop(sp);
    stats.fraig = s2;
    let roots2: Vec<Lit> = roots
        .iter()
        .filter_map(|&l| r1.map_lit(l).and_then(|m| r2.map_lit(m)))
        .collect();
    let sp = anvil_trace::span("aig", "sweep");
    let (r3, s3) = rewrite(&r2.aig, &roots2, keep_all_latches, true);
    drop(sp);
    stats.sweep = s3;
    let combined = r1.compose(&r2).compose(&r3);
    stats.nodes_after = combined.aig.len();
    stats.level_after = combined.aig.max_level();
    (combined, stats)
}

fn map_lit(map: &[Option<Lit>], l: Lit) -> Lit {
    let base = map[l.node()].expect("fanin precedes fanout in topological order");
    if l.is_negated() {
        base.negate()
    } else {
        base
    }
}

/// The AND fanins of a literal's node, if it is an AND, with the
/// literal's complement bit.
fn decompose(g: &Aig, l: Lit) -> Option<(Lit, Lit, bool)> {
    if l.is_const() {
        return None;
    }
    match g.node(l.node()) {
        Node::And(x, y) => Some((x, y, l.is_negated())),
        _ => None,
    }
}

/// [`Aig::and`] with the Brummayer–Biere two-level rules tried first.
/// Every rule application either returns an existing literal or issues a
/// single non-recursive [`Aig::and`], so the rewriter terminates
/// trivially.
fn and_rw(g: &mut Aig, a: Lit, b: Lit, hits: &mut usize) -> Lit {
    let da = decompose(g, a);
    let db = decompose(g, b);
    // One AND fanin against the opposite operand, both orders.
    for (outer, inner, d) in [(a, b, da), (b, a, db)] {
        let Some((x1, x2, neg)) = d else { continue };
        if !neg {
            // (x1 ∧ x2) ∧ x1 = x1 ∧ x2  (idempotence)
            if inner == x1 || inner == x2 {
                *hits += 1;
                return outer;
            }
            // (x1 ∧ x2) ∧ ¬x1 = 0  (contradiction)
            if inner == x1.negate() || inner == x2.negate() {
                *hits += 1;
                return Lit::FALSE;
            }
        } else {
            // ¬(x1 ∧ x2) ∧ ¬x1 = ¬x1  (subsumption)
            if inner == x1.negate() || inner == x2.negate() {
                *hits += 1;
                return inner;
            }
            // ¬(x1 ∧ x2) ∧ x1 = x1 ∧ ¬x2  (substitution)
            if inner == x1 {
                *hits += 1;
                return g.and(x1, x2.negate());
            }
            if inner == x2 {
                *hits += 1;
                return g.and(x2, x1.negate());
            }
        }
    }
    if let (Some((a1, a2, false)), Some((b1, b2, false))) = (da, db) {
        // (a1 ∧ a2) ∧ (b1 ∧ b2) with a contradicting pair = 0.
        for (x, y) in [(a1, b1), (a1, b2), (a2, b1), (a2, b2)] {
            if x == y.negate() {
                *hits += 1;
                return Lit::FALSE;
            }
        }
        // Shared fanin: (a1 ∧ a2) ∧ (a1 ∧ b2) = (a1 ∧ a2) ∧ b2.
        if b1 == a1 || b1 == a2 {
            *hits += 1;
            return g.and(a, b2);
        }
        if b2 == a1 || b2 == a2 {
            *hits += 1;
            return g.and(a, b1);
        }
    }
    if let (Some((a1, a2, true)), Some((b1, b2, true))) = (da, db) {
        // Resolution: ¬(x ∧ y) ∧ ¬(x ∧ ¬y) = ¬x.
        for (s, t, s2, t2) in [
            (a1, a2, b1, b2),
            (a1, a2, b2, b1),
            (a2, a1, b1, b2),
            (a2, a1, b2, b1),
        ] {
            if s == s2 && t == t2.negate() {
                *hits += 1;
                return s.negate();
            }
        }
    }
    g.and(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(g: &mut Aig, n: usize) -> Vec<Lit> {
        (0..n).map(|_| g.add_input()).collect()
    }

    #[test]
    fn two_level_rules_fire() {
        let mut g = Aig::new();
        let v = leaves(&mut g, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        let ab = g.and(a, b);
        let mut hits = 0;
        // Idempotence, contradiction, subsumption, substitution.
        assert_eq!(and_rw(&mut g, ab, a, &mut hits), ab);
        assert_eq!(and_rw(&mut g, ab, a.negate(), &mut hits), Lit::FALSE);
        assert_eq!(
            and_rw(&mut g, ab.negate(), a.negate(), &mut hits),
            a.negate()
        );
        let sub = and_rw(&mut g, ab.negate(), a, &mut hits);
        assert_eq!(sub, g.and(a, b.negate()));
        // Shared fanin between two positive ANDs.
        let ac = g.and(a, c);
        let shared = and_rw(&mut g, ab, ac, &mut hits);
        assert_eq!(shared, g.and(ab, c));
        // Resolution.
        let ab_n = g.and(a, b.negate());
        assert_eq!(
            and_rw(&mut g, ab.negate(), ab_n.negate(), &mut hits),
            a.negate()
        );
        assert!(hits >= 6);
    }

    #[test]
    fn rules_preserve_function() {
        // Exhaustive check over all 2-input-4-node structures the rules
        // can see: random two-level AIGs evaluated against their
        // rewritten forms on all input assignments (word-parallel: 8
        // assignments of 3 inputs fit one u64 easily).
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..500 {
            let mut g = Aig::new();
            let ins = leaves(&mut g, 3);
            // Exhaustive 3-input patterns.
            let words = [0xF0u64, 0xCC, 0xAA];
            let mut pool: Vec<Lit> = ins.clone();
            for _ in 0..4 {
                let pick = |r: u64, pool: &[Lit]| {
                    let l = pool[(r as usize / 2) % pool.len()];
                    if r.is_multiple_of(2) {
                        l
                    } else {
                        l.negate()
                    }
                };
                let a = pick(next(), &pool);
                let b = pick(next(), &pool);
                let l = g.and(a, b);
                pool.push(l);
            }
            let root = *pool.last().unwrap();
            let (rw, _) = rewrite(&g, &[root], true, true);
            let new_root = rw.map_lit(root).unwrap();
            let old_vals = g.simulate(&words, &[]);
            let new_vals = rw.aig.simulate(&words, &[]);
            assert_eq!(
                Aig::lit_value(&old_vals, root) & 0xFF,
                Aig::lit_value(&new_vals, new_root) & 0xFF,
            );
        }
    }

    #[test]
    fn dead_latches_are_swept_with_their_cones() {
        let mut g = Aig::new();
        let a = g.add_input();
        let live = g.add_latch(false);
        let dead = g.add_latch(true);
        // The dead latch drags a whole cone with it.
        let x = g.and(dead, a);
        let y = g.and(x, dead.negate());
        let live_next = g.and(live, a);
        g.set_next(live, live_next);
        g.set_next(dead, y);
        let root = g.and(live, a.negate());
        let (rw, stats) = rewrite(&g, &[root], false, true);
        assert_eq!(rw.aig.n_latches(), 1);
        assert_eq!(rw.latch_origin, vec![0]);
        assert_eq!(stats.latches_before, 2);
        assert_eq!(stats.latches_after, 1);
        // Inputs survive 1:1 even when partially dead.
        assert_eq!(rw.aig.n_inputs(), 1);
        assert!(rw.map_lit(root).is_some());
        // y's node is gone.
        assert!(rw.map_lit(y).is_none());
    }

    #[test]
    fn optimize_composes_maps_end_to_end() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        // Two structurally distinct XORs plus a dead cone; the pipeline
        // must merge the XORs and sweep the cone, and the composed map
        // must still track every live literal.
        let x1 = g.xor(a, b);
        let n1 = g.and(a, b);
        let n2 = g.and(a.negate(), b.negate());
        let x2 = g.or(n1, n2).negate();
        let c = g.add_input();
        let dead = g.and(c, a);
        let root = g.and(x1, x2.negate());
        let (opt, stats) = optimize(&g, &[root], false);
        // x1 ∧ ¬x2 with x1 ≡ x2 is constant false.
        assert_eq!(opt.map_lit(root).unwrap(), Lit::FALSE);
        assert!(opt.map_lit(dead).is_none());
        assert!(stats.nodes_after < stats.nodes_before);
        assert!(stats.fraig.merges >= 1 || stats.rewrite.rule_hits >= 1);
    }

    #[test]
    fn keep_all_latches_preserves_every_latch() {
        let mut g = Aig::new();
        let a = g.add_input();
        let l0 = g.add_latch(false);
        let l1 = g.add_latch(true);
        g.set_next(l0, a);
        g.set_next(l1, l0);
        let (rw, _) = rewrite(&g, &[], true, true);
        assert_eq!(rw.aig.n_latches(), 2);
        assert_eq!(rw.latch_origin, vec![0, 1]);
        assert!(rw.aig.latch_info(1).init);
    }
}
