//! Symbolic verification substrate: AIG bit-blasting, an embedded CDCL
//! SAT solver, and transition-relation unrolling.
//!
//! This crate turns the repo's flattened netlists into objects a SAT
//! solver can reason about *for all inputs at once*, the substrate under
//! `anvil_verify::prove`'s symbolic bounded model checking and
//! k-induction:
//!
//! * [`Aig`] / [`AigCircuit`] — And-Inverter Graphs with structural
//!   hashing and constant folding; [`AigCircuit::from_module`] bit-blasts
//!   a flattened [`anvil_rtl::Module`] through the generic
//!   [`anvil_rtl::blast_module`] lowering (registers and writable memory
//!   elements become latches, ROMs fold to constants).
//! * [`Solver`] — a self-contained MiniSat-style CDCL solver (two watched
//!   literals, VSIDS branching, first-UIP learning, Luby restarts,
//!   incremental solving under assumptions). No crates.io dependency, in
//!   the same spirit as `crates/shims`.
//! * [`Unroller`] / [`CnfEncoder`] — time-expansion of the latch
//!   transition relation with cross-frame constant propagation, and lazy
//!   cone-of-influence Tseitin encoding into the solver.
//!
//! The semantic contract: a blasted circuit agrees bit-for-bit with both
//! simulation backends on every cycle, so SAT counterexamples replay
//! concretely on [`anvil_sim`](https://docs.rs/anvil-sim)'s engines.

#![warn(missing_docs)]

mod aig;
mod cert;
mod cnf;
mod deadline;
mod fraig;
mod pdr;
mod rewrite;
mod share;
mod solver;

pub use aig::{Aig, AigCircuit, Lit, Node};
pub use cert::{CertKind, LatchLit, ProofCert};
pub use cnf::{CnfEncoder, Unroller};
pub use deadline::Deadline;
pub use fraig::{fraig, FraigStats};
pub use pdr::{Pdr, PdrOptions, PdrOutcome, PdrStats};
pub use rewrite::{optimize, rewrite, OptimizeStats, RewriteStats, Rewritten};
pub use share::{ClauseExchange, ClauseKind, ExchangeStats, SharedClause};
pub use solver::{SLit, SolveResult, Solver, SolverStats, Var};
