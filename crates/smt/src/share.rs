//! A bounded clause-exchange buffer for cooperating prover portfolios.
//!
//! Portfolio workers (symbolic BMC, k-induction, PDR) run over the *same*
//! prepared sequential [`Aig`](crate::Aig), so a clause one engine learns
//! can be phrased engine-neutrally as literals in `(relative frame,
//! sequential literal)` space and re-asserted by another. The exchange is
//! a mutex-guarded ring: publishers append, importers poll with a cursor,
//! and when the ring overflows its cap the oldest clauses fall off (an
//! importer that polled late simply misses them — sharing is an
//! optimization, never a soundness requirement).
//!
//! Soundness is carried by [`ClauseKind`], which records what a clause
//! means and therefore who may import it where:
//!
//! * [`ClauseKind::Reach`]`{ upto }` — the clause (frame-relative offsets
//!   all zero) holds in every state reachable from reset within `upto`
//!   steps. PDR frame clauses are published like this; a BMC-from-reset
//!   session may assert the clause at unrolling frames `0..=upto`.
//! * [`ClauseKind::Path`] — the clause is implied by the transition
//!   relation alone along *any* consecutive frames (offsets are relative
//!   to an arbitrary base frame). Induction-step learnt clauses widened
//!   with their assumption literals qualify; any engine may assert a
//!   `Path` clause at any frame offset it has unrolled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::aig::Lit;

/// What a shared clause asserts (and hence where it may be imported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClauseKind {
    /// Holds in all states reachable from reset in at most `upto` steps;
    /// literal frame offsets are all zero.
    Reach {
        /// Inclusive reachability bound, in steps from reset.
        upto: u32,
    },
    /// Implied by the transition relation over any window of consecutive
    /// frames; literal offsets are relative to the window start.
    Path,
}

/// One engine-neutral clause: a disjunction of `(frame offset, sequential
/// literal)` pairs plus the soundness tag.
#[derive(Clone, Debug)]
pub struct SharedClause {
    /// The disjuncts. Offsets are normalized so the smallest is zero.
    pub lits: Vec<(u32, Lit)>,
    /// What the clause means.
    pub kind: ClauseKind,
}

impl SharedClause {
    /// Largest frame offset among the literals (0 for single-frame
    /// clauses).
    pub fn span(&self) -> u32 {
        self.lits.iter().map(|&(f, _)| f).max().unwrap_or(0)
    }
}

/// Exchange counters (monotonic, lock-free reads).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExchangeStats {
    /// Clauses published.
    pub published: u64,
    /// Clauses handed to importers (each import of one clause counts).
    pub imported: u64,
    /// Clauses dropped off the ring before anyone could fetch them.
    pub dropped: u64,
}

struct Ring {
    clauses: Vec<SharedClause>,
    /// Global index of `clauses[0]` (indices only grow; cursors are
    /// global indices, so dropped prefixes just advance the start).
    start: u64,
}

/// The bounded multi-producer multi-consumer clause buffer.
pub struct ClauseExchange {
    ring: Mutex<Ring>,
    cap: usize,
    published: AtomicU64,
    imported: AtomicU64,
    dropped: AtomicU64,
}

impl ClauseExchange {
    /// An empty exchange holding at most `cap` clauses.
    pub fn new(cap: usize) -> ClauseExchange {
        ClauseExchange {
            ring: Mutex::new(Ring {
                clauses: Vec::new(),
                start: 0,
            }),
            cap: cap.max(1),
            published: AtomicU64::new(0),
            imported: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Publishes one clause, evicting the oldest if the ring is full.
    /// Empty clauses are ignored (nothing sound to share).
    pub fn publish(&self, clause: SharedClause) {
        if clause.lits.is_empty() {
            return;
        }
        let mut ring = self.ring.lock().expect("exchange lock");
        ring.clauses.push(clause);
        self.published.fetch_add(1, Ordering::Relaxed);
        if ring.clauses.len() > self.cap {
            let excess = ring.clauses.len() - self.cap;
            ring.clauses.drain(..excess);
            ring.start += excess as u64;
            self.dropped.fetch_add(excess as u64, Ordering::Relaxed);
        }
    }

    /// Clauses published since the caller's cursor (start from 0; pass
    /// the same variable back on the next poll). Clauses that fell off
    /// the ring before this poll are skipped silently.
    pub fn fetch(&self, cursor: &mut u64) -> Vec<SharedClause> {
        let ring = self.ring.lock().expect("exchange lock");
        let from = (*cursor).max(ring.start);
        let idx = (from - ring.start) as usize;
        let out: Vec<SharedClause> = ring.clauses[idx.min(ring.clauses.len())..].to_vec();
        *cursor = ring.start + ring.clauses.len() as u64;
        self.imported.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Counters so far.
    pub fn stats(&self) -> ExchangeStats {
        ExchangeStats {
            published: self.published.load(Ordering::Relaxed),
            imported: self.imported.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(frame: u32, node: usize) -> SharedClause {
        SharedClause {
            lits: vec![(frame, Lit::new(node, false))],
            kind: ClauseKind::Path,
        }
    }

    #[test]
    fn publish_then_fetch_with_cursor() {
        let x = ClauseExchange::new(8);
        x.publish(clause(0, 1));
        x.publish(clause(1, 2));
        let mut cur = 0;
        assert_eq!(x.fetch(&mut cur).len(), 2);
        assert_eq!(x.fetch(&mut cur).len(), 0);
        x.publish(clause(0, 3));
        let got = x.fetch(&mut cur);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lits[0].1.node(), 3);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let x = ClauseExchange::new(2);
        for n in 1..=5 {
            x.publish(clause(0, n));
        }
        let mut cur = 0;
        let got = x.fetch(&mut cur);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].lits[0].1.node(), 4);
        let s = x.stats();
        assert_eq!(s.published, 5);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.imported, 2);
    }

    #[test]
    fn empty_clauses_are_rejected() {
        let x = ClauseExchange::new(4);
        x.publish(SharedClause {
            lits: vec![],
            kind: ClauseKind::Path,
        });
        assert_eq!(x.stats().published, 0);
    }

    #[test]
    fn span_is_max_offset() {
        assert_eq!(clause(3, 1).span(), 3);
        assert_eq!(clause(0, 1).span(), 0);
    }
}
