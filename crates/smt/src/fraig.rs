//! SAT sweeping (fraiging): merge functionally equivalent AIG nodes that
//! structural hashing cannot see.
//!
//! Structural hashing only collapses *syntactically* identical ANDs; two
//! different multiplexer trees computing the same function stay distinct.
//! Fraiging closes the gap in two phases:
//!
//! 1. **Candidate discovery by simulation.** The graph is evaluated on a
//!    few hundred random stimulus vectors using [`Aig::simulate`]'s
//!    word-parallel lane trick (64 patterns per `u64` word, a handful of
//!    words per node). Nodes whose signatures match up to complementation
//!    land in the same candidate class — random vectors separate
//!    inequivalent nodes with overwhelming probability, so classes are
//!    small and mostly genuine.
//! 2. **Confirmation by incremental SAT.** Each candidate pair is checked
//!    for true equivalence with two conflict-budgeted queries against one
//!    incremental [`Solver`] over the partially rebuilt graph. Confirmed
//!    pairs merge (the later node's fanout is redirected to the earlier
//!    representative); refuted or budget-blown pairs leave the candidate
//!    as an extra representative of its class.
//!
//! The output graph may contain orphaned nodes whose fanout was
//! redirected; run a plain [`rewrite`](crate::rewrite::rewrite) pass
//! afterwards to sweep them (that is what [`optimize`](crate::rewrite::optimize)
//! does).

use std::collections::HashMap;

use crate::aig::{Aig, Lit, Node};
use crate::cnf::CnfEncoder;
use crate::rewrite::Rewritten;
use crate::solver::{SolveResult, Solver};

/// Stimulus words per input/latch (64 random patterns each).
const SIM_WORDS: usize = 4;
/// Representatives tried per candidate before giving up on the class.
const MAX_REPS: usize = 4;
/// Conflicts allowed per equivalence query.
const CONFLICT_BUDGET: u64 = 300;
/// Total SAT calls allowed per fraig pass.
const MAX_SAT_CALLS: u64 = 50_000;

/// Counters for one [`fraig`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct FraigStats {
    /// AND nodes considered as merge candidates (signature hit).
    pub candidates: usize,
    /// Equivalence queries issued (each is up to two solver calls).
    pub sat_calls: u64,
    /// Nodes merged into an equivalent representative.
    pub merges: usize,
    /// Candidates SAT disproved (they became new representatives).
    pub refuted: usize,
    /// Candidates abandoned on conflict budget or call cap.
    pub aborted: usize,
    /// Nodes before (including the constant).
    pub nodes_before: usize,
    /// Nodes after — including not-yet-swept orphans, so this can exceed
    /// the post-sweep count.
    pub nodes_after: usize,
}

/// One representative of a candidate class: the rebuilt literal in
/// canonical phase.
struct Rep {
    lit: Lit,
}

/// Rebuilds `aig` 1:1 (all inputs, all latches, every AND), merging
/// SAT-confirmed equivalent nodes. Input and latch numbering is
/// preserved; `latch_origin` is the identity. The random simulation is
/// seeded deterministically from `seed`.
pub fn fraig(aig: &Aig, seed: u64) -> (Rewritten, FraigStats) {
    let mut stats = FraigStats {
        nodes_before: aig.len(),
        ..FraigStats::default()
    };

    // ---- Phase 1: signatures from word-parallel random simulation. ----
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut sigs: Vec<[u64; SIM_WORDS]> = vec![[0; SIM_WORDS]; aig.len()];
    for w in 0..SIM_WORDS {
        let inputs: Vec<u64> = (0..aig.n_inputs()).map(|_| next()).collect();
        let latches: Vec<u64> = (0..aig.n_latches()).map(|_| next()).collect();
        let vals = aig.simulate(&inputs, &latches);
        for (sig, v) in sigs.iter_mut().zip(vals) {
            sig[w] = v;
        }
    }
    // Canonical phase: complement the signature if its first pattern bit
    // is set, so a node and its negation share one class key.
    let canon = |sig: &[u64; SIM_WORDS]| -> ([u64; SIM_WORDS], bool) {
        if sig[0] & 1 == 1 {
            let mut c = *sig;
            for w in &mut c {
                *w = !*w;
            }
            (c, true)
        } else {
            (*sig, false)
        }
    };

    // ---- Phase 2: rebuild with SAT-confirmed merging. ----
    let mut g = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    let mut latch_origin = Vec::new();
    let mut classes: HashMap<[u64; SIM_WORDS], Vec<Rep>> = HashMap::new();
    // The constant node is the eternal representative of the zero class.
    classes.insert([0; SIM_WORDS], vec![Rep { lit: Lit::FALSE }]);

    let mut solver = Solver::new();
    solver.set_conflict_budget(Some(CONFLICT_BUDGET));
    let mut enc = CnfEncoder::new();
    // Equivalence of two literals in the (partially built) new graph:
    // `Some(true)` proven equal, `Some(false)` refuted, `None` budget.
    let check_eq =
        |g: &Aig, solver: &mut Solver, enc: &mut CnfEncoder, a: Lit, b: Lit| -> Option<bool> {
            let sa = enc.encode(g, solver, a);
            let sb = enc.encode(g, solver, b);
            match solver.solve(&[sa, sb.negate()]) {
                SolveResult::Sat => return Some(false),
                SolveResult::Interrupted => return None,
                SolveResult::Unsat => {}
            }
            match solver.solve(&[sa.negate(), sb]) {
                SolveResult::Sat => Some(false),
                SolveResult::Interrupted => None,
                SolveResult::Unsat => Some(true),
            }
        };

    for n in 0..aig.len() {
        match aig.node(n) {
            Node::Const => {
                map[n] = Some(Lit::FALSE);
                continue;
            }
            Node::Input(_) => {
                let l = g.add_input();
                map[n] = Some(l);
                let (key, phase) = canon(&sigs[n]);
                classes.entry(key).or_default().push(Rep {
                    lit: if phase { l.negate() } else { l },
                });
                continue;
            }
            Node::Latch(ln) => {
                let l = g.add_latch(aig.latch_info(ln).init);
                latch_origin.push(ln);
                map[n] = Some(l);
                let (key, phase) = canon(&sigs[n]);
                classes.entry(key).or_default().push(Rep {
                    lit: if phase { l.negate() } else { l },
                });
                continue;
            }
            Node::And(a, b) => {
                let la = map_lit(&map, a);
                let lb = map_lit(&map, b);
                let before = g.len();
                let l = g.and(la, lb);
                if g.len() == before {
                    // Constant fold or structural hit: already merged
                    // with an existing (hence already classed) literal.
                    map[n] = Some(l);
                    continue;
                }
                let (key, phase) = canon(&sigs[n]);
                let lc = if phase { l.negate() } else { l };
                let class = classes.entry(key).or_default();
                if !class.is_empty() {
                    stats.candidates += 1;
                }
                let mut merged = None;
                let mut blown = false;
                for rep in class.iter().take(MAX_REPS) {
                    if stats.sat_calls >= MAX_SAT_CALLS {
                        blown = true;
                        break;
                    }
                    stats.sat_calls += 1;
                    match check_eq(&g, &mut solver, &mut enc, lc, rep.lit) {
                        Some(true) => {
                            merged = Some(rep.lit);
                            break;
                        }
                        Some(false) => stats.refuted += 1,
                        None => {
                            stats.aborted += 1;
                        }
                    }
                }
                match merged {
                    Some(rep) => {
                        stats.merges += 1;
                        // Undo the canonical phase to recover the node's
                        // own polarity.
                        map[n] = Some(if phase { rep.negate() } else { rep });
                    }
                    None => {
                        map[n] = Some(l);
                        if !blown {
                            class.push(Rep { lit: lc });
                        }
                    }
                }
            }
        }
    }
    // Wire next-state functions (all latches survive).
    for (new_ln, &old_ln) in latch_origin.iter().enumerate() {
        let next = aig
            .latch_info(old_ln)
            .next
            .expect("latch connected during blasting");
        let new_latch = g.latch_lit(new_ln as u32);
        g.set_next(new_latch, map_lit(&map, next));
    }

    stats.nodes_after = g.len();
    (
        Rewritten {
            aig: g,
            map,
            latch_origin,
        },
        stats,
    )
}

fn map_lit(map: &[Option<Lit>], l: Lit) -> Lit {
    let base = map[l.node()].expect("fanin precedes fanout in topological order");
    if l.is_negated() {
        base.negate()
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_structurally_distinct_equivalents() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        // XOR built two different ways: the sum-of-products form vs the
        // negated XNOR form. Structural hashing keeps them distinct
        // (different shapes); fraig must merge them.
        let x1 = g.xor(a, b);
        let n1 = g.and(a, b);
        let n2 = g.and(a.negate(), b.negate());
        let x2 = g.or(n1, n2).negate();
        assert_ne!(x1, x2);
        let (rw, stats) = fraig(&g, 0xfeed);
        let m1 = rw.map_lit(x1).unwrap();
        let m2 = rw.map_lit(x2).unwrap();
        assert_eq!(m1, m2);
        assert!(stats.merges >= 1);
        assert!(stats.sat_calls >= 1);
    }

    #[test]
    fn merges_hidden_constants() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        // (a ∧ b) ∨ (a ∧ ¬b) ∨ ¬a is a tautology no local rule sees in
        // this shape.
        let ab = g.and(a, b);
        let abn = g.and(a, b.negate());
        let o1 = g.or(ab, abn);
        let taut = g.or(o1, a.negate());
        let (rw, stats) = fraig(&g, 1);
        assert_eq!(rw.map_lit(taut).unwrap(), Lit::TRUE);
        assert!(stats.merges >= 1);
    }

    #[test]
    fn preserves_function_on_random_graphs() {
        let mut seed = 0x5eed_5eed_5eed_5eedu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mut g = Aig::new();
            let ins: Vec<Lit> = (0..4).map(|_| g.add_input()).collect();
            let mut pool = ins.clone();
            for _ in 0..12 {
                let pick = |r: u64, pool: &[Lit]| {
                    let l = pool[(r as usize / 2) % pool.len()];
                    if r.is_multiple_of(2) {
                        l
                    } else {
                        l.negate()
                    }
                };
                let a = pick(next(), &pool);
                let b = pick(next(), &pool);
                let l = match next() % 3 {
                    0 => g.and(a, b),
                    1 => g.or(a, b),
                    _ => g.xor(a, b),
                };
                pool.push(l);
            }
            let (rw, _) = fraig(&g, next());
            // Exhaustive over 4 inputs: 16 patterns in one word.
            let words = [0xFF00u64, 0xF0F0, 0xCCCC, 0xAAAA];
            let old = g.simulate(&words, &[]);
            let new = rw.aig.simulate(&words, &[]);
            for &l in &pool {
                let m = rw.map_lit(l).unwrap();
                assert_eq!(
                    Aig::lit_value(&old, l) & 0xFFFF,
                    Aig::lit_value(&new, m) & 0xFFFF,
                );
            }
        }
    }

    #[test]
    fn latches_and_inputs_survive_identically() {
        let mut g = Aig::new();
        let a = g.add_input();
        let l0 = g.add_latch(true);
        let n = g.and(a, l0);
        g.set_next(l0, n);
        let (rw, _) = fraig(&g, 7);
        assert_eq!(rw.aig.n_inputs(), 1);
        assert_eq!(rw.aig.n_latches(), 1);
        assert_eq!(rw.latch_origin, vec![0]);
        assert!(rw.aig.latch_info(0).init);
        assert!(rw.aig.latch_info(0).next.is_some());
    }
}
