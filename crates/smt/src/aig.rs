//! And-Inverter Graphs with structural hashing and constant folding.
//!
//! An [`Aig`] is a DAG of two-input AND nodes over free inputs, single-bit
//! latches, and the constant `false`; inversion is free (a bit on the edge
//! literal). Every [`Aig::and`] call constant-folds (`x ∧ 0 = 0`,
//! `x ∧ 1 = x`, `x ∧ x = x`, `x ∧ ¬x = 0`) and structurally hashes, so
//! repeated subcircuits — e.g. the same decode logic blasted once per
//! array element — collapse to single nodes. Nodes are created in
//! topological order by construction: an AND's fanins always have smaller
//! indices, which is what lets the unroller map a whole graph frame by
//! frame in one linear pass.
//!
//! [`AigCircuit`] pairs an AIG with the flattened [`Module`] it was
//! blasted from (via [`anvil_rtl::blast_module`]) and the signal/array →
//! literal maps, so assertions phrased as netlist [`Expr`]s can be blasted
//! into the same graph later.

use std::collections::HashMap;
use std::sync::Arc;

use anvil_rtl::{blast_expr, blast_module, BlastError, Blasted, Expr, Module, NetBuilder};

/// An edge literal: a node index plus a complement bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    pub(crate) fn new(node: usize, negated: bool) -> Lit {
        Lit(((node as u32) << 1) | u32::from(negated))
    }

    /// Index of the referenced node.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge complements the node's value.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// True for the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

/// One AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// The constant `false` (always node 0).
    Const,
    /// Free input bit number `n` (allocation order).
    Input(u32),
    /// Latch number `n` (see [`Aig::latch_info`]).
    Latch(u32),
    /// Two-input AND of the fanin literals.
    And(Lit, Lit),
}

/// A latch: power-on value plus (once connected) the next-state literal.
#[derive(Clone, Copy, Debug)]
pub struct Latch {
    /// The latch's node index.
    pub node: u32,
    /// Power-on value.
    pub init: bool,
    /// Next-state function, filled in by [`Aig::set_next`].
    pub next: Option<Lit>,
}

/// An And-Inverter Graph.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    latches: Vec<Latch>,
    n_inputs: u32,
    input_nodes: Vec<u32>,
    strash: HashMap<(Lit, Lit), Lit>,
}

impl Aig {
    /// An empty graph (just the constant node).
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::Const],
            latches: Vec::new(),
            n_inputs: 0,
            input_nodes: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Number of nodes (including the constant).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph holds only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of AND nodes.
    pub fn n_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Number of free input bits.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs as usize
    }

    /// Number of latches.
    pub fn n_latches(&self) -> usize {
        self.latches.len()
    }

    /// The node behind an index.
    pub fn node(&self, index: usize) -> Node {
        self.nodes[index]
    }

    /// All nodes in topological order (fanins precede fanouts).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Latch metadata, by latch number.
    pub fn latch_info(&self, n: u32) -> Latch {
        self.latches[n as usize]
    }

    /// All latches in allocation order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    fn push(&mut self, node: Node) -> Lit {
        let idx = self.nodes.len();
        self.nodes.push(node);
        Lit::new(idx, false)
    }

    /// A fresh free input bit.
    pub fn add_input(&mut self) -> Lit {
        let n = self.n_inputs;
        self.n_inputs += 1;
        let lit = self.push(Node::Input(n));
        self.input_nodes.push(lit.node() as u32);
        lit
    }

    /// The (uncomplemented) literal of input bit `n`.
    pub fn input_lit(&self, n: u32) -> Lit {
        Lit::new(self.input_nodes[n as usize] as usize, false)
    }

    /// The (uncomplemented) literal of latch `n`.
    pub fn latch_lit(&self, n: u32) -> Lit {
        Lit::new(self.latches[n as usize].node as usize, false)
    }

    /// A fresh latch with the given power-on value.
    pub fn add_latch(&mut self, init: bool) -> Lit {
        let n = self.latches.len() as u32;
        let lit = self.push(Node::Latch(n));
        self.latches.push(Latch {
            node: lit.node() as u32,
            init,
            next: None,
        });
        lit
    }

    /// Connects a latch's next-state literal.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not an uncomplemented latch literal or the
    /// latch is already connected.
    pub fn set_next(&mut self, latch: Lit, next: Lit) {
        assert!(!latch.is_negated(), "latch literal must be uncomplemented");
        let Node::Latch(n) = self.nodes[latch.node()] else {
            panic!("set_next target is not a latch");
        };
        let slot = &mut self.latches[n as usize];
        assert!(slot.next.is_none(), "latch connected twice");
        slot.next = Some(next);
    }

    /// The AND of two literals, with constant folding and structural
    /// hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Order operands for canonical hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if a == Lit::FALSE || b == Lit::FALSE || a == b.negate() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(&lit) = self.strash.get(&(a, b)) {
            return lit;
        }
        let lit = self.push(Node::And(a, b));
        self.strash.insert((a, b), lit);
        lit
    }

    /// The OR of two literals (one AND node).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.negate(), b.negate()).negate()
    }

    /// The XOR of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.and(a, b.negate());
        let y = self.and(a.negate(), b);
        self.or(x, y)
    }

    /// `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let x = self.and(sel, t);
        let y = self.and(sel.negate(), e);
        self.or(x, y)
    }

    /// Word-parallel evaluation: one 64-pattern word per input and latch
    /// in, one word per node out (bit `i` of a node's word is its value
    /// under pattern `i`). This is the lane-engine trick applied to the
    /// graph itself — 64 stimulus vectors per linear pass — and is what
    /// fraiging uses to find candidate equivalences.
    ///
    /// # Panics
    ///
    /// Panics when fewer words than inputs or latches are supplied.
    pub fn simulate(&self, inputs: &[u64], latches: &[u64]) -> Vec<u64> {
        let mut vals = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match *node {
                Node::Const => 0,
                Node::Input(n) => inputs[n as usize],
                Node::Latch(n) => latches[n as usize],
                Node::And(a, b) => {
                    let va = vals[a.node()] ^ if a.is_negated() { !0u64 } else { 0 };
                    let vb = vals[b.node()] ^ if b.is_negated() { !0u64 } else { 0 };
                    va & vb
                }
            };
            vals.push(v);
        }
        vals
    }

    /// The value of one literal given a node-value vector from
    /// [`Aig::simulate`].
    pub fn lit_value(values: &[u64], l: Lit) -> u64 {
        values[l.node()] ^ if l.is_negated() { !0u64 } else { 0 }
    }

    /// Depth (logic levels) of every node: inputs, latches, and the
    /// constant are level 0; an AND is one more than its deepest fanin.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels: Vec<u32> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let l = match *node {
                Node::And(a, b) => 1 + levels[a.node()].max(levels[b.node()]),
                _ => 0,
            };
            levels.push(l);
        }
        levels
    }

    /// Maximum logic level over the whole graph.
    pub fn max_level(&self) -> u32 {
        self.levels().into_iter().max().unwrap_or(0)
    }

    /// A span-independent structural fingerprint (FNV-1a over the node
    /// array, latch metadata, and input count). Two graphs built by the
    /// same deterministic pipeline from semantically identical units hash
    /// identically, which is what keys proof certificates in the
    /// session's query cache.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.n_inputs as u64);
        mix(self.nodes.len() as u64);
        for node in &self.nodes {
            match *node {
                Node::Const => mix(1),
                Node::Input(n) => mix(2 | (u64::from(n) << 8)),
                Node::Latch(n) => mix(3 | (u64::from(n) << 8)),
                Node::And(a, b) => {
                    mix(4 | (u64::from(a.0) << 8) | (u64::from(b.0) << 40));
                }
            }
        }
        for l in &self.latches {
            mix(u64::from(l.node) << 2 | u64::from(l.init) << 1 | u64::from(l.next.is_some()));
            if let Some(n) = l.next {
                mix(u64::from(n.0));
            }
        }
        h
    }
}

impl NetBuilder for Aig {
    type Net = Lit;

    fn constant(&mut self, value: bool) -> Lit {
        if value {
            Lit::TRUE
        } else {
            Lit::FALSE
        }
    }

    fn input(&mut self) -> Lit {
        self.add_input()
    }

    fn latch(&mut self, init: bool) -> Lit {
        self.add_latch(init)
    }

    fn set_latch_next(&mut self, latch: Lit, next: Lit) {
        self.set_next(latch, next);
    }

    fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a, b)
    }

    fn not1(&mut self, a: Lit) -> Lit {
        a.negate()
    }
}

/// A flattened module bit-blasted into an AIG, with the signal/array →
/// literal maps needed to blast assertions into the same graph.
///
/// This is the cacheable artifact of the symbolic pipeline: building it
/// costs one pass over the netlist, after which any number of
/// properties can be checked against clones of the circuit.
#[derive(Clone, Debug)]
pub struct AigCircuit {
    module: Arc<Module>,
    aig: Arc<Aig>,
    blasted: Blasted<Lit>,
}

/// Circuits are cached in the compiler session's query cache and shared
/// across prover threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AigCircuit>();
};

impl AigCircuit {
    /// Bit-blasts a flattened module.
    ///
    /// # Errors
    ///
    /// Rejects the same module set the simulation backends reject
    /// (instances, combinational cycles, width-inconsistent drivers).
    pub fn from_module(module: &Module) -> Result<AigCircuit, BlastError> {
        let module = Arc::new(module.clone());
        let mut aig = Aig::new();
        let blasted = blast_module(&mut aig, &module)?;
        Ok(AigCircuit {
            module,
            aig: Arc::new(aig),
            blasted,
        })
    }

    /// The blasted module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The module behind its shared handle.
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }

    /// The underlying graph.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// The underlying graph behind its shared handle (what the unroller
    /// and the PDR engine hold).
    pub fn aig_arc(&self) -> Arc<Aig> {
        Arc::clone(&self.aig)
    }

    /// Input ports in signal-id order: `(signal index, bit literals)`.
    /// This is the same port order the explicit-state BMC's trace format
    /// uses.
    pub fn input_bits(&self) -> &[(usize, Vec<Lit>)] {
        &self.blasted.inputs
    }

    /// The literal vector of one signal (LSB first).
    pub fn signal_lits(&self, signal: usize) -> &[Lit] {
        &self.blasted.signals[signal]
    }

    /// Blasts an assertion expression into this circuit, returning its
    /// *truthiness* literal (true iff any bit of the expression is set,
    /// matching the simulator's SystemVerilog-style condition semantics).
    ///
    /// # Errors
    ///
    /// Fails if the expression does not width-check against the module.
    pub fn blast_assertion(&mut self, e: &Expr) -> Result<Lit, BlastError> {
        let aig = Arc::make_mut(&mut self.aig);
        let bits = blast_expr(aig, &self.module, &mut self.blasted, e)?;
        let mut any = Lit::FALSE;
        for b in bits {
            any = aig.or(any, b);
        }
        Ok(any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_rules() {
        let mut g = Aig::new();
        let a = g.add_input();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.negate()), Lit::FALSE);
        assert_eq!(g.n_ands(), 0);
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.n_ands(), 1);
        let o1 = g.or(a, b);
        let o2 = g.or(b, a);
        assert_eq!(o1, o2);
    }

    #[test]
    fn xor_and_mux_fold_constants() {
        let mut g = Aig::new();
        let a = g.add_input();
        assert_eq!(g.xor(a, Lit::FALSE), a);
        assert_eq!(g.xor(a, Lit::TRUE), a.negate());
        assert_eq!(g.mux(Lit::TRUE, a, Lit::FALSE), a);
        assert_eq!(g.mux(Lit::FALSE, a, Lit::TRUE), Lit::TRUE);
    }

    #[test]
    fn circuit_from_module_extracts_latches() {
        use anvil_rtl::Expr;
        let mut m = Module::new("c");
        let en = m.input("en", 1);
        let q = m.reg("q", 4);
        let o = m.output("o", 4);
        m.update_when(q, Expr::Signal(en), Expr::Signal(q).add(Expr::lit(1, 4)));
        m.assign(o, Expr::Signal(q));
        let c = AigCircuit::from_module(&m).unwrap();
        assert_eq!(c.aig().n_latches(), 4);
        assert_eq!(c.aig().n_inputs(), 1);
        // Every latch is connected.
        for l in c.aig().latches() {
            assert!(l.next.is_some());
        }
    }

    #[test]
    fn rom_arrays_blast_to_constants() {
        use anvil_rtl::{Bits, Expr};
        let mut m = Module::new("rom");
        let addr = m.input("addr", 2);
        let rom = m.array_init(
            "rom",
            8,
            4,
            (0..4).map(|i| Bits::from_u64(0x11 * i, 8)).collect(),
        );
        let o = m.output("o", 8);
        m.assign(
            o,
            Expr::ArrayRead {
                array: rom,
                index: Box::new(Expr::Signal(addr)),
            },
        );
        let c = AigCircuit::from_module(&m).unwrap();
        // No latches: the ROM contents are constants.
        assert_eq!(c.aig().n_latches(), 0);
    }

    #[test]
    fn assertion_blasts_to_truthiness() {
        use anvil_rtl::Expr;
        let mut m = Module::new("t");
        let a = m.input("a", 4);
        let o = m.output("o", 1);
        m.assign(o, Expr::Signal(a).eq(Expr::lit(3, 4)));
        let mut c = AigCircuit::from_module(&m).unwrap();
        // A constant-true assertion folds to the true literal.
        let t = c.blast_assertion(&Expr::lit(1, 1)).unwrap();
        assert_eq!(t, Lit::TRUE);
        let f = c.blast_assertion(&Expr::lit(0, 4)).unwrap();
        assert_eq!(f, Lit::FALSE);
        // Width errors surface.
        let bad = Expr::Signal(a).add(Expr::lit(0, 2));
        assert!(c.blast_assertion(&bad).is_err());
    }
}
