//! Proof certificates: reusable evidence that a property was proved or
//! falsified, cheap to re-check against a structurally identical circuit.
//!
//! A [`ProofCert`] is what the proof cache stores under an
//! [`Aig::fingerprint`] × property key. The point of a certificate is
//! asymmetry: *finding* an inductive invariant costs a PDR run or a
//! k-induction search, but *checking* one needs a single incremental SAT
//! session ([`ProofCert::revalidate_inductive`]), and checking a
//! counterexample needs only concrete replay. A warm re-prove after an
//! edit that left the unit's fingerprint unchanged therefore skips the
//! expensive search entirely.
//!
//! Invariant clauses are phrased over *latch literals of the original
//! sequential graph* (not the rewritten/fraiged one), so revalidation
//! runs directly on the cached circuit without redoing any optimization.

use std::sync::Arc;

use crate::aig::{Aig, Lit};
use crate::cnf::{CnfEncoder, Unroller};
use crate::solver::{SLit, SolveResult, Solver};

/// A literal over one latch of the sequential circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LatchLit {
    /// Latch number (see [`Aig::latch_info`]).
    pub latch: u32,
    /// True when the literal asserts the latch is *low*.
    pub negated: bool,
}

impl LatchLit {
    /// The literal's value in a concrete latch valuation.
    pub fn eval(self, latch_values: &[bool]) -> bool {
        latch_values[self.latch as usize] != self.negated
    }
}

/// The evidence a certificate carries.
#[derive(Clone, Debug)]
pub enum CertKind {
    /// An inductive strengthening: clauses over latch literals such that
    /// the conjunction holds at reset, is closed under the transition
    /// relation, and implies the property (what PDR extracts on
    /// convergence).
    Inductive {
        /// The invariant, one clause per entry.
        clauses: Vec<Vec<LatchLit>>,
    },
    /// The property proved by k-induction at this depth; revalidation
    /// reruns base + step at exactly `k` (no search over depths).
    KInduction {
        /// The proving induction depth.
        k: usize,
    },
    /// A concrete counterexample: per-cycle input-port words in the
    /// explicit-state trace format; revalidation replays it.
    Falsified {
        /// Cycles simulated until the violation (violation fires on the
        /// last one).
        depth: usize,
        /// One `Vec<u64>` of port values per cycle, port order matching
        /// `AigCircuit::input_bits`.
        trace: Vec<Vec<u64>>,
    },
}

/// A cached proof artifact.
#[derive(Clone, Debug)]
pub struct ProofCert {
    /// The evidence.
    pub kind: CertKind,
    /// Which engine produced it (`"pdr"`, `"k-induction"`, `"bmc"`, …).
    pub engine: &'static str,
}

impl ProofCert {
    /// Checks an [`CertKind::Inductive`] invariant against a sequential
    /// graph in one incremental SAT session: syntactically that every
    /// clause holds at reset, then by two solver calls that the invariant
    /// implies the property (`Inv ∧ ¬ok` is unsatisfiable) and is closed
    /// under one transition (`Inv ∧ T ∧ ¬Inv'` is unsatisfiable). All
    /// three together re-establish safety without any invariant search.
    ///
    /// Returns `false` (never panics) on clauses referencing latches the
    /// graph does not have — a stale certificate simply fails to
    /// revalidate and the caller falls back to a cold prove.
    pub fn revalidate_inductive(seq: &Arc<Aig>, ok: Lit, clauses: &[Vec<LatchLit>]) -> bool {
        let n_latches = seq.n_latches();
        if clauses
            .iter()
            .flatten()
            .any(|l| l.latch as usize >= n_latches)
        {
            return false;
        }
        // Reset satisfies every clause.
        let init: Vec<bool> = seq.latches().iter().map(|l| l.init).collect();
        if !clauses.iter().all(|c| c.iter().any(|l| l.eval(&init))) {
            return false;
        }

        let mut u = Unroller::new(Arc::clone(seq), true);
        u.push_frame();
        u.push_frame();
        let mut enc = CnfEncoder::new();
        let mut solver = Solver::new();
        let latch_at = |u: &Unroller, frame: usize, l: LatchLit| {
            let lit = u.lit_at(frame, seq.latch_lit(l.latch));
            if l.negated {
                lit.negate()
            } else {
                lit
            }
        };
        // Assert Inv over frame-0 latches.
        for c in clauses {
            let lits: Vec<SLit> = c
                .iter()
                .map(|&l| enc.encode(u.comb(), &mut solver, latch_at(&u, 0, l)))
                .collect();
            solver.add_clause(&lits);
        }
        // Inv ⊨ ok.
        let bad0 = enc.encode(u.comb(), &mut solver, u.lit_at(0, ok.negate()));
        if solver.solve(&[bad0]) != SolveResult::Unsat {
            return false;
        }
        // Inv ∧ T ⊨ Inv': some next-frame clause is violated — Tseitin an
        // OR over per-clause violations and ask for a model.
        let viol_var = solver.new_var();
        let viol = SLit::pos(viol_var);
        let mut any = vec![viol.negate()];
        for c in clauses {
            // ¬c' = all literals false: one auxiliary var per clause.
            let aux = SLit::pos(solver.new_var());
            for &l in c {
                let sl = enc.encode(u.comb(), &mut solver, latch_at(&u, 1, l));
                solver.add_clause(&[aux.negate(), sl.negate()]);
            }
            any.push(aux);
        }
        solver.add_clause(&any);
        solver.solve(&[viol]) == SolveResult::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-bit saturating counter: once bit 1 sets, it stays set; the
    /// invariant "bit1 → bit1'" family is checkable by hand.
    fn saturating() -> Aig {
        let mut g = Aig::new();
        let b0 = g.add_latch(false);
        let b1 = g.add_latch(false);
        // b0' = ¬b0 ∧ ¬b1 (counts 0,1 then parks once b1 is set)
        let n0 = g.and(b0.negate(), b1.negate());
        // b1' = b1 ∨ b0
        let n1 = g.or(b1, b0);
        g.set_next(b0, n0);
        g.set_next(b1, n1);
        g
    }

    #[test]
    fn good_invariant_revalidates() {
        let g = Arc::new(saturating());
        // Property: ¬(b0 ∧ b1) — state 3 is unreachable.
        let b0 = g.latch_lit(0);
        let b1 = g.latch_lit(1);
        let mut gm = (*g).clone();
        let ok = gm.and(b0, b1).negate();
        let g = Arc::new(gm);
        // Invariant: ¬b0 ∨ ¬b1 (the property itself is inductive here).
        let inv = vec![vec![
            LatchLit {
                latch: 0,
                negated: true,
            },
            LatchLit {
                latch: 1,
                negated: true,
            },
        ]];
        assert!(ProofCert::revalidate_inductive(&g, ok, &inv));
    }

    #[test]
    fn non_inductive_clause_is_rejected() {
        let g = Arc::new(saturating());
        let b1 = g.latch_lit(1);
        // "Property": b1 never sets. False — and the claimed invariant
        // ¬b1 is not closed under T (state 01 steps to 10).
        let ok = b1.negate();
        let inv = vec![vec![LatchLit {
            latch: 1,
            negated: true,
        }]];
        assert!(!ProofCert::revalidate_inductive(&g, ok, &inv));
    }

    #[test]
    fn init_violating_clause_is_rejected() {
        let g = Arc::new(saturating());
        let inv = vec![vec![LatchLit {
            latch: 0,
            negated: false,
        }]];
        assert!(!ProofCert::revalidate_inductive(&g, Lit::TRUE, &inv));
    }

    #[test]
    fn out_of_range_latch_fails_gracefully() {
        let g = Arc::new(saturating());
        let inv = vec![vec![LatchLit {
            latch: 7,
            negated: false,
        }]];
        assert!(!ProofCert::revalidate_inductive(&g, Lit::TRUE, &inv));
    }
}
