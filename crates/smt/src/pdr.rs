//! Property-directed reachability (IC3/PDR) over the incremental solver.
//!
//! Where bounded model checking unrolls the transition relation `k` times
//! and k-induction needs the property to be inductive after `k`
//! strengthening frames, PDR proves safety with *no deep unrolling at
//! all*: it maintains a sequence of frames `F_0 ⊇ F_1 ⊇ … ⊇ F_N` (as
//! state sets; as clause sets they grow) where `F_i` over-approximates
//! the states reachable in at most `i` steps, and incrementally
//! strengthens them with *relatively inductive* clauses until two
//! adjacent frames coincide — an inductive invariant — or a chain of
//! concrete predecessor states reaches the reset state — a
//! counterexample.
//!
//! The implementation is the monolithic-solver variant: one incremental
//! [`Solver`] holds a two-frame unrolling of the transition relation
//! (current state = frame 0, next state = frame 1), every frame clause
//! is guarded by a per-position activation literal, and a query against
//! `F_i` simply assumes the activation literals of positions `i..=N`.
//! Frame 0 is the exact reset state, asserted as a complete cube of
//! assumptions. Proof obligations carry the input words of their suffix
//! path, so a falsification comes out as a ready-to-replay stimulus
//! trace rather than an abstract state sequence.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::aig::{Aig, Lit};
use crate::cert::LatchLit;
use crate::cnf::{CnfEncoder, Unroller};
use crate::share::{ClauseExchange, ClauseKind, SharedClause};
use crate::solver::{SLit, SolveResult, Solver, SolverStats};

/// Tuning and cooperation knobs for one [`Pdr`] run.
pub struct PdrOptions {
    /// Frame cap; exceeding it returns [`PdrOutcome::Unknown`].
    pub max_frames: usize,
    /// Proof-obligation cap (runaway guard on huge state spaces).
    pub max_obligations: u64,
    /// Solver-propagation cap — the effective wall-clock guard. On
    /// datapath-heavy cones (wide functional invariants) generalization
    /// issues hundreds of SAT calls per obligation, each cheap in
    /// conflicts but long in propagations; this bounds total work where
    /// the obligation cap alone would admit hours.
    pub max_propagations: u64,
    /// Cooperative stop flag (portfolio losers are cancelled through it).
    pub stop: Option<Arc<AtomicBool>>,
    /// Wall-clock deadline, polled wherever the stop flag is (and inside
    /// the solver); expiry returns [`PdrOutcome::Unknown`].
    pub deadline: crate::Deadline,
    /// Clause exchange for the cooperating portfolio: frame clauses are
    /// published as [`ClauseKind::Reach`], and [`ClauseKind::Path`]
    /// clauses of span ≤ 1 are imported as permanent transition facts.
    pub exchange: Option<Arc<ClauseExchange>>,
}

impl Default for PdrOptions {
    fn default() -> PdrOptions {
        PdrOptions {
            max_frames: 64,
            max_obligations: 200_000,
            max_propagations: 100_000_000,
            stop: None,
            deadline: crate::Deadline::none(),
            exchange: None,
        }
    }
}

/// Counters for one [`Pdr`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PdrStats {
    /// Frames opened (the final `N`).
    pub frames: usize,
    /// Blocking clauses added (including propagated re-adds).
    pub clauses: usize,
    /// Proof obligations processed.
    pub obligations: u64,
    /// Solver calls issued.
    pub sat_calls: u64,
    /// Cube literals dropped by inductive generalization.
    pub generalized_away: u64,
    /// Clauses published to the exchange.
    pub shared_published: u64,
    /// Clauses imported from the exchange.
    pub shared_imported: u64,
    /// Solver variables allocated.
    pub vars: usize,
    /// The underlying solver's counters.
    pub solver: SolverStats,
}

/// Result of a [`Pdr::run`].
#[derive(Clone, Debug)]
pub enum PdrOutcome {
    /// The property holds; the clauses (over sequential latch literals)
    /// are an inductive strengthening checkable by
    /// [`crate::ProofCert::revalidate_inductive`]. May be empty when the
    /// property is already invariant on its own.
    Proved {
        /// The invariant clauses.
        invariant: Vec<Vec<LatchLit>>,
    },
    /// The property fails; `inputs[c]` holds the value of every
    /// sequential input bit at cycle `c`, starting from reset, with the
    /// violation on the last cycle.
    Falsified {
        /// Per-cycle input-bit assignments.
        inputs: Vec<Vec<bool>>,
    },
    /// Gave up (frame cap, obligation cap, or stop flag).
    Unknown,
}

/// A proof obligation: block `cube` at `frame`, or trace it back to
/// reset. `inputs` is the suffix stimulus from the cube's state to the
/// violation.
struct Ob {
    frame: usize,
    order: u64,
    cube: Vec<LatchLit>,
    inputs: Vec<Vec<bool>>,
}

impl PartialEq for Ob {
    fn eq(&self, other: &Ob) -> bool {
        self.frame == other.frame && self.order == other.order
    }
}
impl Eq for Ob {}
impl PartialOrd for Ob {
    fn partial_cmp(&self, other: &Ob) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ob {
    fn cmp(&self, other: &Ob) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for lowest-frame-first,
        // FIFO within a frame.
        other
            .frame
            .cmp(&self.frame)
            .then(other.order.cmp(&self.order))
    }
}

enum Consec {
    /// The cube has no predecessor in the precondition frame.
    Blocked,
    /// A concrete predecessor state and the input word driving it into
    /// the cube.
    Cti(Vec<LatchLit>, Vec<bool>),
    /// Solver interrupted (stop flag).
    Interrupted,
}

/// The IC3/PDR engine.
pub struct Pdr {
    seq: Arc<Aig>,
    solver: Solver,
    enc: CnfEncoder,
    unroller: Unroller,
    /// Solver literal of each latch in the current (frame 0) state.
    cur_latch: Vec<SLit>,
    /// … and in the next (frame 1) state.
    nxt_latch: Vec<SLit>,
    /// Solver literal of each input bit at frame 0.
    cur_input: Vec<SLit>,
    /// `¬ok` over the current state.
    bad: SLit,
    /// Reset values per latch.
    init: Vec<bool>,
    /// Activation literal per clause position (`acts[i]` guards position
    /// `i`; index 0 is an unused placeholder).
    acts: Vec<SLit>,
    /// Blocking cubes with their current positions.
    cubes: Vec<(Vec<LatchLit>, usize)>,
    ob_order: u64,
    options: PdrOptions,
    import_cursor: u64,
    stats: PdrStats,
}

impl Pdr {
    /// Prepares an engine for `ok` (the property literal) over the
    /// sequential graph.
    pub fn new(seq: Arc<Aig>, ok: Lit, options: PdrOptions) -> Pdr {
        let mut unroller = Unroller::new(Arc::clone(&seq), true);
        unroller.push_frame();
        unroller.push_frame();
        let mut solver = Solver::new();
        if let Some(stop) = &options.stop {
            solver.set_stop(Arc::clone(stop));
        }
        solver.set_deadline(options.deadline);
        let mut enc = CnfEncoder::new();
        let mut latch_slits = |frame: usize| -> Vec<SLit> {
            (0..seq.n_latches() as u32)
                .map(|n| {
                    let l = unroller.lit_at(frame, seq.latch_lit(n));
                    enc.encode(unroller.comb(), &mut solver, l)
                })
                .collect()
        };
        let cur_latch = latch_slits(0);
        let nxt_latch = latch_slits(1);
        let cur_input: Vec<SLit> = (0..seq.n_inputs() as u32)
            .map(|n| {
                let l = unroller.lit_at(0, seq.input_lit(n));
                enc.encode(unroller.comb(), &mut solver, l)
            })
            .collect();
        let bad = enc.encode(
            unroller.comb(),
            &mut solver,
            unroller.lit_at(0, ok.negate()),
        );
        let init = seq.latches().iter().map(|l| l.init).collect();
        // Placeholder for position 0 (never assumed) plus position 1.
        let acts = vec![SLit::pos(solver.new_var()), SLit::pos(solver.new_var())];
        Pdr {
            seq,
            solver,
            enc,
            unroller,
            cur_latch,
            nxt_latch,
            cur_input,
            bad,
            init,
            acts,
            cubes: Vec::new(),
            ob_order: 0,
            options,
            import_cursor: 0,
            stats: PdrStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PdrStats {
        let mut s = self.stats;
        s.solver = self.solver.stats();
        s.vars = self.solver.n_vars();
        s
    }

    fn stopped(&self) -> bool {
        self.options
            .stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
            || self.options.deadline.expired()
    }

    /// Cancelled externally or out of propagation budget.
    fn interrupted(&self) -> bool {
        self.stopped() || self.solver.stats().propagations > self.options.max_propagations
    }

    /// The complete current-state cube of the last model.
    fn model_cube(&self) -> Vec<LatchLit> {
        self.cur_latch
            .iter()
            .enumerate()
            .map(|(n, &sl)| LatchLit {
                latch: n as u32,
                negated: !self.solver.model_value(sl),
            })
            .collect()
    }

    /// The frame-0 input word of the last model.
    fn model_inputs(&self) -> Vec<bool> {
        self.cur_input
            .iter()
            .map(|&sl| self.solver.model_value(sl))
            .collect()
    }

    /// Does the reset state satisfy the cube? (Complete cubes: equality
    /// with reset.)
    fn init_in_cube(&self, cube: &[LatchLit]) -> bool {
        cube.iter().all(|l| l.eval(&self.init))
    }

    fn cur_slit(&self, l: LatchLit) -> SLit {
        let s = self.cur_latch[l.latch as usize];
        if l.negated {
            s.negate()
        } else {
            s
        }
    }

    fn nxt_slit(&self, l: LatchLit) -> SLit {
        let s = self.nxt_latch[l.latch as usize];
        if l.negated {
            s.negate()
        } else {
            s
        }
    }

    /// Relative-induction query: can a state of `fprev` (under `¬cube`
    /// when `fprev ≥ 1`) transition into `cube`?
    fn consecution(&mut self, cube: &[LatchLit], fprev: usize) -> Consec {
        let mut assumptions: Vec<SLit> = Vec::new();
        let mut retire: Option<SLit> = None;
        if fprev == 0 {
            // Exact reset state. `¬cube` is implied: callers never ask
            // about the reset cube itself.
            for (n, &v) in self.init.clone().iter().enumerate() {
                let s = self.cur_latch[n];
                assumptions.push(if v { s } else { s.negate() });
            }
        } else {
            assumptions.extend_from_slice(&self.acts[fprev..]);
            // Temporary activation of ¬cube over the current state.
            let t = SLit::pos(self.solver.new_var());
            let mut cls: Vec<SLit> = vec![t.negate()];
            cls.extend(cube.iter().map(|&l| self.cur_slit(l).negate()));
            self.solver.add_clause(&cls);
            assumptions.push(t);
            retire = Some(t);
        }
        assumptions.extend(cube.iter().map(|&l| self.nxt_slit(l)));
        self.stats.sat_calls += 1;
        let res = self.solver.solve(&assumptions);
        let out = match res {
            SolveResult::Unsat => Consec::Blocked,
            SolveResult::Sat => Consec::Cti(self.model_cube(), self.model_inputs()),
            SolveResult::Interrupted => Consec::Interrupted,
        };
        if let Some(t) = retire {
            self.solver.add_clause(&[t.negate()]);
        }
        out
    }

    /// Drops cube literals while consecution at `fprev` still holds and
    /// the reset state stays excluded.
    fn generalize(&mut self, cube: Vec<LatchLit>, fprev: usize) -> Vec<LatchLit> {
        let mut cube = cube;
        let mut i = 0;
        while i < cube.len() && cube.len() > 1 {
            let mut candidate = cube.clone();
            candidate.remove(i);
            // Reset must stay outside the shrunk cube.
            if self.init_in_cube(&candidate) {
                i += 1;
                continue;
            }
            match self.consecution(&candidate, fprev) {
                Consec::Blocked => {
                    cube = candidate;
                    self.stats.generalized_away += 1;
                }
                _ => i += 1,
            }
        }
        cube
    }

    /// Adds the blocking clause `¬cube` at `pos` (guarded) and publishes
    /// it to the exchange.
    fn add_blocking_clause(&mut self, cube: &[LatchLit], pos: usize) {
        let mut cls: Vec<SLit> = vec![self.acts[pos].negate()];
        cls.extend(cube.iter().map(|&l| self.cur_slit(l).negate()));
        self.solver.add_clause(&cls);
        self.stats.clauses += 1;
        if let Some(x) = &self.options.exchange {
            let lits: Vec<(u32, Lit)> = cube
                .iter()
                .map(|l| {
                    let base = self.seq.latch_lit(l.latch);
                    // Clause literal is the cube literal negated.
                    (0, if l.negated { base } else { base.negate() })
                })
                .collect();
            x.publish(SharedClause {
                lits,
                kind: ClauseKind::Reach { upto: pos as u32 },
            });
            self.stats.shared_published += 1;
        }
    }

    /// Imports transition-implied ([`ClauseKind::Path`], span ≤ 1)
    /// clauses from the exchange as permanent clauses over the two
    /// encoded frames.
    fn import_shared(&mut self) {
        let Some(x) = self.options.exchange.clone() else {
            return;
        };
        for c in x.fetch(&mut self.import_cursor) {
            if !matches!(c.kind, ClauseKind::Path) || c.span() > 1 {
                continue;
            }
            let lits: Vec<SLit> = c
                .lits
                .iter()
                .map(|&(f, l)| {
                    let comb = self.unroller.lit_at(f as usize, l);
                    self.enc
                        .encode(self.unroller.comb(), &mut self.solver, comb)
                })
                .collect();
            self.solver.add_clause(&lits);
            self.stats.shared_imported += 1;
        }
    }

    /// Runs the engine to a verdict.
    pub fn run(&mut self) -> PdrOutcome {
        // Cycle 0: does reset itself violate the property?
        let mut reset_assumps: Vec<SLit> = self
            .init
            .clone()
            .iter()
            .enumerate()
            .map(|(n, &v)| {
                let s = self.cur_latch[n];
                if v {
                    s
                } else {
                    s.negate()
                }
            })
            .collect();
        reset_assumps.push(self.bad);
        self.stats.sat_calls += 1;
        match self.solver.solve(&reset_assumps) {
            SolveResult::Sat => {
                return PdrOutcome::Falsified {
                    inputs: vec![self.model_inputs()],
                };
            }
            SolveResult::Interrupted => return PdrOutcome::Unknown,
            SolveResult::Unsat => {}
        }

        let mut n = 1usize;
        loop {
            self.stats.frames = n;
            let _sp = anvil_trace::span("pdr", "frame").detail_with(|| format!("F{n}"));
            if n >= self.options.max_frames || self.interrupted() {
                return PdrOutcome::Unknown;
            }
            self.import_shared();
            let mut bad_assumps = self.acts[n..].to_vec();
            bad_assumps.push(self.bad);
            self.stats.sat_calls += 1;
            match self.solver.solve(&bad_assumps) {
                SolveResult::Interrupted => return PdrOutcome::Unknown,
                SolveResult::Sat => {
                    let cube = self.model_cube();
                    let inputs = self.model_inputs();
                    match self.handle_obligations(cube, inputs, n) {
                        Some(outcome) => return outcome,
                        None => continue,
                    }
                }
                SolveResult::Unsat => {
                    // Propagate clauses forward, then look for two equal
                    // adjacent frames.
                    for i in 1..n {
                        for ci in 0..self.cubes.len() {
                            if self.cubes[ci].1 != i {
                                continue;
                            }
                            let cube = self.cubes[ci].0.clone();
                            if matches!(self.consecution(&cube, i), Consec::Blocked) {
                                self.cubes[ci].1 = i + 1;
                                self.add_blocking_clause(&cube, i + 1);
                            }
                        }
                        if self.interrupted() {
                            return PdrOutcome::Unknown;
                        }
                    }
                    for i in 1..n {
                        if self.cubes.iter().any(|(_, p)| *p == i) {
                            continue;
                        }
                        // F_i == F_{i+1}: inductive invariant found.
                        let invariant = self
                            .cubes
                            .iter()
                            .filter(|(_, p)| *p > i)
                            .map(|(c, _)| {
                                c.iter()
                                    .map(|l| LatchLit {
                                        latch: l.latch,
                                        negated: !l.negated,
                                    })
                                    .collect()
                            })
                            .collect();
                        return PdrOutcome::Proved { invariant };
                    }
                    n += 1;
                    self.acts.push(SLit::pos(self.solver.new_var()));
                }
            }
        }
    }

    /// Discharges the obligation queue seeded with one bad cube at frame
    /// `n`. `Some(outcome)` ends the whole run; `None` means every
    /// obligation was blocked.
    fn handle_obligations(
        &mut self,
        cube: Vec<LatchLit>,
        inputs: Vec<bool>,
        n: usize,
    ) -> Option<PdrOutcome> {
        let mut queue: BinaryHeap<Ob> = BinaryHeap::new();
        self.ob_order += 1;
        queue.push(Ob {
            frame: n,
            order: self.ob_order,
            cube,
            inputs: vec![inputs],
        });
        while let Some(ob) = queue.pop() {
            self.stats.obligations += 1;
            if self.stats.obligations > self.options.max_obligations || self.interrupted() {
                return Some(PdrOutcome::Unknown);
            }
            if self.init_in_cube(&ob.cube) {
                // Reached reset: the suffix inputs are a complete
                // counterexample stimulus.
                return Some(PdrOutcome::Falsified { inputs: ob.inputs });
            }
            match self.consecution(&ob.cube, ob.frame - 1) {
                Consec::Interrupted => return Some(PdrOutcome::Unknown),
                Consec::Cti(pred, pred_inputs) => {
                    let mut inputs = Vec::with_capacity(ob.inputs.len() + 1);
                    inputs.push(pred_inputs);
                    inputs.extend(ob.inputs.iter().cloned());
                    self.ob_order += 1;
                    let pred_ob = Ob {
                        frame: ob.frame - 1,
                        order: self.ob_order,
                        cube: pred,
                        inputs,
                    };
                    self.ob_order += 1;
                    let retry = Ob {
                        order: self.ob_order,
                        ..ob
                    };
                    queue.push(pred_ob);
                    queue.push(retry);
                }
                Consec::Blocked => {
                    let cube = self.generalize(ob.cube.clone(), ob.frame - 1);
                    // Push the clause as far forward as it stays
                    // relatively inductive.
                    let mut pos = ob.frame;
                    while pos < n {
                        match self.consecution(&cube, pos) {
                            Consec::Blocked => pos += 1,
                            _ => break,
                        }
                    }
                    self.add_blocking_clause(&cube, pos);
                    self.cubes.push((cube, pos));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::ProofCert;

    /// A `width`-bit counter with enable input; returns (graph, latch
    /// literals LSB-first, enable input literal).
    fn counter(width: usize) -> (Aig, Vec<Lit>, Lit) {
        let mut g = Aig::new();
        let en = g.add_input();
        let regs: Vec<Lit> = (0..width).map(|_| g.add_latch(false)).collect();
        // q' = en ? q + 1 : q  (ripple increment).
        let mut carry = Lit::TRUE;
        let mut nexts = Vec::new();
        for &q in &regs {
            let sum = g.xor(q, carry);
            carry = g.and(q, carry);
            let nv = g.mux(en, sum, q);
            nexts.push(nv);
        }
        for (&q, &nv) in regs.iter().zip(&nexts) {
            g.set_next(q, nv);
        }
        (g, regs, en)
    }

    /// Concrete replay: does `inputs` drive the circuit from reset into
    /// a `¬ok` state on the last cycle?
    fn replays(seq: &Aig, ok: Lit, inputs: &[Vec<bool>]) -> bool {
        let mut state: Vec<u64> = seq
            .latches()
            .iter()
            .map(|l| if l.init { 1 } else { 0 })
            .collect();
        for (c, word) in inputs.iter().enumerate() {
            let ins: Vec<u64> = word.iter().map(|&b| u64::from(b)).collect();
            let vals = seq.simulate(&ins, &state);
            let bad = Aig::lit_value(&vals, ok.negate()) & 1 == 1;
            if c + 1 == inputs.len() {
                return bad;
            }
            if bad {
                return false; // violated earlier than claimed
            }
            state = seq
                .latches()
                .iter()
                .map(|l| Aig::lit_value(&vals, l.next.unwrap()) & 1)
                .collect();
        }
        false
    }

    #[test]
    fn proves_unreachable_state_with_checkable_invariant() {
        // Saturating 2-bit counter: b0' = ¬b0 ∧ ¬b1; b1' = b1 ∨ b0.
        // State 11 is unreachable (it has no predecessor and is not the
        // reset state), which is exactly the kind of fact PDR discovers.
        let mut g = Aig::new();
        let b0 = g.add_latch(false);
        let b1 = g.add_latch(false);
        let n0 = g.and(b0.negate(), b1.negate());
        let n1 = g.or(b1, b0);
        g.set_next(b0, n0);
        g.set_next(b1, n1);
        let ok = g.and(b0, b1).negate();
        let seq = Arc::new(g);
        let mut pdr = Pdr::new(Arc::clone(&seq), ok, PdrOptions::default());
        let PdrOutcome::Proved { invariant } = pdr.run() else {
            panic!("expected Proved");
        };
        assert!(ProofCert::revalidate_inductive(&seq, ok, &invariant));
        assert!(pdr.stats().sat_calls > 0);
    }

    #[test]
    fn falsifies_deep_bug_with_replayable_trace() {
        // 4-bit counter: q == 12 is reachable only after 12 enabled
        // cycles — deep enough that BMC-style search must unroll, while
        // PDR walks predecessors.
        let (mut g, regs, _en) = counter(4);
        // bad = q == 12 = ¬b0 ∧ ¬b1 ∧ b2 ∧ b3.
        let t0 = g.and(regs[0].negate(), regs[1].negate());
        let t1 = g.and(regs[2], regs[3]);
        let bad = g.and(t0, t1);
        let ok = bad.negate();
        let seq = Arc::new(g);
        let mut pdr = Pdr::new(Arc::clone(&seq), ok, PdrOptions::default());
        let PdrOutcome::Falsified { inputs } = pdr.run() else {
            panic!("expected Falsified");
        };
        assert_eq!(inputs.len(), 13, "12 increments plus the bad cycle");
        assert!(replays(&seq, ok, &inputs), "trace must replay concretely");
    }

    #[test]
    fn propagation_budget_bounds_the_run_with_unknown() {
        // Same deep-bug counter, but with no propagation budget: the
        // run must give up soundly (Unknown) instead of claiming a
        // verdict it had no budget to establish.
        let (mut g, regs, _en) = counter(4);
        let t0 = g.and(regs[0].negate(), regs[1].negate());
        let t1 = g.and(regs[2], regs[3]);
        let bad = g.and(t0, t1);
        let ok = bad.negate();
        let mut pdr = Pdr::new(
            Arc::new(g),
            ok,
            PdrOptions {
                max_propagations: 0,
                ..PdrOptions::default()
            },
        );
        assert!(matches!(pdr.run(), PdrOutcome::Unknown));
    }

    #[test]
    fn reset_violation_is_depth_one() {
        let mut g = Aig::new();
        let l = g.add_latch(true);
        g.set_next(l, l);
        let ok = l.negate(); // latch starts high: violated at cycle 0
        let seq = Arc::new(g);
        let mut pdr = Pdr::new(Arc::clone(&seq), ok, PdrOptions::default());
        let PdrOutcome::Falsified { inputs } = pdr.run() else {
            panic!("expected Falsified");
        };
        assert_eq!(inputs.len(), 1);
        assert!(replays(&seq, ok, &inputs));
    }

    #[test]
    fn constant_true_property_proves_with_empty_invariant() {
        let mut g = Aig::new();
        let l = g.add_latch(false);
        let i = g.add_input();
        let n = g.and(l.negate(), i);
        g.set_next(l, n);
        let seq = Arc::new(g);
        let mut pdr = Pdr::new(Arc::clone(&seq), Lit::TRUE, PdrOptions::default());
        let PdrOutcome::Proved { invariant } = pdr.run() else {
            panic!("expected Proved");
        };
        assert!(ProofCert::revalidate_inductive(&seq, Lit::TRUE, &invariant));
    }

    #[test]
    fn publishes_reach_clauses_to_exchange() {
        let mut g = Aig::new();
        let b0 = g.add_latch(false);
        let b1 = g.add_latch(false);
        let n0 = g.and(b0.negate(), b1.negate());
        let n1 = g.or(b1, b0);
        g.set_next(b0, n0);
        g.set_next(b1, n1);
        let ok = g.and(b0, b1).negate();
        let seq = Arc::new(g);
        let x = Arc::new(ClauseExchange::new(64));
        let opts = PdrOptions {
            exchange: Some(Arc::clone(&x)),
            ..PdrOptions::default()
        };
        let mut pdr = Pdr::new(seq, ok, opts);
        assert!(matches!(pdr.run(), PdrOutcome::Proved { .. }));
        let mut cur = 0;
        let got = x.fetch(&mut cur);
        assert_eq!(got.len() as u64, pdr.stats().shared_published);
        for c in &got {
            assert!(matches!(c.kind, ClauseKind::Reach { .. }));
            assert_eq!(c.span(), 0);
        }
    }
}
