//! Transition-relation unrolling and lazy Tseitin CNF encoding.
//!
//! [`Unroller`] time-expands a sequential [`AigCircuit`] frame by frame
//! into a purely combinational [`Aig`]: frame 0's latches are either the
//! power-on constants (bounded model checking from reset) or fresh free
//! inputs (the induction step case), and frame `t+1`'s latches are the
//! frame-`t` images of the latch next-state literals. Because the
//! combinational graph constant-folds and structurally hashes, reset-state
//! constants propagate through as many frames as they pin down, and logic
//! identical across frames still costs one node per frame only when it
//! actually differs.
//!
//! [`CnfEncoder`] converts unrolled literals to solver literals *lazily*:
//! only the cone of influence of the literals a query actually mentions is
//! Tseitin-encoded, so checking a property of one small control register
//! inside a large datapath never ships the datapath to the SAT solver.

use std::sync::Arc;

use crate::aig::{Aig, AigCircuit, Lit, Node};
use crate::solver::{SLit, Solver};

/// A time-expansion of a sequential circuit into a combinational AIG.
pub struct Unroller {
    circuit: Arc<AigCircuit>,
    comb: Aig,
    /// Per-frame map from sequential node index to combinational literal.
    maps: Vec<Vec<Lit>>,
    free_init: bool,
}

impl Unroller {
    /// A new unrolling with no frames yet. `free_init = false` starts
    /// frame 0 from the power-on latch values (BMC from reset);
    /// `free_init = true` leaves frame-0 latches unconstrained (the
    /// k-induction step case).
    pub fn new(circuit: Arc<AigCircuit>, free_init: bool) -> Unroller {
        Unroller {
            circuit,
            comb: Aig::new(),
            maps: Vec::new(),
            free_init,
        }
    }

    /// Number of frames unrolled so far.
    pub fn frames(&self) -> usize {
        self.maps.len()
    }

    /// The combinational graph built so far.
    pub fn comb(&self) -> &Aig {
        &self.comb
    }

    /// Appends one frame.
    pub fn push_frame(&mut self) {
        let seq = self.circuit.aig();
        let frame = self.maps.len();
        let mut map = Vec::with_capacity(seq.len());
        for node in seq.nodes() {
            let lit = match *node {
                Node::Const => Lit::FALSE,
                Node::Input(_) => self.comb.add_input(),
                Node::Latch(n) => {
                    let latch = seq.latch_info(n);
                    if frame == 0 {
                        if self.free_init {
                            self.comb.add_input()
                        } else if latch.init {
                            Lit::TRUE
                        } else {
                            Lit::FALSE
                        }
                    } else {
                        let next = latch.next.expect("latch connected during blasting");
                        Self::map_lit(&self.maps[frame - 1], next)
                    }
                }
                Node::And(a, b) => {
                    let la = Self::map_lit(&map, a);
                    let lb = Self::map_lit(&map, b);
                    self.comb.and(la, lb)
                }
            };
            map.push(lit);
        }
        self.maps.push(map);
    }

    fn map_lit(map: &[Lit], l: Lit) -> Lit {
        let base = map[l.node()];
        if l.is_negated() {
            base.negate()
        } else {
            base
        }
    }

    /// The combinational literal of a sequential literal in one frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame has not been pushed yet.
    pub fn lit_at(&self, frame: usize, seq: Lit) -> Lit {
        Self::map_lit(&self.maps[frame], seq)
    }
}

/// Lazy Tseitin encoder from an unrolled combinational AIG into a
/// [`Solver`].
#[derive(Default)]
pub struct CnfEncoder {
    /// Per-comb-node solver variable (`NONE` = not encoded yet).
    var_of: Vec<u32>,
    const_true: Option<SLit>,
}

const NONE: u32 = u32::MAX;

impl CnfEncoder {
    /// A fresh encoder.
    pub fn new() -> CnfEncoder {
        CnfEncoder::default()
    }

    /// The solver literal of a combinational AIG literal, Tseitin-encoding
    /// its cone of influence on first sight.
    pub fn encode(&mut self, comb: &Aig, solver: &mut Solver, lit: Lit) -> SLit {
        if self.var_of.len() < comb.len() {
            self.var_of.resize(comb.len(), NONE);
        }
        if lit.is_const() {
            let t = self.true_lit(solver);
            return if lit == Lit::TRUE { t } else { t.negate() };
        }
        // Iterative DFS over the unencoded cone.
        let mut stack = vec![lit.node()];
        while let Some(&n) = stack.last() {
            if self.var_of[n] != NONE {
                stack.pop();
                continue;
            }
            match comb.node(n) {
                // The constant node never lands on the stack: constant
                // literals short-circuit above and AND fanins of node 0
                // are folded away by the AIG.
                Node::Const => unreachable!("constant node in encoding cone"),
                Node::Input(_) | Node::Latch(_) => {
                    self.var_of[n] = solver.new_var();
                    stack.pop();
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    let mut ready = true;
                    for child in [na, nb] {
                        if child != 0 && self.var_of[child] == NONE {
                            stack.push(child);
                            ready = false;
                        }
                    }
                    if !ready {
                        continue;
                    }
                    stack.pop();
                    let la = self.child_lit(solver, a);
                    let lb = self.child_lit(solver, b);
                    let v = solver.new_var();
                    let lv = SLit::pos(v);
                    solver.add_clause(&[lv.negate(), la]);
                    solver.add_clause(&[lv.negate(), lb]);
                    solver.add_clause(&[lv, la.negate(), lb.negate()]);
                    self.var_of[n] = v;
                }
            }
        }
        let base = self.node_lit(solver, lit.node());
        if lit.is_negated() {
            base.negate()
        } else {
            base
        }
    }

    /// The model value of a combinational literal after a `Sat` result.
    /// Unencoded (hence unconstrained) literals default to `false`.
    pub fn model_value(&self, solver: &Solver, lit: Lit) -> bool {
        if lit.is_const() {
            return lit == Lit::TRUE;
        }
        let raw = match self.var_of.get(lit.node()) {
            Some(&v) if v != NONE => solver.model_value(SLit::pos(v)),
            _ => false,
        };
        raw != lit.is_negated()
    }

    fn true_lit(&mut self, solver: &mut Solver) -> SLit {
        if let Some(t) = self.const_true {
            return t;
        }
        let v = solver.new_var();
        let t = SLit::pos(v);
        solver.add_clause(&[t]);
        self.const_true = Some(t);
        t
    }

    fn node_lit(&mut self, solver: &mut Solver, n: usize) -> SLit {
        if n == 0 {
            return self.true_lit(solver).negate();
        }
        SLit::pos(self.var_of[n])
    }

    fn child_lit(&mut self, solver: &mut Solver, l: Lit) -> SLit {
        let base = self.node_lit(solver, l.node());
        if l.is_negated() {
            base.negate()
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;
    use anvil_rtl::{Expr, Module};

    fn counter(width: usize) -> Module {
        let mut m = Module::new("c");
        let en = m.input("en", 1);
        let q = m.reg("q", width);
        let o = m.output("o", width);
        m.update_when(
            q,
            Expr::Signal(en),
            Expr::Signal(q).add(Expr::lit(1, width)),
        );
        m.assign(o, Expr::Signal(q));
        m
    }

    #[test]
    fn reset_constants_propagate_through_frames() {
        let m = counter(4);
        let c = Arc::new(AigCircuit::from_module(&m).unwrap());
        let mut u = Unroller::new(Arc::clone(&c), false);
        u.push_frame();
        // At frame 0 the counter is the reset constant 0, so `q == 0`
        // folds to constant true without any solving.
        let q = m.find("q").unwrap();
        let q0 = c.signal_lits(q.0)[0];
        assert_eq!(u.lit_at(0, q0), Lit::FALSE);
    }

    #[test]
    fn bmc_query_counts_to_three() {
        // From reset, can `q == 3` hold at frame 3? Only if `en` was high
        // all three cycles; the solver must find exactly that stimulus.
        let m = counter(4);
        let mut c = AigCircuit::from_module(&m).unwrap();
        let ok = c
            .blast_assertion(&Expr::Signal(m.find("q").unwrap()).eq(Expr::lit(3, 4)))
            .unwrap();
        let c = Arc::new(c);
        let mut u = Unroller::new(Arc::clone(&c), false);
        for _ in 0..4 {
            u.push_frame();
        }
        let mut enc = CnfEncoder::new();
        let mut solver = Solver::new();
        // Frame 2 is too early for q == 3.
        let hit2 = enc.encode(u.comb(), &mut solver, u.lit_at(2, ok));
        assert_eq!(solver.solve(&[hit2]), SolveResult::Unsat);
        // Frame 3 works, and the model must drive `en` high in frames
        // 0..3.
        let hit3 = enc.encode(u.comb(), &mut solver, u.lit_at(3, ok));
        assert_eq!(solver.solve(&[hit3]), SolveResult::Sat);
        let en_bits = &c.input_bits()[0].1;
        for f in 0..3 {
            let en_f = u.lit_at(f, en_bits[0]);
            assert!(enc.model_value(&solver, en_f), "en low at frame {f}");
        }
    }

    #[test]
    fn free_init_leaves_latches_unconstrained() {
        let m = counter(4);
        let mut c = AigCircuit::from_module(&m).unwrap();
        let is15 = c
            .blast_assertion(&Expr::Signal(m.find("q").unwrap()).eq(Expr::lit(15, 4)))
            .unwrap();
        let c = Arc::new(c);
        let mut u = Unroller::new(c, true);
        u.push_frame();
        let mut enc = CnfEncoder::new();
        let mut solver = Solver::new();
        let hit = enc.encode(u.comb(), &mut solver, u.lit_at(0, is15));
        // With free initial state, q can be anything at frame 0.
        assert_eq!(solver.solve(&[hit]), SolveResult::Sat);
    }
}
