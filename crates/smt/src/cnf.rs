//! Transition-relation unrolling and lazy Tseitin CNF encoding.
//!
//! [`Unroller`] time-expands a sequential [`AigCircuit`] frame by frame
//! into a purely combinational [`Aig`]: frame 0's latches are either the
//! power-on constants (bounded model checking from reset) or fresh free
//! inputs (the induction step case), and frame `t+1`'s latches are the
//! frame-`t` images of the latch next-state literals. Because the
//! combinational graph constant-folds and structurally hashes, reset-state
//! constants propagate through as many frames as they pin down, and logic
//! identical across frames still costs one node per frame only when it
//! actually differs.
//!
//! [`CnfEncoder`] converts unrolled literals to solver literals *lazily*:
//! only the cone of influence of the literals a query actually mentions is
//! Tseitin-encoded, so checking a property of one small control register
//! inside a large datapath never ships the datapath to the SAT solver.

use std::sync::Arc;

use crate::aig::{Aig, Lit, Node};
use crate::solver::{SLit, Solver};

/// Sentinel frame marking a comb node with no recorded sequential source.
const NO_SRC: u32 = u32::MAX;

/// A time-expansion of a sequential circuit into a combinational AIG.
pub struct Unroller {
    seq: Arc<Aig>,
    comb: Aig,
    /// Per-frame map from sequential node index to combinational literal.
    maps: Vec<Vec<Lit>>,
    /// Reverse map: comb node → `(frame, seq node, complemented)` of the
    /// first sequential literal it materialised (for translating learnt
    /// clauses back into `(frame, seq lit)` space).
    src: Vec<(u32, u32, bool)>,
    free_init: bool,
}

impl Unroller {
    /// A new unrolling with no frames yet. `free_init = false` starts
    /// frame 0 from the power-on latch values (BMC from reset);
    /// `free_init = true` leaves frame-0 latches unconstrained (the
    /// k-induction step and PDR transition cases).
    pub fn new(seq: Arc<Aig>, free_init: bool) -> Unroller {
        Unroller {
            seq,
            comb: Aig::new(),
            maps: Vec::new(),
            src: vec![(NO_SRC, 0, false)],
            free_init,
        }
    }

    /// Number of frames unrolled so far.
    pub fn frames(&self) -> usize {
        self.maps.len()
    }

    /// The combinational graph built so far.
    pub fn comb(&self) -> &Aig {
        &self.comb
    }

    /// The sequential graph being unrolled.
    pub fn seq(&self) -> &Aig {
        &self.seq
    }

    /// Appends one frame.
    pub fn push_frame(&mut self) {
        let frame = self.maps.len();
        let mut map = Vec::with_capacity(self.seq.len());
        for sn in 0..self.seq.len() {
            let lit = match self.seq.node(sn) {
                Node::Const => Lit::FALSE,
                Node::Input(_) => self.comb.add_input(),
                Node::Latch(n) => {
                    let latch = self.seq.latch_info(n);
                    if frame == 0 {
                        if self.free_init {
                            self.comb.add_input()
                        } else if latch.init {
                            Lit::TRUE
                        } else {
                            Lit::FALSE
                        }
                    } else {
                        let next = latch.next.expect("latch connected during blasting");
                        Self::map_lit(&self.maps[frame - 1], next)
                    }
                }
                Node::And(a, b) => {
                    let la = Self::map_lit(&map, a);
                    let lb = Self::map_lit(&map, b);
                    self.comb.and(la, lb)
                }
            };
            if self.src.len() < self.comb.len() {
                self.src.resize(self.comb.len(), (NO_SRC, 0, false));
            }
            if !lit.is_const() && self.src[lit.node()].0 == NO_SRC {
                self.src[lit.node()] = (frame as u32, sn as u32, lit.is_negated());
            }
            map.push(lit);
        }
        self.maps.push(map);
    }

    /// The `(frame, sequential literal)` whose unrolled image is the
    /// *positive* value of a comb node, if one was recorded. Soundness of
    /// clause translation only needs *a* valid source, so the first
    /// sequential literal that materialised the node wins (structural
    /// hashing may map several onto it — all have equal value by
    /// construction).
    pub fn seq_source(&self, comb_node: usize) -> Option<(usize, Lit)> {
        match self.src.get(comb_node) {
            Some(&(frame, sn, neg)) if frame != NO_SRC => {
                Some((frame as usize, Lit::new(sn as usize, neg)))
            }
            _ => None,
        }
    }

    fn map_lit(map: &[Lit], l: Lit) -> Lit {
        let base = map[l.node()];
        if l.is_negated() {
            base.negate()
        } else {
            base
        }
    }

    /// The combinational literal of a sequential literal in one frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame has not been pushed yet.
    pub fn lit_at(&self, frame: usize, seq: Lit) -> Lit {
        Self::map_lit(&self.maps[frame], seq)
    }
}

/// Lazy Tseitin encoder from an unrolled combinational AIG into a
/// [`Solver`].
#[derive(Default)]
pub struct CnfEncoder {
    /// Per-comb-node solver variable (`NONE` = not encoded yet).
    var_of: Vec<u32>,
    /// Reverse map: solver variable → comb node (`NONE` for variables the
    /// encoder did not allocate, e.g. activation literals).
    node_of: Vec<u32>,
    const_true: Option<SLit>,
}

const NONE: u32 = u32::MAX;

impl CnfEncoder {
    /// A fresh encoder.
    pub fn new() -> CnfEncoder {
        CnfEncoder::default()
    }

    /// The solver literal of a combinational AIG literal, Tseitin-encoding
    /// its cone of influence on first sight.
    pub fn encode(&mut self, comb: &Aig, solver: &mut Solver, lit: Lit) -> SLit {
        if self.var_of.len() < comb.len() {
            self.var_of.resize(comb.len(), NONE);
        }
        if lit.is_const() {
            let t = self.true_lit(solver);
            return if lit == Lit::TRUE { t } else { t.negate() };
        }
        // Iterative DFS over the unencoded cone.
        let mut stack = vec![lit.node()];
        while let Some(&n) = stack.last() {
            if self.var_of[n] != NONE {
                stack.pop();
                continue;
            }
            match comb.node(n) {
                // The constant node never lands on the stack: constant
                // literals short-circuit above and AND fanins of node 0
                // are folded away by the AIG.
                Node::Const => unreachable!("constant node in encoding cone"),
                Node::Input(_) | Node::Latch(_) => {
                    let v = solver.new_var();
                    self.var_of[n] = v;
                    self.record_var(v, n);
                    stack.pop();
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    let mut ready = true;
                    for child in [na, nb] {
                        if child != 0 && self.var_of[child] == NONE {
                            stack.push(child);
                            ready = false;
                        }
                    }
                    if !ready {
                        continue;
                    }
                    stack.pop();
                    let la = self.child_lit(solver, a);
                    let lb = self.child_lit(solver, b);
                    let v = solver.new_var();
                    let lv = SLit::pos(v);
                    solver.add_clause(&[lv.negate(), la]);
                    solver.add_clause(&[lv.negate(), lb]);
                    solver.add_clause(&[lv, la.negate(), lb.negate()]);
                    self.var_of[n] = v;
                    self.record_var(v, n);
                }
            }
        }
        let base = self.node_lit(solver, lit.node());
        if lit.is_negated() {
            base.negate()
        } else {
            base
        }
    }

    /// The model value of a combinational literal after a `Sat` result.
    /// Unencoded (hence unconstrained) literals default to `false`.
    pub fn model_value(&self, solver: &Solver, lit: Lit) -> bool {
        if lit.is_const() {
            return lit == Lit::TRUE;
        }
        let raw = match self.var_of.get(lit.node()) {
            Some(&v) if v != NONE => solver.model_value(SLit::pos(v)),
            _ => false,
        };
        raw != lit.is_negated()
    }

    /// The comb node a solver variable encodes, if the variable was
    /// allocated by this encoder (the reverse of [`CnfEncoder::encode`]'s
    /// variable assignment; used to translate learnt clauses back into
    /// AIG space for cross-engine clause sharing).
    pub fn var_node(&self, v: crate::solver::Var) -> Option<usize> {
        match self.node_of.get(v as usize) {
            Some(&n) if n != NONE => Some(n as usize),
            _ => None,
        }
    }

    fn record_var(&mut self, v: crate::solver::Var, node: usize) {
        let idx = v as usize;
        if self.node_of.len() <= idx {
            self.node_of.resize(idx + 1, NONE);
        }
        self.node_of[idx] = node as u32;
    }

    fn true_lit(&mut self, solver: &mut Solver) -> SLit {
        if let Some(t) = self.const_true {
            return t;
        }
        let v = solver.new_var();
        let t = SLit::pos(v);
        solver.add_clause(&[t]);
        self.const_true = Some(t);
        t
    }

    fn node_lit(&mut self, solver: &mut Solver, n: usize) -> SLit {
        if n == 0 {
            return self.true_lit(solver).negate();
        }
        SLit::pos(self.var_of[n])
    }

    fn child_lit(&mut self, solver: &mut Solver, l: Lit) -> SLit {
        let base = self.node_lit(solver, l.node());
        if l.is_negated() {
            base.negate()
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AigCircuit;
    use crate::solver::SolveResult;
    use anvil_rtl::{Expr, Module};

    fn counter(width: usize) -> Module {
        let mut m = Module::new("c");
        let en = m.input("en", 1);
        let q = m.reg("q", width);
        let o = m.output("o", width);
        m.update_when(
            q,
            Expr::Signal(en),
            Expr::Signal(q).add(Expr::lit(1, width)),
        );
        m.assign(o, Expr::Signal(q));
        m
    }

    #[test]
    fn reset_constants_propagate_through_frames() {
        let m = counter(4);
        let c = Arc::new(AigCircuit::from_module(&m).unwrap());
        let mut u = Unroller::new(c.aig_arc(), false);
        u.push_frame();
        // At frame 0 the counter is the reset constant 0, so `q == 0`
        // folds to constant true without any solving.
        let q = m.find("q").unwrap();
        let q0 = c.signal_lits(q.0)[0];
        assert_eq!(u.lit_at(0, q0), Lit::FALSE);
    }

    #[test]
    fn bmc_query_counts_to_three() {
        // From reset, can `q == 3` hold at frame 3? Only if `en` was high
        // all three cycles; the solver must find exactly that stimulus.
        let m = counter(4);
        let mut c = AigCircuit::from_module(&m).unwrap();
        let ok = c
            .blast_assertion(&Expr::Signal(m.find("q").unwrap()).eq(Expr::lit(3, 4)))
            .unwrap();
        let c = Arc::new(c);
        let mut u = Unroller::new(c.aig_arc(), false);
        for _ in 0..4 {
            u.push_frame();
        }
        let mut enc = CnfEncoder::new();
        let mut solver = Solver::new();
        // Frame 2 is too early for q == 3.
        let hit2 = enc.encode(u.comb(), &mut solver, u.lit_at(2, ok));
        assert_eq!(solver.solve(&[hit2]), SolveResult::Unsat);
        // Frame 3 works, and the model must drive `en` high in frames
        // 0..3.
        let hit3 = enc.encode(u.comb(), &mut solver, u.lit_at(3, ok));
        assert_eq!(solver.solve(&[hit3]), SolveResult::Sat);
        let en_bits = &c.input_bits()[0].1;
        for f in 0..3 {
            let en_f = u.lit_at(f, en_bits[0]);
            assert!(enc.model_value(&solver, en_f), "en low at frame {f}");
        }
    }

    #[test]
    fn free_init_leaves_latches_unconstrained() {
        let m = counter(4);
        let mut c = AigCircuit::from_module(&m).unwrap();
        let is15 = c
            .blast_assertion(&Expr::Signal(m.find("q").unwrap()).eq(Expr::lit(15, 4)))
            .unwrap();
        let mut u = Unroller::new(c.aig_arc(), true);
        u.push_frame();
        let mut enc = CnfEncoder::new();
        let mut solver = Solver::new();
        let hit = enc.encode(u.comb(), &mut solver, u.lit_at(0, is15));
        // With free initial state, q can be anything at frame 0.
        assert_eq!(solver.solve(&[hit]), SolveResult::Sat);
    }
}
