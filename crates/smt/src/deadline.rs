//! Monotonic wall-clock deadlines, polled cooperatively alongside stop
//! flags.
//!
//! The solver, PDR, and the verify engines all bound *work* (conflicts,
//! obligations, unrolling depth) but none of that caps *time*: a
//! pathological cone can burn minutes inside its budgets. [`Deadline`]
//! is the wall-clock counterpart — a `Copy` wrapper over an optional
//! [`Instant`] that long-running loops poll exactly where they already
//! poll their `Arc<AtomicBool>` stop flags. Expiry is advisory: the
//! loop observes it and unwinds with whatever partial result it has
//! (`Interrupted`, `Unknown{depth}`, a `DeadlineExceeded` error),
//! never by killing a thread.
//!
//! Built on [`Instant`], so it is monotonic: a wall-clock step (NTP,
//! suspend/resume) never fires or starves a deadline.

use std::time::{Duration, Instant};

/// A point in monotonic time after which cooperative work should stop.
///
/// `Deadline::none()` (the `Default`) never expires and costs one
/// `Option` discriminant check per poll, so deadline support can thread
/// through hot loops unconditionally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// Expires `dur` from now.
    pub fn after(dur: Duration) -> Deadline {
        Deadline(Instant::now().checked_add(dur))
    }

    /// Expires `ms` milliseconds from now. `in_ms(0)` is already
    /// expired — useful for "fail fast" probes and tests.
    pub fn in_ms(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// True when a finite deadline is set.
    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// True when no deadline is set (never expires).
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }

    /// True once the deadline has passed. Never true for
    /// [`Deadline::none`].
    pub fn expired(&self) -> bool {
        match self.0 {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// True once the deadline has been missed by more than `grace` —
    /// the watchdog predicate: workers get `grace` past expiry to
    /// unwind cooperatively before their stop flag is raised for them.
    pub fn expired_by(&self, grace: Duration) -> bool {
        match self.0 {
            Some(at) => Instant::now().checked_duration_since(at) > Some(grace),
            None => false,
        }
    }

    /// Time left, saturating at zero. `None` when no deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.0
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines (`none` is "latest possible").
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Deadline(Some(a.min(b))),
            (a, b) => Deadline(a.or(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(!d.expired_by(Duration::ZERO));
        assert!(d.remaining().is_none());
        assert!(d.is_none());
        assert_eq!(Deadline::default(), Deadline::none());
    }

    #[test]
    fn zero_is_already_expired() {
        let d = Deadline::in_ms(0);
        assert!(d.is_some());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_not_yet_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(!d.expired_by(Duration::ZERO));
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn grace_margin_delays_watchdog() {
        let d = Deadline::in_ms(0);
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert!(d.expired_by(Duration::ZERO));
        assert!(!d.expired_by(Duration::from_secs(3600)));
    }

    #[test]
    fn min_prefers_the_earlier_finite_deadline() {
        let soon = Deadline::in_ms(1);
        let late = Deadline::after(Duration::from_secs(3600));
        assert_eq!(soon.min(late), soon);
        assert_eq!(late.min(soon), soon);
        assert_eq!(soon.min(Deadline::none()), soon);
        assert_eq!(Deadline::none().min(soon), soon);
        assert_eq!(Deadline::none().min(Deadline::none()), Deadline::none());
    }
}
