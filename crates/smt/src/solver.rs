//! An embedded CDCL SAT solver.
//!
//! A self-contained MiniSat-style conflict-driven clause-learning solver —
//! two-watched-literal propagation, first-UIP clause learning with
//! activity-based (VSIDS) branching, phase saving, Luby restarts, and
//! activity-driven learnt-clause reduction. Incremental use is the whole
//! point: clauses can be added between [`Solver::solve`] calls and each
//! call takes a set of *assumption* literals, which is how the bounded
//! model checker and the k-induction engine reuse one solver across
//! unrolling depths.
//!
//! Like the rest of the workspace it is dependency-free (`crates/shims`
//! covers the dev-only externals); nothing here talks to crates.io.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A solver variable.
pub type Var = u32;

/// A solver literal: variable plus sign (`sign = true` means negated).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SLit(u32);

impl SLit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> SLit {
        SLit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> SLit {
        SLit((v << 1) | 1)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True for negated literals.
    pub fn sign(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    pub fn negate(self) -> SLit {
        SLit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Outcome of one [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A model satisfying all clauses and assumptions exists (query it
    /// with [`Solver::model_value`]).
    Sat,
    /// No model exists under the given assumptions.
    Unsat,
    /// The external stop flag was raised mid-search.
    Interrupted,
}

/// Cumulative search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Problem clauses added (after top-level simplification).
    pub clauses: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LB {
    True,
    False,
    Undef,
}

struct Clause {
    lits: Vec<SLit>,
    learnt: bool,
    act: f64,
    deleted: bool,
}

const NO_REASON: u32 = u32::MAX;

/// The CDCL solver.
pub struct Solver {
    clauses: Vec<Clause>,
    /// Per-literal watcher lists: `(clause index, blocker literal)`.
    watches: Vec<Vec<(u32, SLit)>>,
    assign: Vec<LB>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<SLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Binary max-heap of variables ordered by activity.
    heap: Vec<Var>,
    heap_pos: Vec<i32>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    model: Vec<LB>,
    ok: bool,
    n_learnt: usize,
    max_learnt: usize,
    stats: SolverStats,
    stop: Option<Arc<AtomicBool>>,
    deadline: crate::Deadline,
    conflict_budget: Option<u64>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            model: Vec::new(),
            ok: true,
            n_learnt: 0,
            max_learnt: 4096,
            stats: SolverStats::default(),
            stop: None,
            deadline: crate::Deadline::none(),
            conflict_budget: None,
        }
    }

    /// Installs a cooperative stop flag, polled periodically during search.
    pub fn set_stop(&mut self, stop: Arc<AtomicBool>) {
        self.stop = Some(stop);
    }

    /// Installs a wall-clock deadline, polled at the same cadence as the
    /// stop flag (every 512 conflicts and at every restart); an expired
    /// deadline makes [`Solver::solve`] return
    /// [`SolveResult::Interrupted`]. [`crate::Deadline::none`] (the
    /// default) disables the check.
    pub fn set_deadline(&mut self, deadline: crate::Deadline) {
        self.deadline = deadline;
    }

    /// Caps the conflicts any single [`Solver::solve`] call may analyse;
    /// a call that exceeds the budget returns
    /// [`SolveResult::Interrupted`]. `None` (the default) removes the
    /// cap. Fraiging uses this to bound each equivalence query, treating
    /// a blown budget as "not proven equivalent".
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Learnt clauses appended since `cursor` (an opaque clause-arena
    /// index; start from 0 and reuse the returned cursor), capped at
    /// `max_len` literals each. The clause arena is append-only, so
    /// cursors stay valid across solves. Every returned clause is implied
    /// by the problem clauses alone — assumptions act as decisions, never
    /// as antecedents — which is what makes cross-solver clause sharing
    /// sound when both solvers encode the same CNF.
    pub fn export_learnt(&self, cursor: &mut usize, max_len: usize) -> Vec<Vec<SLit>> {
        let mut out = Vec::new();
        for c in &self.clauses[(*cursor).min(self.clauses.len())..] {
            if c.learnt && !c.deleted && c.lits.len() <= max_len {
                out.push(c.lits.clone());
            }
        }
        *cursor = self.clauses.len();
        out
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(LB::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.heap_pos.push(-1);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    fn value(&self, l: SLit) -> LB {
        match self.assign[l.var() as usize] {
            LB::Undef => LB::Undef,
            LB::True => {
                if l.sign() {
                    LB::False
                } else {
                    LB::True
                }
            }
            LB::False => {
                if l.sign() {
                    LB::True
                } else {
                    LB::False
                }
            }
        }
    }

    /// The last model's value for a literal (valid after a `Sat` result);
    /// unassigned variables read as `false`.
    pub fn model_value(&self, l: SLit) -> bool {
        match self.model.get(l.var() as usize) {
            Some(LB::True) => !l.sign(),
            Some(LB::False) => l.sign(),
            _ => l.sign(),
        }
    }

    // ---- Activity heap. ----

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v as usize] >= 0 {
            return;
        }
        self.heap.push(v);
        let i = self.heap.len() - 1;
        self.heap_pos[v as usize] = i as i32;
        self.heap_up(i);
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[p] as usize] {
                break;
            }
            self.heap_swap(i, p);
            i = p;
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[largest] as usize]
            {
                largest = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[largest] as usize]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap_swap(i, largest);
            i = largest;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i as i32;
        self.heap_pos[self.heap[j] as usize] = j as i32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top as usize] = -1;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[v as usize];
        if pos >= 0 {
            self.heap_up(pos as usize);
        }
    }

    fn bump_clause(&mut self, c: usize) {
        let cl = &mut self.clauses[c];
        if !cl.learnt {
            return;
        }
        cl.act += self.cla_inc;
        if cl.act > 1e100 {
            for cl in self.clauses.iter_mut().filter(|c| c.learnt) {
                cl.act *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    // ---- Clause management. ----

    /// Adds a problem clause (between solves, at decision level 0).
    /// Top-level simplification removes duplicate and already-false
    /// literals and drops tautologies and satisfied clauses.
    pub fn add_clause(&mut self, lits: &[SLit]) {
        if !self.ok {
            return;
        }
        debug_assert!(self.trail_lim.is_empty(), "add_clause mid-solve");
        let mut ls: Vec<SLit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == l.negate() {
                return; // tautology
            }
            match self.value(l) {
                LB::True => return, // already satisfied at level 0
                LB::False => {}     // drop falsified literal
                LB::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.enqueue(simplified[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.stats.clauses += 1;
                self.attach(simplified, false);
            }
        }
    }

    fn attach(&mut self, lits: Vec<SLit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].negate().index()].push((idx, lits[1]));
        self.watches[lits[1].negate().index()].push((idx, lits[0]));
        self.clauses.push(Clause {
            lits,
            learnt,
            act: 0.0,
            deleted: false,
        });
        if learnt {
            self.n_learnt += 1;
        }
        idx
    }

    /// Deletes poorly scoring learnt clauses when the database grows past
    /// its cap (locked clauses — reasons of current assignments — stay).
    fn reduce_db(&mut self) {
        let mut acts: Vec<f64> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .map(|c| c.act)
            .collect();
        if acts.is_empty() {
            return;
        }
        acts.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let median = acts[acts.len() / 2];
        for ci in 0..self.clauses.len() {
            let c = &self.clauses[ci];
            if !c.learnt || c.deleted || c.lits.len() <= 2 || c.act >= median {
                continue;
            }
            let locked = self.reason[c.lits[0].var() as usize] == ci as u32
                && self.value(c.lits[0]) == LB::True;
            if locked {
                continue;
            }
            self.clauses[ci].deleted = true;
            self.n_learnt -= 1;
        }
        // Rebuild the watcher lists without the deleted clauses.
        for w in &mut self.watches {
            w.clear();
        }
        for (ci, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            self.watches[c.lits[0].negate().index()].push((ci as u32, c.lits[1]));
            self.watches[c.lits[1].negate().index()].push((ci as u32, c.lits[0]));
        }
        self.max_learnt += self.max_learnt / 2;
    }

    // ---- Assignment and propagation. ----

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: SLit, reason: u32) {
        debug_assert!(self.value(l) == LB::Undef);
        let v = l.var() as usize;
        self.assign[v] = if l.sign() { LB::False } else { LB::True };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses whose watched literal just became false (they are
            // filed under its complement, `p`) must find a new watch or
            // propagate.
            let mut i = 0;
            let widx = p.index();
            'watchers: while i < self.watches[widx].len() {
                let (ci, blocker) = self.watches[widx][i];
                if self.value(blocker) == LB::True {
                    i += 1;
                    continue;
                }
                let false_lit = p.negate();
                // Make sure the falsified watch is lits[1].
                let (first, len) = {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits.len())
                };
                debug_assert_eq!(self.clauses[ci as usize].lits[1], false_lit);
                if first != blocker && self.value(first) == LB::True {
                    self.watches[widx][i] = (ci, first);
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value(lk) != LB::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[widx].swap_remove(i);
                        self.watches[lk.negate().index()].push((ci, first));
                        continue 'watchers;
                    }
                }
                // No replacement: unit or conflict.
                self.watches[widx][i] = (ci, first);
                i += 1;
                match self.value(first) {
                    LB::False => return Some(ci),
                    LB::Undef => self.enqueue(first, ci),
                    LB::True => {}
                }
            }
        }
        None
    }

    fn cancel_until(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let bound = self.trail_lim[lvl as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail is non-empty");
            let v = l.var() as usize;
            self.phase[v] = !l.sign();
            self.assign[v] = LB::Undef;
            self.reason[v] = NO_REASON;
            self.heap_insert(l.var());
        }
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    // ---- Conflict analysis (first UIP). ----

    fn analyze(&mut self, confl: u32) -> (Vec<SLit>, u32) {
        let mut learnt: Vec<SLit> = vec![SLit::pos(0)]; // slot for the UIP
        let mut path = 0usize;
        let mut p: Option<SLit> = None;
        let mut index = self.trail.len();
        let mut c = confl;
        let current = self.decision_level();
        loop {
            self.bump_clause(c as usize);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[c as usize].lits.len() {
                let q = self.clauses[c as usize].lits[k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            path -= 1;
            if path == 0 {
                learnt[0] = pl.negate();
                break;
            }
            p = Some(pl);
            c = self.reason[pl.var() as usize];
            debug_assert_ne!(c, NO_REASON, "resolved literal must have a reason");
        }
        // Backtrack level: highest level among the non-UIP literals.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        for l in &learnt {
            self.seen[l.var() as usize] = false;
        }
        (learnt, bt)
    }

    // ---- Search. ----

    /// Solves under the given assumption literals.
    ///
    /// Clauses may be added between calls; the learnt-clause database and
    /// variable activities persist, which is what makes repeated
    /// unrolling-depth queries cheap.
    pub fn solve(&mut self, assumptions: &[SLit]) -> SolveResult {
        let _sp = anvil_trace::span("sat", "solve");
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let mut restart = 0u64;
        let mut budget = 128 * luby(restart);
        let mut conflicts_here = 0u64;
        let mut conflicts_call = 0u64;
        loop {
            if let Some(ci) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(ci);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let ci = self.attach(learnt, true);
                    self.stats.learned += 1;
                    self.bump_clause(ci as usize);
                    let first = self.clauses[ci as usize].lits[0];
                    self.enqueue(first, ci);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.stats.conflicts.is_multiple_of(512) {
                    if let Some(stop) = &self.stop {
                        if stop.load(Ordering::Relaxed) {
                            self.cancel_until(0);
                            return SolveResult::Interrupted;
                        }
                    }
                    if self.deadline.expired() {
                        self.cancel_until(0);
                        return SolveResult::Interrupted;
                    }
                }
                conflicts_call += 1;
                if let Some(budget) = self.conflict_budget {
                    if conflicts_call >= budget {
                        self.cancel_until(0);
                        return SolveResult::Interrupted;
                    }
                }
            } else {
                if conflicts_here >= budget {
                    // Restart.
                    anvil_trace::instant("sat", "restart");
                    self.stats.restarts += 1;
                    restart += 1;
                    budget = 128 * luby(restart);
                    conflicts_here = 0;
                    self.cancel_until(0);
                    if self.deadline.expired() {
                        return SolveResult::Interrupted;
                    }
                    continue;
                }
                if self.n_learnt > self.max_learnt {
                    self.reduce_db();
                }
                // Re-establish assumptions, then decide.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LB::True => {
                            self.trail_lim.push(self.trail.len());
                        }
                        LB::False => {
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        LB::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, NO_REASON);
                        }
                    }
                    continue;
                }
                let next = loop {
                    match self.heap_pop() {
                        Some(v) => {
                            if self.assign[v as usize] == LB::Undef {
                                break Some(v);
                            }
                        }
                        None => break None,
                    }
                };
                match next {
                    None => {
                        // All variables assigned: a model.
                        self.model = self.assign.clone();
                        self.cancel_until(0);
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = if self.phase[v as usize] {
                            SLit::pos(v)
                        } else {
                            SLit::neg(v)
                        };
                        self.enqueue(lit, NO_REASON);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …), 0-indexed.
fn luby(mut x: u64) -> u64 {
    // Find the finite subsequence containing index `x` and its size.
    let (mut size, mut seq) = (1u64, 0u64);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[SLit::pos(v[0])]);
        s.add_clause(&[SLit::neg(v[0]), SLit::pos(v[1])]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(SLit::pos(v[0])));
        assert!(s.model_value(SLit::pos(v[1])));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[SLit::pos(v[0])]);
        s.add_clause(&[SLit::neg(v[0])]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_outcomes_incrementally() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        // (a ∨ b) ∧ (¬a ∨ c)
        s.add_clause(&[SLit::pos(v[0]), SLit::pos(v[1])]);
        s.add_clause(&[SLit::neg(v[0]), SLit::pos(v[2])]);
        assert_eq!(
            s.solve(&[SLit::pos(v[0]), SLit::neg(v[2])]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(&[SLit::pos(v[0])]), SolveResult::Sat);
        assert!(s.model_value(SLit::pos(v[2])));
        // Adding a clause afterwards still works.
        s.add_clause(&[SLit::neg(v[1])]);
        assert_eq!(s.solve(&[SLit::neg(v[0])]), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    /// Pigeonhole principle: n+1 pigeons in n holes is unsatisfiable and
    /// needs genuine conflict-driven search.
    #[test]
    fn pigeonhole_is_unsat() {
        for n in 2..=5usize {
            let mut s = Solver::new();
            let p: Vec<Vec<Var>> = (0..n + 1)
                .map(|_| (0..n).map(|_| s.new_var()).collect())
                .collect();
            for row in &p {
                let lits: Vec<SLit> = row.iter().map(|v| SLit::pos(*v)).collect();
                s.add_clause(&lits);
            }
            #[allow(clippy::needless_range_loop)] // h indexes two vectors
            for h in 0..n {
                for i in 0..n + 1 {
                    for j in i + 1..n + 1 {
                        s.add_clause(&[SLit::neg(p[i][h]), SLit::neg(p[j][h])]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat, "PHP({})", n + 1);
            assert!(s.stats().conflicts > 0);
        }
    }

    /// Random 3-SAT instances cross-checked against brute force.
    #[test]
    fn random_3sat_matches_brute_force() {
        let mut seed = 0x1234_5678_9abc_def1u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..60 {
            let n = 4 + (next() % 6) as usize; // 4..9 vars
            let m = n * 4;
            let clauses: Vec<Vec<SLit>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % n as u64) as Var;
                            if next() % 2 == 0 {
                                SLit::pos(v)
                            } else {
                                SLit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for asn in 0..(1u64 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|l| {
                        let bit = (asn >> l.var()) & 1 == 1;
                        bit != l.sign()
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = Solver::new();
            let _ = vars(&mut s, n);
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve(&[]);
            assert_eq!(
                got,
                if brute_sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "case {case} diverged from brute force"
            );
            if got == SolveResult::Sat {
                // The reported model must satisfy every clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| s.model_value(*l)),
                        "bad model, case {case}"
                    );
                }
            }
        }
    }

    #[test]
    fn stop_flag_interrupts() {
        let mut s = Solver::new();
        let stop = Arc::new(AtomicBool::new(true));
        s.set_stop(Arc::clone(&stop));
        // A hard instance that would not return instantly: PHP(8).
        let n = 7usize;
        let p: Vec<Vec<Var>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<SLit> = row.iter().map(|v| SLit::pos(*v)).collect();
            s.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)] // h indexes two vectors
        for h in 0..n {
            for i in 0..n + 1 {
                for j in i + 1..n + 1 {
                    s.add_clause(&[SLit::neg(p[i][h]), SLit::neg(p[j][h])]);
                }
            }
        }
        // With the flag raised from the start the solve returns
        // Interrupted as soon as the first poll fires (or solves first if
        // it is quicker than a poll interval — both are acceptable; what
        // the test pins is that it terminates and never panics).
        let r = s.solve(&[]);
        assert!(matches!(r, SolveResult::Interrupted | SolveResult::Unsat));
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }
}
